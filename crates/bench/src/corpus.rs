//! The golden-replay conformance corpus.
//!
//! Every built-in [`Scenario`](netshed_trace::scenario) is recorded to a
//! `.nstr` trace under `corpus/` together with a manifest pinning, per
//! (scenario, strategy), the [`RunDigest`] of the monitor's three output
//! streams. `tests/golden.rs` and the `scenarios` binary both go through the
//! helpers here, so the test suite and the CLI can never disagree about what
//! "conformant" means:
//!
//! * [`corpus_specs`] / [`all_strategies`] / [`corpus_capacity`] fix the
//!   query set, the seven strategy configurations and the (deterministic)
//!   overload level of every corpus run;
//! * [`digest_run`] replays a batch vector through one configuration and
//!   fingerprints it;
//! * [`format_manifest`] / [`parse_manifest`] read and write the
//!   `GOLDEN.digests` manifest;
//! * [`diff_digests`] renders a drift as a readable report naming the
//!   scenario, the strategy and the exact stream that diverged.

use netshed_monitor::{
    DigestObserver, Monitor, MonitorConfig, NetshedError, PredictorKind, RunDigest, Strategy,
};
use netshed_queries::{CustomBehavior, QueryKind, QuerySpec};
use netshed_service::{Daemon, ServiceError, TickStatus};
use netshed_trace::scenario::Scenario;
use netshed_trace::{Batch, BatchReplay};

/// Monitor seed of every corpus run (the traffic seed lives in the
/// scenario).
pub const CORPUS_SEED: u64 = 23;

/// File extension of recorded corpus traces.
pub const TRACE_EXTENSION: &str = "nstr";

/// Name of the digest manifest inside the corpus directory.
pub const MANIFEST_NAME: &str = "GOLDEN.digests";

/// The corpus query set: one query per shedding method (packet sampling,
/// flow sampling, custom shedding) plus top-k, whose high minimum rate
/// forces the disabled path under overload.
pub fn corpus_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::TopK),
        QuerySpec::new(QueryKind::PatternSearch),
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
    ]
}

/// The seven built-in strategy configurations ([`Strategy::ALL`]), with
/// their historical names, in manifest order.
pub fn all_strategies() -> Vec<(String, Strategy)> {
    Strategy::ALL.into_iter().map(|strategy| (strategy.name(), strategy)).collect()
}

/// Resolves a strategy by its historical name.
pub fn strategy_by_name(name: &str) -> Option<Strategy> {
    Strategy::from_name(name)
}

/// The capacity of a corpus run: half the unconstrained demand of the
/// warm-up prefix (K = 0.5), measured with the deterministic cycle model —
/// every strategy genuinely sheds, and the number depends only on the
/// recorded traffic.
pub fn corpus_capacity(batches: &[Batch]) -> f64 {
    let warmup = batches.len().min(20);
    let demand =
        netshed_monitor::reference::measure_total_demand(&corpus_specs(), &batches[..warmup])
            .expect("valid corpus specs"); // lint:allow(no-unwrap): corpus_specs() is a fixed compiled-in set that passes registration validation
    (demand / 2.0).max(1.0)
}

/// The adversarial subset of the built-in scenarios: the predictor-gaming
/// workloads the robustness plane is evaluated on (and the CI
/// `adversarial-corpus` job loops over).
pub const ADVERSARIAL_SCENARIOS: [&str; 3] = ["bm-mimicry", "flow-churn", "agg-skew"];

/// Replays a batch vector through one strategy at the given worker count and
/// returns the run fingerprint.
pub fn digest_run(
    batches: &[Batch],
    strategy: Strategy,
    capacity: f64,
    workers: usize,
) -> Result<RunDigest, NetshedError> {
    digest_run_with_predictor(batches, strategy, capacity, workers, PredictorKind::MlrFcbf)
}

/// [`digest_run`] with an explicit predictor: the corpus pins
/// [`PredictorKind::MlrFcbf`] (the paper's method and the historical
/// default), while `scenarios run --predictor` and the robustness tests
/// compare the hardened `robust_mlr_fcbf` against it on the same traffic.
pub fn digest_run_with_predictor(
    batches: &[Batch],
    strategy: Strategy,
    capacity: f64,
    workers: usize,
    predictor: PredictorKind,
) -> Result<RunDigest, NetshedError> {
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .seed(CORPUS_SEED)
        .strategy(strategy)
        .predictor(predictor)
        .with_workers(workers)
        .queries(corpus_specs())
        .build()?;
    let mut observer = DigestObserver::new();
    monitor.run(&mut BatchReplay::new(batches.to_vec()), &mut observer)?;
    Ok(observer.digest())
}

/// Replays a batch vector through one strategy on a flow-sharded fleet
/// (the default lane partition) at the given shard-thread and worker counts
/// and returns the run fingerprint.
///
/// Per the shard-plane contract, the result depends on neither `shards` nor
/// `workers` — `tests/golden.rs` proves that over the whole corpus and the
/// full shards×workers matrix for all seven strategies.
pub fn sharded_digest_run(
    batches: &[Batch],
    strategy: Strategy,
    capacity: f64,
    shards: usize,
    workers: usize,
) -> Result<RunDigest, NetshedError> {
    let mut fleet = Monitor::builder()
        .capacity(capacity)
        .seed(CORPUS_SEED)
        .strategy(strategy)
        .predictor(PredictorKind::MlrFcbf)
        .with_shards(shards)
        .with_workers(workers)
        .queries(corpus_specs())
        .build_sharded()?;
    let mut observer = DigestObserver::new();
    fleet.run(&mut BatchReplay::new(batches.to_vec()), &mut observer)?;
    Ok(observer.digest())
}

/// The corpus configuration of one strategy run, exactly as
/// [`digest_run`]'s builder assembles it — the service-plane helpers below
/// need the explicit [`MonitorConfig`] because `.nsck` restore cross-checks
/// it against the checkpointing process's.
fn corpus_config(strategy: Strategy, capacity: f64, workers: usize) -> MonitorConfig {
    MonitorConfig::default()
        .with_capacity(capacity)
        .with_seed(CORPUS_SEED)
        .with_strategy(strategy)
        .with_workers(workers)
}

/// Runs the corpus configuration under a service daemon up to `at` non-empty
/// bins — registering the corpus queries through the control channel, like
/// real tenants — and returns the `.nsck` checkpoint bytes.
pub fn checkpoint_run(
    batches: &[Batch],
    strategy: Strategy,
    capacity: f64,
    workers: usize,
    at: u64,
) -> Result<Vec<u8>, ServiceError> {
    let config = corpus_config(strategy, capacity, workers);
    config.validate()?;
    let (daemon, control) = Daemon::new(Monitor::new(config), BatchReplay::new(batches.to_vec()));
    let mut daemon = daemon.with_bins_per_tick(at.max(1));
    let pending: Vec<_> =
        corpus_specs().into_iter().map(|spec| control.register_query(spec)).collect();
    let status = daemon.tick()?;
    for p in pending {
        p.wait()?;
    }
    if !matches!(status, TickStatus::Progressed { .. }) {
        // The cut must land strictly inside the scenario, otherwise nothing
        // is left to prove on resume.
        return Err(ServiceError::SourceTooShort { needed: at, skipped: daemon.bins_ingested() });
    }
    daemon.checkpoint()
}

/// Restores a [`checkpoint_run`] `.nsck` in this process (typically a fresh
/// one), replays the remaining bins and returns the final fingerprint —
/// which must equal the uninterrupted [`digest_run`] digest bit for bit.
pub fn resume_run(
    bytes: &[u8],
    batches: &[Batch],
    strategy: Strategy,
    capacity: f64,
    workers: usize,
) -> Result<RunDigest, ServiceError> {
    let config = corpus_config(strategy, capacity, workers);
    let (mut daemon, _control) =
        Daemon::restore(config, BatchReplay::new(batches.to_vec()), bytes)?;
    daemon.run_to_exhaustion()?;
    Ok(daemon.digest())
}

/// One pinned manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenEntry {
    /// Scenario name.
    pub scenario: String,
    /// Strategy name ([`Strategy::name`]).
    pub strategy: String,
    /// The pinned fingerprint.
    pub digest: RunDigest,
}

/// Computes the golden entries of one scenario over its generated batches
/// (sequential execution; the digests are worker-count invariant by the
/// execution-plane contract, which `tests/golden.rs` re-proves at 4
/// workers).
pub fn compute_golden(
    scenario: &Scenario,
    batches: &[Batch],
) -> Result<Vec<GoldenEntry>, NetshedError> {
    let capacity = corpus_capacity(batches);
    let mut entries = Vec::new();
    for (name, strategy) in all_strategies() {
        let digest = digest_run(batches, strategy, capacity, 1)?;
        entries.push(GoldenEntry { scenario: scenario.name().to_string(), strategy: name, digest });
    }
    Ok(entries)
}

/// Renders manifest rows in the committed `GOLDEN.digests` format.
pub fn format_manifest(entries: &[GoldenEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# netshed golden-replay corpus manifest v1\n\
         # scenario strategy bins records decisions intervals\n",
    );
    for entry in entries {
        // Writing to a String is infallible.
        let _ = writeln!(
            out,
            "{} {} {} {:016x} {:016x} {:016x}",
            entry.scenario,
            entry.strategy,
            entry.digest.bins,
            entry.digest.records,
            entry.digest.decisions,
            entry.digest.intervals
        );
    }
    out
}

/// Parses a `GOLDEN.digests` manifest (inverse of [`format_manifest`]).
pub fn parse_manifest(text: &str) -> Result<Vec<GoldenEntry>, String> {
    let mut entries = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(format!(
                "manifest line {}: expected 6 fields, got {}: {line:?}",
                number + 1,
                fields.len()
            ));
        }
        let bins = fields[2]
            .parse::<u64>()
            .map_err(|e| format!("manifest line {}: bad bin count: {e}", number + 1))?;
        let hex = |field: &str, what: &str| {
            u64::from_str_radix(field, 16)
                .map_err(|e| format!("manifest line {}: bad {what} digest: {e}", number + 1))
        };
        entries.push(GoldenEntry {
            scenario: fields[0].to_string(),
            strategy: fields[1].to_string(),
            digest: RunDigest {
                bins,
                records: hex(fields[3], "records")?,
                decisions: hex(fields[4], "decisions")?,
                intervals: hex(fields[5], "intervals")?,
            },
        });
    }
    Ok(entries)
}

/// Compares a pinned digest against a fresh one and renders every divergence
/// as one readable line; an empty result means conformance.
pub fn diff_digests(
    scenario: &str,
    strategy: &str,
    pinned: RunDigest,
    fresh: RunDigest,
) -> Vec<String> {
    let mut drift = Vec::new();
    if pinned.bins != fresh.bins {
        drift.push(format!(
            "{scenario} / {strategy}: bin count drifted (pinned {}, got {})",
            pinned.bins, fresh.bins
        ));
    }
    for (stream, expected, actual) in [
        ("BinRecord", pinned.records, fresh.records),
        ("decision", pinned.decisions, fresh.decisions),
        ("interval-output", pinned.intervals, fresh.intervals),
    ] {
        if expected != actual {
            drift.push(format!(
                "{scenario} / {strategy}: {stream} digest drifted \
                 (pinned {expected:016x}, got {actual:016x})"
            ));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_trace::scenario::builtins;

    #[test]
    fn manifest_round_trips() {
        let entries = vec![
            GoldenEntry {
                scenario: "ddos-spike".into(),
                strategy: "mmfs_pkt".into(),
                digest: RunDigest { bins: 32, records: 1, decisions: 0xdead, intervals: u64::MAX },
            },
            GoldenEntry {
                scenario: "steady-cesca".into(),
                strategy: "no_lshed".into(),
                digest: RunDigest { bins: 30, records: 0, decisions: 2, intervals: 3 },
            },
        ];
        let text = format_manifest(&entries);
        assert_eq!(parse_manifest(&text).expect("parse"), entries);
    }

    #[test]
    fn malformed_manifests_are_rejected_with_line_numbers() {
        assert!(parse_manifest("a b c\n").expect_err("short line").contains("line 1"));
        assert!(parse_manifest("# ok\ns strat x 0 0 0\n")
            .expect_err("bad bins")
            .contains("line 2"));
        assert!(parse_manifest("s strat 1 zz 0 0\n").expect_err("bad hex").contains("records"));
    }

    #[test]
    fn diff_names_the_drifted_stream() {
        let pinned = RunDigest { bins: 10, records: 1, decisions: 2, intervals: 3 };
        assert!(diff_digests("s", "x", pinned, pinned).is_empty());
        let drifted = RunDigest { bins: 10, records: 9, decisions: 2, intervals: 3 };
        let report = diff_digests("ddos-spike", "mmfs_pkt", pinned, drifted);
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("BinRecord"));
        assert!(report[0].contains("ddos-spike / mmfs_pkt"));
    }

    #[test]
    fn strategies_resolve_by_their_historical_names() {
        assert_eq!(all_strategies().len(), 7);
        assert_eq!(
            strategy_by_name("mmfs_pkt"),
            Some(Strategy::Predictive(netshed_monitor::AllocationPolicy::MmfsPkt))
        );
        assert_eq!(strategy_by_name("nope"), None);
    }

    #[test]
    fn digest_runs_are_reproducible_per_strategy() {
        let scenario = &builtins()[0];
        let batches = scenario.generate().expect("builtin is valid");
        let capacity = corpus_capacity(&batches);
        let (_, strategy) = &all_strategies()[4];
        let a = digest_run(&batches, *strategy, capacity, 1).expect("run");
        let b = digest_run(&batches, *strategy, capacity, 1).expect("run");
        assert_eq!(a, b);
        assert!(a.bins > 0);
    }
}
