//! Argument parsing for the `scenarios` binary, as a library.
//!
//! The parser lives here rather than in `src/bin/scenarios.rs` so its
//! contract is unit-testable: unknown subcommands and unknown flags fail
//! with a nonzero exit and a usage string on stderr, flags a command does
//! not accept are rejected rather than silently dropped, excess positional
//! arguments are errors, and `--help` works everywhere (global and
//! per-command). The binary itself is a thin dispatcher over
//! [`parse_scenarios_args`].

use std::path::PathBuf;

/// A fully parsed `scenarios` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenariosCommand {
    /// `scenarios [list]` — describe the built-in scenarios.
    List,
    /// `scenarios record [--dir D]` — re-record traces, pin digests.
    Record {
        /// Corpus directory.
        dir: PathBuf,
    },
    /// `scenarios verify [--dir D] [--workers N] [--borrowed]`.
    Verify {
        /// Corpus directory.
        dir: PathBuf,
        /// Worker count for the digest runs.
        workers: usize,
        /// Replay through the zero-copy decode path.
        borrowed: bool,
    },
    /// `scenarios run <scenario> [--strategy S] [--predictor P]
    /// [--workers N]`.
    Run {
        /// Scenario name.
        name: String,
        /// Strategy name; the default is the paper's headline configuration.
        strategy: Option<String>,
        /// Predictor name; the default is the paper's MLR+FCBF method.
        predictor: Option<String>,
        /// Worker count.
        workers: usize,
    },
    /// `scenarios checkpoint <scenario> <strategy> [--at BIN] [--out F]
    /// [--workers N]` — run a scenario to a midpoint under a daemon and
    /// write the `.nsck` checkpoint.
    Checkpoint {
        /// Scenario name.
        name: String,
        /// Strategy name.
        strategy: String,
        /// Non-empty bins to process before checkpointing; the default is
        /// half the scenario.
        at: Option<u64>,
        /// Output path of the `.nsck` file.
        out: PathBuf,
        /// Worker count.
        workers: usize,
    },
    /// `scenarios resume <scenario> <strategy> --from F [--dir D]
    /// [--workers N]` — restore a `.nsck` checkpoint in this (fresh) process
    /// and finish the run; with `--dir`, verify the final digest against the
    /// corpus manifest.
    Resume {
        /// Scenario name.
        name: String,
        /// Strategy name.
        strategy: String,
        /// Path of the `.nsck` file to restore.
        from: PathBuf,
        /// When set, verify the final digest against `GOLDEN.digests` in
        /// this directory.
        dir: Option<PathBuf>,
        /// Worker count.
        workers: usize,
    },
    /// `scenarios help [command]` / `scenarios --help` /
    /// `scenarios <command> --help`.
    Help {
        /// The command to describe; `None` prints the global usage.
        topic: Option<String>,
    },
}

/// A parse failure: the message goes to stderr, followed by the usage of
/// the closest command (or the global usage), and the process exits
/// nonzero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What was wrong with the invocation.
    pub message: String,
    /// The usage text to print after the message.
    pub usage: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n{}", self.message, self.usage)
    }
}

const COMMAND_NAMES: [&str; 7] =
    ["list", "record", "verify", "run", "checkpoint", "resume", "help"];

/// The usage text for one command, or the global synopsis for `None` /
/// unknown names.
pub fn usage(topic: Option<&str>) -> String {
    match topic {
        Some("list") => "usage: scenarios list\n\
             describe the built-in scenarios (bins, links, packets, phases)"
            .to_string(),
        Some("record") => "usage: scenarios record [--dir DIR]\n\
             regenerate every scenario, write the .nstr recordings and pin the\n\
             per-strategy digests into GOLDEN.digests (default --dir corpus)"
            .to_string(),
        Some("verify") => "usage: scenarios verify [--dir DIR] [--workers N] [--borrowed]\n\
             replay the committed corpus and fail loudly on any digest drift;\n\
             --borrowed decodes through the zero-copy replay plane"
            .to_string(),
        Some("run") => "usage: scenarios run <scenario> [--strategy NAME] [--predictor NAME] \
             [--workers N]\n\
             replay one scenario under one strategy and print its digest;\n\
             --predictor swaps the prediction method (e.g. robust_mlr_fcbf\n\
             to compare the hardened predictor against the mlr_fcbf default)"
            .to_string(),
        Some("checkpoint") => {
            "usage: scenarios checkpoint <scenario> <strategy> [--at BIN] [--out FILE] [--workers N]\n\
             run the scenario under a service daemon to a midpoint (default: half\n\
             the non-empty bins) and write the .nsck checkpoint (default --out\n\
             <scenario>.<strategy>.nsck)"
                .to_string()
        }
        Some("resume") => {
            "usage: scenarios resume <scenario> <strategy> --from FILE [--dir DIR] [--workers N]\n\
             restore a .nsck checkpoint in this process, replay the remaining bins\n\
             and print the final digest as a manifest row; with --dir, also verify\n\
             it against GOLDEN.digests and fail on drift"
                .to_string()
        }
        Some("help") => "usage: scenarios help [command]".to_string(),
        _ => "usage: scenarios <command> [options]\n\
              commands:\n  \
                list        describe the built-in scenarios\n  \
                record      re-record traces and pin golden digests\n  \
                verify      replay the corpus against the manifest\n  \
                run         digest one scenario / strategy pair\n  \
                checkpoint  run to a midpoint and write a .nsck snapshot\n  \
                resume      restore a .nsck snapshot and finish the run\n  \
                help        show this message or one command's usage\n\
              run `scenarios <command> --help` for details on one command"
            .to_string(),
    }
}

fn error(command: Option<&str>, message: impl Into<String>) -> CliError {
    CliError { message: message.into(), usage: usage(command) }
}

/// Parses the argument vector of the `scenarios` binary (without the
/// program name). See the module docs for the contract.
pub fn parse_scenarios_args(args: &[String]) -> Result<ScenariosCommand, CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut strategy: Option<String> = None;
    let mut predictor: Option<String> = None;
    let mut at: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut from: Option<PathBuf> = None;
    let mut borrowed = false;
    let mut help = false;
    let mut positional: Vec<String> = Vec::new();

    // The command name is the first positional; flag errors want to cite it
    // even when they occur before it is reached.
    let command_hint = || -> Option<String> { args.iter().find(|a| !a.starts_with('-')).cloned() };

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> Result<String, CliError> {
            iter.next()
                .cloned()
                .ok_or_else(|| error(command_hint().as_deref(), format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "--borrowed" => borrowed = true,
            "--dir" => dir = Some(PathBuf::from(value_of("--dir")?)),
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--from" => from = Some(PathBuf::from(value_of("--from")?)),
            "--strategy" => strategy = Some(value_of("--strategy")?),
            "--predictor" => predictor = Some(value_of("--predictor")?),
            "--workers" => {
                let value = value_of("--workers")?;
                match value.parse::<usize>() {
                    Ok(count) if count >= 1 => workers = Some(count),
                    // A typo like `--workers two` must not silently verify
                    // at the default count.
                    _ => {
                        return Err(error(
                            command_hint().as_deref(),
                            format!("--workers requires a count >= 1, got {value:?}"),
                        ))
                    }
                }
            }
            "--at" => {
                let value = value_of("--at")?;
                match value.parse::<u64>() {
                    Ok(bin) => at = Some(bin),
                    Err(_) => {
                        return Err(error(
                            command_hint().as_deref(),
                            format!("--at requires a bin count, got {value:?}"),
                        ))
                    }
                }
            }
            other if other.starts_with('-') => {
                return Err(error(command_hint().as_deref(), format!("unknown flag {other:?}")))
            }
            other => positional.push(other.to_string()),
        }
    }

    let command = positional.first().map_or("list", String::as_str).to_string();
    let command = command.as_str();
    if help {
        // `scenarios --help` and `scenarios <command> --help` both land
        // here; an unknown topic still prints the global usage.
        let topic = positional.first().cloned();
        return Ok(ScenariosCommand::Help { topic });
    }
    if !COMMAND_NAMES.contains(&command) {
        return Err(error(
            None,
            format!("unknown command {command:?} (use {})", COMMAND_NAMES.join(" | ")),
        ));
    }

    // Flags a command ignores are rejected, not silently dropped — a caller
    // passing `run … --borrowed` must not believe the borrowed plane ran.
    let applicable: &[&str] = match command {
        "list" | "help" => &[],
        "record" => &["--dir"],
        "verify" => &["--dir", "--workers", "--borrowed"],
        "run" => &["--workers", "--strategy", "--predictor"],
        "checkpoint" => &["--at", "--out", "--workers"],
        "resume" => &["--from", "--dir", "--workers"],
        _ => unreachable!("command membership checked above"),
    };
    for (flag, set) in [
        ("--dir", dir.is_some()),
        ("--workers", workers.is_some()),
        ("--strategy", strategy.is_some()),
        ("--predictor", predictor.is_some()),
        ("--at", at.is_some()),
        ("--out", out.is_some()),
        ("--from", from.is_some()),
        ("--borrowed", borrowed),
    ] {
        if set && !applicable.contains(&flag) {
            return Err(error(Some(command), format!("{flag} does not apply to `{command}`")));
        }
    }

    let expect_positionals = |count: usize, what: &str| -> Result<(), CliError> {
        match positional.len().cmp(&count) {
            std::cmp::Ordering::Less => {
                Err(error(Some(command), format!("`{command}` requires {what}")))
            }
            std::cmp::Ordering::Greater => {
                Err(error(Some(command), format!("unexpected argument {:?}", positional[count])))
            }
            std::cmp::Ordering::Equal => Ok(()),
        }
    };

    let workers = workers.unwrap_or(1);
    match command {
        "list" => {
            if !positional.is_empty() {
                expect_positionals(1, "no arguments")?;
            }
            Ok(ScenariosCommand::List)
        }
        "record" => {
            expect_positionals(1, "no arguments")?;
            Ok(ScenariosCommand::Record { dir: dir.unwrap_or_else(|| PathBuf::from("corpus")) })
        }
        "verify" => {
            expect_positionals(1, "no arguments")?;
            Ok(ScenariosCommand::Verify {
                dir: dir.unwrap_or_else(|| PathBuf::from("corpus")),
                workers,
                borrowed,
            })
        }
        "run" => {
            expect_positionals(2, "a scenario name")?;
            Ok(ScenariosCommand::Run { name: positional[1].clone(), strategy, predictor, workers })
        }
        "checkpoint" => {
            expect_positionals(3, "a scenario name and a strategy name")?;
            let name = positional[1].clone();
            let strategy = positional[2].clone();
            let out = out.unwrap_or_else(|| PathBuf::from(format!("{name}.{strategy}.nsck")));
            Ok(ScenariosCommand::Checkpoint { name, strategy, at, out, workers })
        }
        "resume" => {
            expect_positionals(3, "a scenario name and a strategy name")?;
            let Some(from) = from else {
                return Err(error(Some("resume"), "`resume` requires --from <file.nsck>"));
            };
            Ok(ScenariosCommand::Resume {
                name: positional[1].clone(),
                strategy: positional[2].clone(),
                from,
                dir,
                workers,
            })
        }
        "help" => {
            if positional.len() > 2 {
                expect_positionals(2, "at most one command name")?;
            }
            Ok(ScenariosCommand::Help { topic: positional.get(1).cloned() })
        }
        _ => unreachable!("command membership checked above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ScenariosCommand, CliError> {
        let args: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_scenarios_args(&args)
    }

    #[test]
    fn no_arguments_defaults_to_list() {
        assert_eq!(parse(&[]).expect("parse"), ScenariosCommand::List);
        assert_eq!(parse(&["list"]).expect("parse"), ScenariosCommand::List);
    }

    #[test]
    fn unknown_subcommands_fail_with_the_global_usage() {
        let err = parse(&["frobnicate"]).expect_err("unknown command");
        assert!(err.message.contains("frobnicate"));
        assert!(err.usage.contains("usage: scenarios <command>"));
    }

    #[test]
    fn unknown_flags_fail_instead_of_becoming_positionals() {
        let err = parse(&["verify", "--frobnicate"]).expect_err("unknown flag");
        assert!(err.message.contains("--frobnicate"));
        let err = parse(&["-x"]).expect_err("unknown short flag");
        assert!(err.message.contains("-x"));
    }

    #[test]
    fn excess_positionals_are_rejected() {
        let err = parse(&["verify", "extra"]).expect_err("excess positional");
        assert!(err.message.contains("extra"));
        let err = parse(&["run", "ddos-spike", "surplus"]).expect_err("excess positional");
        assert!(err.message.contains("surplus"));
    }

    #[test]
    fn inapplicable_flags_are_rejected_per_command() {
        let err = parse(&["run", "ddos-spike", "--borrowed"]).expect_err("inapplicable");
        assert!(err.message.contains("--borrowed"));
        assert!(err.message.contains("run"));
        let err = parse(&["record", "--workers", "4"]).expect_err("inapplicable");
        assert!(err.message.contains("--workers"));
        let err = parse(&["checkpoint", "a", "b", "--strategy", "x"]).expect_err("inapplicable");
        assert!(err.message.contains("--strategy"));
    }

    #[test]
    fn flag_values_are_validated() {
        assert!(parse(&["verify", "--workers"]).expect_err("missing").message.contains("value"));
        assert!(parse(&["verify", "--workers", "two"])
            .expect_err("bad count")
            .message
            .contains("two"));
        assert!(parse(&["verify", "--workers", "0"]).is_err());
        assert!(parse(&["checkpoint", "a", "b", "--at", "soon"])
            .expect_err("bad bin")
            .message
            .contains("soon"));
    }

    #[test]
    fn help_works_everywhere() {
        assert_eq!(parse(&["--help"]).expect("parse"), ScenariosCommand::Help { topic: None });
        assert_eq!(parse(&["-h"]).expect("parse"), ScenariosCommand::Help { topic: None });
        assert_eq!(
            parse(&["verify", "--help"]).expect("parse"),
            ScenariosCommand::Help { topic: Some("verify".into()) }
        );
        assert_eq!(
            parse(&["help", "resume"]).expect("parse"),
            ScenariosCommand::Help { topic: Some("resume".into()) }
        );
        // --help wins even when the rest of the invocation is incomplete.
        assert_eq!(
            parse(&["checkpoint", "--help"]).expect("parse"),
            ScenariosCommand::Help { topic: Some("checkpoint".into()) }
        );
    }

    #[test]
    fn every_command_has_usage_text() {
        for name in COMMAND_NAMES {
            let text = usage(Some(name));
            assert!(text.starts_with("usage: scenarios"), "{name}: {text}");
        }
        assert!(usage(None).contains("checkpoint"));
        assert!(usage(None).contains("resume"));
    }

    #[test]
    fn verify_collects_its_flags() {
        assert_eq!(
            parse(&["verify", "--dir", "elsewhere", "--workers", "4", "--borrowed"])
                .expect("parse"),
            ScenariosCommand::Verify {
                dir: PathBuf::from("elsewhere"),
                workers: 4,
                borrowed: true
            }
        );
    }

    #[test]
    fn checkpoint_defaults_its_output_path() {
        assert_eq!(
            parse(&["checkpoint", "ddos-spike", "mmfs_pkt"]).expect("parse"),
            ScenariosCommand::Checkpoint {
                name: "ddos-spike".into(),
                strategy: "mmfs_pkt".into(),
                at: None,
                out: PathBuf::from("ddos-spike.mmfs_pkt.nsck"),
                workers: 1,
            }
        );
        assert_eq!(
            parse(&["checkpoint", "s", "x", "--at", "12", "--out", "cp.nsck", "--workers", "2"])
                .expect("parse"),
            ScenariosCommand::Checkpoint {
                name: "s".into(),
                strategy: "x".into(),
                at: Some(12),
                out: PathBuf::from("cp.nsck"),
                workers: 2,
            }
        );
    }

    #[test]
    fn resume_requires_its_source_file() {
        let err = parse(&["resume", "ddos-spike", "mmfs_pkt"]).expect_err("missing --from");
        assert!(err.message.contains("--from"));
        assert!(err.usage.contains("resume"));
        assert_eq!(
            parse(&["resume", "s", "x", "--from", "cp.nsck", "--dir", "corpus"]).expect("parse"),
            ScenariosCommand::Resume {
                name: "s".into(),
                strategy: "x".into(),
                from: PathBuf::from("cp.nsck"),
                dir: Some(PathBuf::from("corpus")),
                workers: 1,
            }
        );
    }

    #[test]
    fn run_collects_its_predictor_and_strategy() {
        assert_eq!(
            parse(&[
                "run",
                "bm-mimicry",
                "--strategy",
                "eq_srates",
                "--predictor",
                "robust_mlr_fcbf"
            ])
            .expect("parse"),
            ScenariosCommand::Run {
                name: "bm-mimicry".into(),
                strategy: Some("eq_srates".into()),
                predictor: Some("robust_mlr_fcbf".into()),
                workers: 1,
            }
        );
        // --predictor only applies to `run`.
        let err = parse(&["verify", "--predictor", "slr"]).expect_err("inapplicable");
        assert!(err.message.contains("--predictor"));
    }

    #[test]
    fn run_requires_a_scenario() {
        let err = parse(&["run"]).expect_err("missing scenario");
        assert!(err.message.contains("requires"));
        assert!(err.usage.contains("run <scenario>"));
    }
}
