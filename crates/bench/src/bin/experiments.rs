//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```sh
//! cargo run -p netshed-bench --release --bin experiments -- list
//! cargo run -p netshed-bench --release --bin experiments -- <experiment-id>
//! cargo run -p netshed-bench --release --bin experiments -- all [--batches N] [--scale S]
//! ```
//!
//! Each experiment prints the same rows / series the corresponding paper
//! table or figure reports (numbers differ in absolute value because the
//! substrate is a synthetic trace and a simulated cycle model — see
//! `EXPERIMENTS.md` for the paper-vs-measured comparison).

use netshed_bench::{
    capacity_for_overload, fmt_pm, mean, profile_trace, run_with_reference, stdev,
    strategy_accuracy, RunResult, DEFAULT_BATCHES, DEFAULT_SCALE,
};
use netshed_fairness::{AllocationGame, FairnessMode};
use netshed_features::{FeatureExtractor, FeatureId};
use netshed_linalg::stats::percentile;
use netshed_monitor::{AllocationPolicy, MonitorConfig, Strategy};
use netshed_predict::{
    ErrorStats, EwmaPredictor, FcbfConfig, MlrConfig, MlrPredictor, Predictor, SlrPredictor,
};
use netshed_queries::{
    build_query, CustomBehavior, CycleMeter, MeasurementNoise, QueryKind, QuerySpec,
};
use netshed_trace::{Anomaly, AnomalyKind, Batch, TraceGenerator, TraceProfile};

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
struct Options {
    batches: usize,
    scale: f64,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self { batches: DEFAULT_BATCHES, scale: DEFAULT_SCALE, seed: 42 }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options::default();
    let mut ids = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--batches" => {
                options.batches =
                    iter.next().and_then(|v| v.parse().ok()).unwrap_or(options.batches);
            }
            "--scale" => {
                options.scale = iter.next().and_then(|v| v.parse().ok()).unwrap_or(options.scale);
            }
            "--seed" => {
                options.seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or(options.seed);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids[0] == "list" {
        print_list();
        return;
    }
    let requested: Vec<&str> = if ids[0] == "all" {
        ALL_EXPERIMENTS.iter().map(|(id, _, _)| *id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in requested {
        match ALL_EXPERIMENTS.iter().find(|(eid, _, _)| *eid == id) {
            Some((_, description, runner)) => {
                println!("\n================================================================");
                println!("experiment {id}: {description}");
                println!("================================================================");
                runner(&options);
            }
            None => eprintln!("unknown experiment id: {id} (use `list`)"),
        }
    }
}

type Runner = fn(&Options);

/// Every experiment id, its description and its runner.
const ALL_EXPERIMENTS: &[(&str, &str, Runner)] = &[
    ("fig2_2", "average cost per second of the CoMo queries", fig2_2),
    ("fig3_1", "CPU usage of an unknown query vs packets/bytes/flows under an anomaly", fig3_1),
    ("fig3_3", "scatter of CPU usage vs packets per batch (flows query)", fig3_3),
    ("fig3_4", "SLR vs MLR prediction over time (flows query)", fig3_4),
    ("fig3_5", "prediction error vs cost as a function of history and FCBF threshold", fig3_5),
    ("fig3_6", "prediction error per query vs history and FCBF threshold", fig3_6),
    ("fig3_7_8", "prediction error over time on the four trace profiles", fig3_7_8),
    ("fig3_9", "EWMA vs SLR prediction for the counter query", fig3_9),
    ("fig3_10", "EWMA prediction error as a function of the weight alpha", fig3_10),
    ("fig3_11_12", "EWMA/SLR/MLR error over time, maximum and 95th percentile", fig3_11_12),
    ("fig3_13_15", "EWMA/SLR/MLR prediction under a DDoS attack (flows query)", fig3_13_15),
    ("tab3_2", "breakdown of MLR+FCBF prediction error and selected features by query", tab3_2),
    ("tab3_3", "EWMA vs SLR vs MLR+FCBF error statistics per query", tab3_3),
    ("tab3_4", "prediction overhead breakdown", tab3_4),
    ("fig4_1", "CDF of the CPU usage per batch for the three systems", fig4_1),
    ("fig4_2", "link load, uncontrolled drops and unsampled packets per system", fig4_2),
    ("fig4_3", "average error in the query answers per system", fig4_3),
    ("fig4_4", "CPU usage after load shedding (stacked) and predicted load", fig4_4),
    ("fig4_5_6", "CPU usage and flows error with/without shedding under a SYN flood", fig4_5_6),
    ("tab4_1", "accuracy error per query: predictive vs original vs reactive", tab4_1),
    ("fig5_1", "mmfs_pkt minus mmfs_cpu accuracy, simulated 1 heavy + 10 light queries", fig5_1),
    ("fig5_2", "mmfs_pkt minus mmfs_cpu accuracy, 1 trace + 10 counter queries", fig5_2),
    ("fig5_4", "average and minimum accuracy of the strategies vs overload level", fig5_4),
    ("fig5_5", "autofocus accuracy over time at K=0.2 for the four strategies", fig5_5),
    ("tab5_2", "minimum sampling rates and accuracy per query at K=0.5", tab5_2),
    ("fig6_1_3", "custom shedding of the p2p-detector: cycles, accuracy, overuse", fig6_1_3),
    ("fig6_4", "accuracy vs sampling rate (high-watermark, top-k, p2p-detector)", fig6_4),
    ("fig6_5", "average and minimum accuracy vs overload with custom shedding", fig6_5),
    ("fig6_6_7", "eq_srates without custom shedding vs mmfs_pkt with custom shedding", fig6_6_7),
    ("fig6_8", "performance under a massive DDoS attack", fig6_8),
    ("fig6_9", "effect of new query arrivals", fig6_9),
    ("fig6_10", "robustness against selfish queries", fig6_10),
    ("fig6_11", "robustness against buggy queries", fig6_11),
    (
        "fig6_12_14",
        "long run: CPU, drops, accuracy and shedding rate over time (Table 6.2)",
        fig6_12_14,
    ),
    ("ablation_rtthresh", "ablation: buffer discovery on/off", ablation_rtthresh),
    (
        "ablation_error_correction",
        "ablation: EWMA error correction on/off",
        ablation_error_correction,
    ),
];

fn print_list() {
    println!("available experiments (paper artefact -> id):\n");
    for (id, description, _) in ALL_EXPERIMENTS {
        println!("  {id:<26} {description}");
    }
    println!("\nrun them all with: cargo run -p netshed-bench --release --bin experiments -- all");
}

// --------------------------------------------------------------------------
// Shared helpers
// --------------------------------------------------------------------------

fn chapter4_specs() -> Vec<QuerySpec> {
    QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect()
}

fn chapter5_specs() -> Vec<QuerySpec> {
    QueryKind::CHAPTER5_SET.iter().map(|kind| QuerySpec::new(*kind)).collect()
}

/// Runs one query over a trace at full rate and returns, per batch, the
/// feature vector and the (noisy) measured cycles. This is the raw material
/// of every Chapter 3 prediction experiment.
fn query_cost_series(
    kind: QueryKind,
    batches: &[Batch],
    noise_seed: u64,
) -> Vec<(netshed_features::FeatureVector, f64)> {
    let mut query = build_query(kind);
    let mut extractor = FeatureExtractor::with_defaults();
    let mut noise = MeasurementNoise::realistic(noise_seed);
    let mut series = Vec::with_capacity(batches.len());
    for batch in batches {
        let (features, _) = extractor.extract(batch);
        let mut meter = CycleMeter::new();
        query.process_batch(&batch.view(), 1.0, &mut meter);
        let (measured, _) = noise.measure(meter.cycles());
        series.push((features, measured as f64));
        if batch.bin_index % 10 == 9 {
            let _ = query.end_interval();
        }
    }
    series
}

/// Drives a predictor over a cost series and returns its error statistics.
fn predictor_errors(
    predictor: &mut dyn Predictor,
    series: &[(netshed_features::FeatureVector, f64)],
    warmup: usize,
) -> ErrorStats {
    let mut stats = ErrorStats::new();
    for (index, (features, cycles)) in series.iter().enumerate() {
        let predicted = predictor.predict(features);
        if index >= warmup && *cycles > 0.0 {
            stats.record(predicted, *cycles);
        }
        predictor.observe(features, *cycles);
    }
    stats
}

fn mlr_predictor(history: usize, threshold: f64) -> MlrPredictor {
    MlrPredictor::new(MlrConfig {
        history,
        fcbf: FcbfConfig { threshold, max_features: 8 },
        ..MlrConfig::default()
    })
}

fn feature_name(index: usize) -> String {
    FeatureId::from_index(index).name()
}

// --------------------------------------------------------------------------
// Chapter 2
// --------------------------------------------------------------------------

/// Figure 2.2: average cost per second of every query on the CESCA-II-like
/// profile.
fn fig2_2(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(300), options.scale);
    println!("{:<16} {:>20}", "query", "cycles/second");
    let mut rows = Vec::new();
    for kind in QueryKind::ALL {
        let mut query = build_query(kind);
        let mut total = 0u64;
        for batch in &batches {
            let mut meter = CycleMeter::new();
            query.process_batch(&batch.view(), 1.0, &mut meter);
            total += meter.cycles();
        }
        let seconds = batches.len() as f64 * 0.1;
        rows.push((kind.name(), total as f64 / seconds));
    }
    rows.sort_by(|a, b| a.0.cmp(b.0));
    for (name, cycles_per_second) in rows {
        println!("{name:<16} {cycles_per_second:>20.0}");
    }
}

// --------------------------------------------------------------------------
// Chapter 3: prediction
// --------------------------------------------------------------------------

/// Figure 3.1: cycles of an "unknown" (flows) query under a flood anomaly,
/// against packets, bytes and 5-tuple flows per batch.
fn fig3_1(options: &Options) {
    let mut generator =
        TraceGenerator::new(TraceProfile::CescaI.config(options.seed, options.scale));
    generator.add_anomaly(
        Anomaly::new(AnomalyKind::DdosFlood { target: 0x0a00_0001 }, 40, 60, 1200)
            .with_duty_cycle(20),
    );
    let batches = generator.batches(100);
    let series = query_cost_series(QueryKind::Flows, &batches, options.seed);
    println!("{:>4} {:>12} {:>8} {:>10} {:>8}", "bin", "cpu_cycles", "packets", "bytes", "flows5t");
    for (index, ((features, cycles), batch)) in series.iter().zip(&batches).enumerate() {
        if index % 5 != 0 {
            continue;
        }
        let flows = features.get(FeatureId::from_index(2 + 9 * 4)); // unique 5-tuple
        println!(
            "{index:>4} {cycles:>12.0} {:>8.0} {:>10.0} {flows:>8.0}",
            features.packets(),
            batch.total_bytes() as f64,
        );
    }
}

/// Figure 3.3: scatter of CPU usage vs packets per batch for the flows query.
fn fig3_3(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaI, options.seed, 200, options.scale);
    let series = query_cost_series(QueryKind::Flows, &batches, options.seed);
    println!("{:>8} {:>10} {:>12}", "packets", "new_5t", "cpu_cycles");
    for (features, cycles) in series.iter().step_by(4) {
        let new_5t = features.get(FeatureId::from_index(2 + 9 * 4 + 1));
        println!("{:>8.0} {:>10.0} {:>12.0}", features.packets(), new_5t, cycles);
    }
}

/// Figure 3.4: SLR vs MLR predictions over time for the flows query.
fn fig3_4(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaI, options.seed, 200, options.scale);
    let series = query_cost_series(QueryKind::Flows, &batches, options.seed);
    let mut slr = SlrPredictor::on_packets();
    let mut mlr = mlr_predictor(60, 0.6);
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "bin", "actual", "slr", "mlr", "err_slr", "err_mlr"
    );
    for (index, (features, cycles)) in series.iter().enumerate() {
        let slr_prediction = slr.predict(features);
        let mlr_prediction = mlr.predict(features);
        slr.observe(features, *cycles);
        mlr.observe(features, *cycles);
        if index >= 60 && index % 5 == 0 && *cycles > 0.0 {
            println!(
                "{index:>4} {cycles:>12.0} {slr_prediction:>12.0} {mlr_prediction:>12.0} {:>10.4} {:>10.4}",
                (1.0 - slr_prediction / cycles).abs(),
                (1.0 - mlr_prediction / cycles).abs()
            );
        }
    }
}

/// Figure 3.5: error and cost of the MLR as a function of the history length
/// and of the FCBF threshold (aggregate over the seven queries).
fn fig3_5(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaII, options.seed, 300, options.scale);
    println!("-- error vs history (FCBF threshold fixed at 0.6) --");
    println!("{:>10} {:>12} {:>14}", "history(s)", "mean_error", "cost(ops/bin)");
    for history_seconds in [1usize, 2, 6, 10, 30, 60] {
        let mut total_error = 0.0;
        let mut total_cost = 0.0;
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor = mlr_predictor(history_seconds * 10, 0.6);
            let stats = predictor_errors(&mut predictor, &series, 60);
            total_error += stats.mean();
            total_cost += predictor.last_cost_operations() as f64;
        }
        let n = QueryKind::CHAPTER4_SET.len() as f64;
        println!("{history_seconds:>10} {:>12.4} {:>14.0}", total_error / n, total_cost / n);
    }
    println!("\n-- error vs FCBF threshold (history fixed at 6 s) --");
    println!("{:>10} {:>12} {:>14}", "threshold", "mean_error", "cost(ops/bin)");
    for threshold in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9] {
        let mut total_error = 0.0;
        let mut total_cost = 0.0;
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor = mlr_predictor(60, threshold);
            let stats = predictor_errors(&mut predictor, &series, 60);
            total_error += stats.mean();
            total_cost += predictor.last_cost_operations() as f64;
        }
        let n = QueryKind::CHAPTER4_SET.len() as f64;
        println!("{threshold:>10.1} {:>12.4} {:>14.0}", total_error / n, total_cost / n);
    }
}

/// Figure 3.6: the same sweeps broken down by query.
fn fig3_6(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaII, options.seed, 300, options.scale);
    println!("-- error per query vs history (threshold 0.6) --");
    print!("{:<16}", "query");
    let histories = [1usize, 6, 30];
    for h in histories {
        print!(" {h:>9}s");
    }
    println!();
    for kind in QueryKind::CHAPTER4_SET {
        let series = query_cost_series(kind, &batches, options.seed);
        print!("{:<16}", kind.name());
        for history_seconds in histories {
            let mut predictor = mlr_predictor(history_seconds * 10, 0.6);
            let stats = predictor_errors(&mut predictor, &series, 60);
            print!(" {:>10.4}", stats.mean());
        }
        println!();
    }
    println!("\n-- error per query vs FCBF threshold (history 6 s) --");
    print!("{:<16}", "query");
    let thresholds = [0.2, 0.6, 0.9];
    for t in thresholds {
        print!(" {t:>10.1}");
    }
    println!();
    for kind in QueryKind::CHAPTER4_SET {
        let series = query_cost_series(kind, &batches, options.seed);
        print!("{:<16}", kind.name());
        for threshold in thresholds {
            let mut predictor = mlr_predictor(60, threshold);
            let stats = predictor_errors(&mut predictor, &series, 60);
            print!(" {:>10.4}", stats.mean());
        }
        println!();
    }
}

/// Figures 3.7 and 3.8: MLR+FCBF prediction error over time on the four
/// trace profiles (average and maximum across the seven queries).
fn fig3_7_8(options: &Options) {
    for profile in
        [TraceProfile::CescaI, TraceProfile::CescaII, TraceProfile::Abilene, TraceProfile::Cenic]
    {
        let batches = profile_trace(profile, options.seed, options.batches.min(400), options.scale);
        let mut per_bin_errors: Vec<Vec<f64>> = vec![Vec::new(); batches.len()];
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor = mlr_predictor(60, 0.6);
            for (index, (features, cycles)) in series.iter().enumerate() {
                let prediction = predictor.predict(features);
                if index >= 60 && *cycles > 0.0 {
                    per_bin_errors[index].push((1.0 - prediction / cycles).abs());
                }
                predictor.observe(features, *cycles);
            }
        }
        let errors: Vec<f64> = per_bin_errors.iter().flatten().copied().collect();
        println!(
            "{:<10} average error {:.4}   max error {:.4}",
            profile.name(),
            mean(&errors),
            errors.iter().copied().fold(0.0f64, f64::max)
        );
    }
}

/// Figure 3.9: EWMA vs SLR predictions for the counter query.
fn fig3_9(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaII, options.seed, 150, options.scale);
    let series = query_cost_series(QueryKind::Counter, &batches, options.seed);
    let mut ewma = EwmaPredictor::new(0.3);
    let mut slr = SlrPredictor::on_packets();
    println!("{:>4} {:>12} {:>12} {:>12}", "bin", "actual", "ewma", "slr");
    for (index, (features, cycles)) in series.iter().enumerate() {
        let e = ewma.predict(features);
        let s = slr.predict(features);
        ewma.observe(features, *cycles);
        slr.observe(features, *cycles);
        if index >= 50 && index % 2 == 0 {
            println!("{index:>4} {cycles:>12.0} {e:>12.0} {s:>12.0}");
        }
    }
}

/// Figure 3.10: EWMA prediction error as a function of the weight alpha.
fn fig3_10(options: &Options) {
    let batches = profile_trace(TraceProfile::CescaII, options.seed, 300, options.scale);
    println!("{:>6} {:>12}", "alpha", "mean_error");
    for alpha in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut total = 0.0;
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor = EwmaPredictor::new(alpha);
            total += predictor_errors(&mut predictor, &series, 60).mean();
        }
        println!("{alpha:>6.1} {:>12.4}", total / QueryKind::CHAPTER4_SET.len() as f64);
    }
}

/// Figures 3.11 and 3.12: error over time of EWMA and SLR, and the maximum /
/// 95th percentile of the MLR+FCBF error.
fn fig3_11_12(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(400), options.scale);
    for name in ["ewma", "slr", "mlr+fcbf"] {
        let mut all = ErrorStats::new();
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor: Box<dyn Predictor> = match name {
                "ewma" => Box::new(EwmaPredictor::new(0.3)),
                "slr" => Box::new(SlrPredictor::on_packets()),
                _ => Box::new(mlr_predictor(60, 0.6)),
            };
            let stats = predictor_errors(predictor.as_mut(), &series, 60);
            all.merge(&stats);
        }
        println!(
            "{name:<10} average {:.4}   p95 {:.4}   max {:.4}",
            all.mean(),
            all.percentile(95.0),
            all.max()
        );
    }
}

/// Figures 3.13–3.15: the three predictors under a DDoS attack that goes
/// idle every other second (flows query).
fn fig3_13_15(options: &Options) {
    let mut generator =
        TraceGenerator::new(TraceProfile::CescaII.config(options.seed, options.scale));
    generator.add_anomaly(
        Anomaly::new(AnomalyKind::DdosFlood { target: 0x0a00_0001 }, 100, 300, 1500)
            .with_duty_cycle(20),
    );
    let batches = generator.batches(options.batches.min(300));
    let series = query_cost_series(QueryKind::Flows, &batches, options.seed);
    let predictors: Vec<(&str, Box<dyn Predictor>)> = vec![
        ("ewma", Box::new(EwmaPredictor::new(0.3))),
        ("slr", Box::new(SlrPredictor::on_packets())),
        ("mlr+fcbf", Box::new(mlr_predictor(60, 0.6))),
    ];
    for (name, mut predictor) in predictors {
        // Only evaluate over the attack window, which starts at bin 100.
        let mut stats = ErrorStats::new();
        for (index, (features, cycles)) in series.iter().enumerate() {
            let prediction = predictor.predict(features);
            if index >= 100 && *cycles > 0.0 {
                stats.record(prediction, *cycles);
            }
            predictor.observe(features, *cycles);
        }
        println!(
            "{name:<10} error during attack: mean {:.4}  p95 {:.4}  max {:.4}",
            stats.mean(),
            stats.percentile(95.0),
            stats.max()
        );
    }
}

/// Table 3.2: MLR+FCBF prediction error per query and selected features, on
/// two trace profiles (header-only and full-payload).
fn tab3_2(options: &Options) {
    for profile in [TraceProfile::CescaI, TraceProfile::CescaII] {
        println!("\n{} profile:", profile.name());
        println!("{:<16} {:>8} {:>8}   selected features", "query", "mean", "stdev");
        let batches = profile_trace(profile, options.seed, options.batches.min(400), options.scale);
        for kind in QueryKind::CHAPTER4_SET {
            let series = query_cost_series(kind, &batches, options.seed);
            let mut predictor = mlr_predictor(60, 0.6);
            let stats = predictor_errors(&mut predictor, &series, 60);
            let selected: Vec<String> =
                predictor.selected_features().iter().map(|&i| feature_name(i)).collect();
            println!(
                "{:<16} {:>8.4} {:>8.4}   {}",
                kind.name(),
                stats.mean(),
                stats.stdev(),
                selected.join(", ")
            );
        }
    }
}

/// Table 3.3: error statistics per query for EWMA, SLR and MLR+FCBF.
fn tab3_3(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(400), options.scale);
    println!(
        "{:<16} {:>20} {:>20} {:>20}",
        "query", "EWMA (mean ±sd)", "SLR (mean ±sd)", "MLR+FCBF (mean ±sd)"
    );
    for kind in QueryKind::CHAPTER4_SET {
        let series = query_cost_series(kind, &batches, options.seed);
        let mut ewma = EwmaPredictor::new(0.3);
        let mut slr = SlrPredictor::on_packets();
        let mut mlr = mlr_predictor(60, 0.6);
        let e = predictor_errors(&mut ewma, &series, 60);
        let s = predictor_errors(&mut slr, &series, 60);
        let m = predictor_errors(&mut mlr, &series, 60);
        println!(
            "{:<16} {:>20} {:>20} {:>20}",
            kind.name(),
            fmt_pm(e.mean(), e.stdev()),
            fmt_pm(s.mean(), s.stdev()),
            fmt_pm(m.mean(), m.stdev())
        );
    }
}

/// Table 3.4: prediction overhead breakdown (share of the total cycles spent
/// in feature extraction, feature selection and the regression).
fn tab3_4(options: &Options) {
    let specs = chapter4_specs();
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(300), options.scale);
    let config = MonitorConfig::default().with_capacity(1e15).with_strategy(Strategy::NoShedding);
    let result = run_with_reference(config, &specs, &batches, &[]);
    let query_cycles: f64 = result.bins.iter().map(|b| b.query_cycles).sum();
    let prediction_cycles: f64 = result.bins.iter().map(|b| b.prediction_cycles).sum();
    let platform_cycles: f64 = result.bins.iter().map(|b| b.platform_cycles).sum();
    let total = query_cycles + prediction_cycles + platform_cycles;
    println!("{:<28} {:>10}", "component", "overhead");
    println!("{:<28} {:>9.3}%", "prediction (extract+FCBF+MLR)", 100.0 * prediction_cycles / total);
    println!("{:<28} {:>9.3}%", "platform", 100.0 * platform_cycles / total);
    println!("{:<28} {:>9.3}%", "query processing", 100.0 * query_cycles / total);
}

// --------------------------------------------------------------------------
// Chapter 4: load shedding
// --------------------------------------------------------------------------

/// Runs the three systems of the Chapter 4 evaluation (predictive, original,
/// reactive) over the same overloaded trace.
fn chapter4_runs(options: &Options) -> Vec<(&'static str, RunResult, f64)> {
    // Chapter 4 evaluates the basic scheme, which applies one common sampling
    // rate to every query and knows nothing about per-query minimum rates
    // (those arrive in Chapter 5), so the constraints are disabled here.
    let specs: Vec<QuerySpec> = QueryKind::CHAPTER4_SET
        .iter()
        .map(|kind| QuerySpec::new(*kind).with_min_rate(0.0))
        .collect();
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches, options.scale);
    let capacity = capacity_for_overload(&specs, &batches, 0.5);
    [
        ("predictive", Strategy::Predictive(AllocationPolicy::EqualRates)),
        ("original", Strategy::NoShedding),
        ("reactive", Strategy::Reactive(AllocationPolicy::EqualRates)),
    ]
    .into_iter()
    .map(|(name, strategy)| {
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(strategy)
            .with_seed(options.seed);
        (name, run_with_reference(config, &specs, &batches, &[]), capacity)
    })
    .collect()
}

/// Figure 4.1: CDF of the CPU usage per batch for the three systems.
fn fig4_1(options: &Options) {
    let runs = chapter4_runs(options);
    let capacity = runs[0].2;
    println!("capacity per batch: {capacity:.0} cycles");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "system", "p10", "p50", "p90", "p99", ">capacity"
    );
    for (name, result, _) in &runs {
        let cycles: Vec<f64> =
            result.bins.iter().map(netshed_monitor::BinRecord::total_cycles).collect();
        let above = cycles.iter().filter(|&&c| c > capacity).count() as f64 / cycles.len() as f64;
        println!(
            "{name:<12} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>9.1}%",
            percentile(&cycles, 10.0),
            percentile(&cycles, 50.0),
            percentile(&cycles, 90.0),
            percentile(&cycles, 99.0),
            above * 100.0
        );
    }
}

/// Figure 4.2: incoming load, uncontrolled drops and unsampled packets.
fn fig4_2(options: &Options) {
    let runs = chapter4_runs(options);
    println!(
        "{:<12} {:>14} {:>16} {:>18}",
        "system", "total packets", "uncontrolled", "unsampled (avg/q)"
    );
    for (name, result, _) in &runs {
        let total: u64 = result.bins.iter().map(|b| b.incoming_packets).sum();
        let unsampled: u64 = result.bins.iter().map(|b| b.unsampled_packets).sum();
        println!("{name:<12} {total:>14} {:>15} {unsampled:>18}", result.uncontrolled_drops);
    }
}

/// Figure 4.3: average error in the query answers per system.
fn fig4_3(options: &Options) {
    let runs = chapter4_runs(options);
    println!("{:<12} {:>14} {:>14}", "system", "mean error", "max query err");
    for (name, result, _) in &runs {
        // As in the paper, only the queries whose unsampled output can be
        // estimated from sampled streams enter the average (pattern-search
        // and trace are excluded).
        let errors: Vec<f64> = result
            .mean_accuracy
            .iter()
            .filter(|(query, _)| **query != "pattern-search" && **query != "trace")
            .map(|(_, accuracy)| 1.0 - accuracy)
            .collect();
        println!(
            "{name:<12} {:>13.2}% {:>13.2}%",
            mean(&errors) * 100.0,
            errors.iter().copied().fold(0.0f64, f64::max) * 100.0
        );
    }
}

/// Figure 4.4: CPU usage after load shedding, stacked by component, plus the
/// predicted full load.
fn fig4_4(options: &Options) {
    let runs = chapter4_runs(options);
    let (_, result, capacity) = &runs[0];
    println!("capacity {capacity:.0} cycles/bin; every 20th bin shown");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "bin", "platform", "prediction", "shedding", "queries", "predicted"
    );
    for record in result.bins.iter().step_by(20) {
        println!(
            "{:>5} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            record.bin_index,
            record.platform_cycles,
            record.prediction_cycles,
            record.shedding_cycles,
            record.query_cycles,
            record.predicted_cycles
        );
    }
}

/// Figures 4.5 and 4.6: CPU usage and flows-query error with and without
/// load shedding during a SYN flood.
fn fig4_5_6(options: &Options) {
    let mut generator =
        TraceGenerator::new(TraceProfile::CescaI.config(options.seed, options.scale));
    generator.add_anomaly(Anomaly::new(
        AnomalyKind::SynFlood { target: 0x0a00_0001, port: 80 },
        100,
        300,
        800,
    ));
    let batches = generator.batches(options.batches.min(400));
    let specs = vec![QuerySpec::new(QueryKind::Flows).with_min_rate(0.0)];
    // Headroom above the normal-traffic demand, as in the paper's manually
    // chosen 6M-cycle threshold: the flood still overloads the system but the
    // non-sheddable feature extraction keeps fitting.
    let capacity = capacity_for_overload(&specs, &batches[..90], 0.0) * 1.5;
    for (name, strategy) in [
        ("no load shedding", Strategy::NoShedding),
        ("load shedding (flow sampling)", Strategy::Predictive(AllocationPolicy::EqualRates)),
    ] {
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(strategy)
            .with_seed(options.seed);
        let result = run_with_reference(config, &specs, &batches, &[]);
        let cycles: Vec<f64> =
            result.bins.iter().map(netshed_monitor::BinRecord::total_cycles).collect();
        let errors = result.error_series.get("flows").cloned().unwrap_or_default();
        println!(
            "{name:<32} peak cycles {:>12.0}  drops {:>6}  flows error mean {:.3} max {:.3}",
            cycles.iter().copied().fold(0.0f64, f64::max),
            result.uncontrolled_drops,
            mean(&errors),
            errors.iter().copied().fold(0.0f64, f64::max)
        );
    }
}

/// Table 4.1: accuracy error per query for the three systems.
fn tab4_1(options: &Options) {
    let runs = chapter4_runs(options);
    println!("{:<16} {:>20} {:>20} {:>20}", "query", "predictive", "original", "reactive");
    let names: Vec<String> = {
        let mut n: Vec<String> = runs[0].1.mean_accuracy.keys().cloned().collect();
        n.sort();
        n
    };
    for query in &names {
        // Skip the queries the paper leaves out of Table 4.1 (no standard way
        // to estimate their unsampled output).
        if query == "pattern-search" || query == "trace" {
            continue;
        }
        let cell = |result: &RunResult| {
            let series = result.error_series.get(query).cloned().unwrap_or_default();
            fmt_pm(mean(&series), stdev(&series))
        };
        println!(
            "{query:<16} {:>20} {:>20} {:>20}",
            cell(&runs[0].1),
            cell(&runs[1].1),
            cell(&runs[2].1)
        );
    }
}

// --------------------------------------------------------------------------
// Chapter 5: fairness
// --------------------------------------------------------------------------

/// Figure 5.1: simulated difference in average / minimum accuracy between
/// mmfs_pkt and mmfs_cpu with 1 heavy and 10 light queries.
fn fig5_1(_options: &Options) {
    // Analytical simulation as in Section 5.4: light queries cost 1 unit and
    // tolerate sampling well; the heavy query costs 10 units and its accuracy
    // equals its sampling rate.
    println!("{:>5} {:>5} {:>12} {:>12}", "m_q", "K", "d_avg(pkt-cpu)", "d_min(pkt-cpu)");
    for m_step in 0..=5 {
        let m_q = m_step as f64 * 0.2;
        for k_step in 0..=5 {
            let k = k_step as f64 * 0.2;
            let capacity = 20.0 * (1.0 - k);
            let demands: Vec<netshed_fairness::QueryDemand> = (0..11)
                .map(|i| {
                    let cycles = if i == 0 { 10.0 } else { 1.0 };
                    netshed_fairness::QueryDemand::new(cycles, m_q)
                })
                .collect();
            let accuracy = |allocations: &[netshed_fairness::Allocation]| -> (f64, f64) {
                let accs: Vec<f64> = allocations
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if a.is_disabled() {
                            0.0
                        } else if i == 0 {
                            a.rate()
                        } else {
                            1.0 - (1.0 - a.rate()) * 0.05
                        }
                    })
                    .collect();
                (mean(&accs), accs.iter().copied().fold(f64::INFINITY, f64::min))
            };
            let pkt = accuracy(&netshed_fairness::mmfs_pkt(&demands, capacity));
            let cpu = accuracy(&netshed_fairness::mmfs_cpu(&demands, capacity));
            println!("{m_q:>5.1} {k:>5.1} {:>12.3} {:>12.3}", pkt.0 - cpu.0, pkt.1 - cpu.1);
        }
    }
}

/// Figure 5.2: the same comparison with real queries (1 trace + 10 counters).
fn fig5_2(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(300), options.scale);
    let mut specs = vec![QuerySpec::new(QueryKind::Trace)];
    for _ in 0..10 {
        specs.push(QuerySpec::new(QueryKind::Counter));
    }
    println!("{:>5} {:>12} {:>12}", "K", "d_avg(pkt-cpu)", "d_min(pkt-cpu)");
    for k_step in 1..=4 {
        let k = k_step as f64 * 0.2;
        let capacity = capacity_for_overload(&specs, &batches, k);
        let pkt = strategy_accuracy(
            Strategy::Predictive(AllocationPolicy::MmfsPkt),
            &specs,
            &batches,
            capacity,
            options.seed,
        );
        let cpu = strategy_accuracy(
            Strategy::Predictive(AllocationPolicy::MmfsCpu),
            &specs,
            &batches,
            capacity,
            options.seed,
        );
        println!("{k:>5.1} {:>12.3} {:>12.3}", pkt.0 - cpu.0, pkt.1 - cpu.1);
    }
}

/// Figure 5.4: average and minimum accuracy of the strategies as a function
/// of the overload level.
fn fig5_4(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(400), options.scale);
    let specs = chapter5_specs();
    println!(
        "{:>5} {:>22} {:>22} {:>22} {:>22} {:>22}",
        "K", "no_lshed", "reactive", "eq_srates", "mmfs_cpu", "mmfs_pkt"
    );
    for k_step in 0..=4 {
        let k = k_step as f64 * 0.2;
        let capacity = capacity_for_overload(&specs, &batches, k);
        print!("{k:>5.1}");
        for strategy in [
            Strategy::NoShedding,
            Strategy::Reactive(AllocationPolicy::EqualRates),
            Strategy::Predictive(AllocationPolicy::EqualRates),
            Strategy::Predictive(AllocationPolicy::MmfsCpu),
            Strategy::Predictive(AllocationPolicy::MmfsPkt),
        ] {
            let (avg, min) = strategy_accuracy(strategy, &specs, &batches, capacity, options.seed);
            print!("   avg {avg:>5.2} min {min:>5.2}");
        }
        println!();
    }
}

/// Figure 5.5: autofocus accuracy over time at K=0.2 for four strategies.
fn fig5_5(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(400), options.scale);
    let specs = chapter5_specs();
    let capacity = capacity_for_overload(&specs, &batches, 0.2);
    for (name, strategy) in [
        ("no_lshed", Strategy::NoShedding),
        ("eq_srates", Strategy::Predictive(AllocationPolicy::EqualRates)),
        ("mmfs_cpu", Strategy::Predictive(AllocationPolicy::MmfsCpu)),
        ("mmfs_pkt", Strategy::Predictive(AllocationPolicy::MmfsPkt)),
    ] {
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(strategy)
            .with_seed(options.seed);
        let result = run_with_reference(config, &specs, &batches, &[]);
        let series: Vec<f64> = result
            .error_series
            .get("autofocus")
            .map(|errors| errors.iter().map(|e| 1.0 - e).collect())
            .unwrap_or_default();
        let below = series.iter().filter(|&&a| a < 0.5).count();
        println!(
            "{name:<10} mean accuracy {:.3}  min {:.3}  intervals below 0.5: {below}/{}",
            mean(&series),
            series.iter().copied().fold(f64::INFINITY, f64::min),
            series.len()
        );
    }
}

/// Table 5.2: minimum sampling rates and per-query accuracy at K = 0.5,
/// plus the Nash equilibrium check of Section 5.3.
fn tab5_2(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches.min(400), options.scale);
    let specs = chapter5_specs();
    let capacity = capacity_for_overload(&specs, &batches, 0.5);
    let strategies = [
        ("no_lshed", Strategy::NoShedding),
        ("reactive", Strategy::Reactive(AllocationPolicy::EqualRates)),
        ("eq_srates", Strategy::Predictive(AllocationPolicy::EqualRates)),
        ("mmfs_cpu", Strategy::Predictive(AllocationPolicy::MmfsCpu)),
        ("mmfs_pkt", Strategy::Predictive(AllocationPolicy::MmfsPkt)),
    ];
    let results: Vec<(&str, RunResult)> = strategies
        .iter()
        .map(|(name, strategy)| {
            let config = MonitorConfig::default()
                .with_capacity(capacity)
                .with_strategy(*strategy)
                .with_seed(options.seed);
            (*name, run_with_reference(config, &specs, &batches, &[]))
        })
        .collect();

    print!("{:<16} {:>5}", "query", "m_q");
    for (name, _) in &results {
        print!(" {name:>10}");
    }
    println!();
    for spec in &specs {
        let query = build_query(spec.kind);
        print!("{:<16} {:>5.2}", query.name(), query.min_sampling_rate());
        for (_, result) in &results {
            print!(" {:>10.2}", result.mean_accuracy.get(query.name()).copied().unwrap_or(0.0));
        }
        println!();
    }

    let game = AllocationGame::new(capacity, specs.len(), FairnessMode::Packet);
    let actions = vec![game.equilibrium_action(); specs.len()];
    println!(
        "\nNash equilibrium check (Section 5.3): all queries demanding C/|Q| = {:.0} is {}",
        game.equilibrium_action(),
        if game.is_nash_equilibrium(&actions, 100, 1e-6) {
            "a Nash equilibrium"
        } else {
            "NOT an equilibrium"
        }
    );
}

// --------------------------------------------------------------------------
// Chapter 6: custom load shedding
// --------------------------------------------------------------------------

fn chapter6_specs(behavior: Option<CustomBehavior>) -> Vec<QuerySpec> {
    let mut specs = vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
        QuerySpec::new(QueryKind::HighWatermark),
        QuerySpec::new(QueryKind::TopK),
    ];
    match behavior {
        Some(behavior) => {
            specs.push(QuerySpec::new(QueryKind::P2pDetector).with_custom(behavior));
        }
        None => specs.push(QuerySpec::new(QueryKind::P2pDetector)),
    }
    specs
}

/// Figures 6.1–6.3: cycles and accuracy of the p2p-detector with system-side
/// sampling vs its custom method, and the expected-vs-used correction.
fn fig6_1_3(options: &Options) {
    let batches =
        profile_trace(TraceProfile::UpcI, options.seed, options.batches.min(400), options.scale);
    for (name, behavior) in
        [("packet sampling", None), ("custom shedding", Some(CustomBehavior::Honest))]
    {
        let specs = chapter6_specs(behavior);
        let capacity = capacity_for_overload(&specs, &batches, 0.5);
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            .with_seed(options.seed);
        let result = run_with_reference(config, &specs, &batches, &[]);
        let p2p_cycles: Vec<f64> = result
            .bins
            .iter()
            .filter_map(|b| b.queries.iter().find(|q| q.name == "p2p-detector"))
            .map(|q| q.measured_cycles)
            .collect();
        let expected: Vec<f64> = result
            .bins
            .iter()
            .filter_map(|b| b.queries.iter().find(|q| q.name == "p2p-detector"))
            .map(|q| q.predicted_cycles * q.sampling_rate)
            .collect();
        let overuse: Vec<f64> = p2p_cycles
            .iter()
            .zip(&expected)
            .filter(|(_, e)| **e > 0.0)
            .map(|(c, e)| c / e)
            .collect();
        println!(
            "{name:<18} p2p accuracy {:.3}  mean cycles {:>10.0}  mean used/expected {:.2}",
            result.mean_accuracy.get("p2p-detector").copied().unwrap_or(0.0),
            mean(&p2p_cycles),
            mean(&overuse)
        );
    }
}

/// Figure 6.4: accuracy as a function of the (packet) sampling rate for the
/// high-watermark, top-k and p2p-detector queries.
fn fig6_4(options: &Options) {
    let batches =
        profile_trace(TraceProfile::UpcI, options.seed, options.batches.min(300), options.scale);
    let kinds = [QueryKind::HighWatermark, QueryKind::TopK, QueryKind::P2pDetector];
    print!("{:>6}", "rate");
    for kind in kinds {
        print!(" {:>16}", kind.name());
    }
    println!();
    for rate in [0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        print!("{rate:>6.2}");
        for kind in kinds {
            // Run the query over packet-sampled batches and compare against
            // the unsampled execution, outside the monitor (pure query-level
            // accuracy as in the paper's validation).
            let mut sampled_query = build_query(kind);
            let mut reference_query = build_query(kind);
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(options.seed);
            let mut errors = Vec::new();
            for (index, batch) in batches.iter().enumerate() {
                let (sampled, _) = netshed_monitor::packet_sample(&batch.view(), rate, &mut rng);
                let mut meter = CycleMeter::new();
                sampled_query.process_batch(&sampled, rate, &mut meter);
                reference_query.process_batch(&batch.view(), 1.0, &mut meter);
                if index % 10 == 9 {
                    let output = sampled_query.end_interval();
                    let truth = reference_query.end_interval();
                    errors.push(output.error_against(&truth));
                }
            }
            print!(" {:>16.3}", 1.0 - mean(&errors));
        }
        println!();
    }
}

/// Figure 6.5: average and minimum accuracy at increasing overload levels
/// with custom load shedding enabled.
fn fig6_5(options: &Options) {
    let batches =
        profile_trace(TraceProfile::UpcI, options.seed, options.batches.min(400), options.scale);
    let specs = chapter6_specs(Some(CustomBehavior::Honest));
    println!("{:>5} {:>12} {:>12}", "K", "avg accuracy", "min accuracy");
    for k_step in 0..=4 {
        let k = k_step as f64 * 0.2;
        let capacity = capacity_for_overload(&specs, &batches, k);
        let (avg, min) = strategy_accuracy(
            Strategy::Predictive(AllocationPolicy::MmfsPkt),
            &specs,
            &batches,
            capacity,
            options.seed,
        );
        println!("{k:>5.1} {avg:>12.3} {min:>12.3}");
    }
}

/// Figures 6.6 and 6.7: a system without custom shedding running eq_srates
/// vs one with custom shedding running mmfs_pkt.
fn fig6_6_7(options: &Options) {
    let batches = profile_trace(TraceProfile::UpcI, options.seed, options.batches, options.scale);
    for (name, specs, policy) in [
        ("eq_srates, no custom shedding", chapter6_specs(None), AllocationPolicy::EqualRates),
        (
            "mmfs_pkt with custom shedding",
            chapter6_specs(Some(CustomBehavior::Honest)),
            AllocationPolicy::MmfsPkt,
        ),
    ] {
        let capacity = capacity_for_overload(&specs, &batches, 0.5);
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(Strategy::Predictive(policy))
            .with_seed(options.seed);
        let result = run_with_reference(config, &specs, &batches, &[]);
        println!(
            "{name:<32} avg accuracy {:.3}  min accuracy {:.3}  drops {}",
            result.overall_mean_accuracy(),
            result.overall_min_accuracy(),
            result.uncontrolled_drops
        );
    }
}

/// Figure 6.8: performance in the presence of massive DDoS attacks.
fn fig6_8(options: &Options) {
    let mut generator = TraceGenerator::new(TraceProfile::UpcI.config(options.seed, options.scale));
    let attack_start = (options.batches / 3) as u64;
    let attack_end = (2 * options.batches / 3) as u64;
    generator.add_anomaly(Anomaly::new(
        AnomalyKind::DdosFlood { target: 0x0a00_0001 },
        attack_start,
        attack_end,
        1000,
    ));
    let batches = generator.batches(options.batches);
    let specs = chapter6_specs(Some(CustomBehavior::Honest));
    let capacity = capacity_for_overload(&specs, &batches[..(options.batches / 4)], 0.2);
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .with_seed(options.seed);
    let result = run_with_reference(config, &specs, &batches, &[]);
    println!(
        "DDoS between bins {attack_start} and {attack_end}: avg accuracy {:.3}, min accuracy {:.3}, uncontrolled drops {}",
        result.overall_mean_accuracy(),
        result.overall_min_accuracy(),
        result.uncontrolled_drops
    );
    let mean_rate_attack: Vec<f64> = result
        .bins
        .iter()
        .filter(|b| b.bin_index >= attack_start && b.bin_index < attack_end)
        .map(netshed_monitor::BinRecord::mean_sampling_rate)
        .collect();
    let mean_rate_normal: Vec<f64> = result
        .bins
        .iter()
        .filter(|b| b.bin_index < attack_start)
        .map(netshed_monitor::BinRecord::mean_sampling_rate)
        .collect();
    println!(
        "mean sampling rate: before attack {:.2}, during attack {:.2}",
        mean(&mean_rate_normal),
        mean(&mean_rate_attack)
    );
}

/// Figure 6.9: effect of new query arrivals.
fn fig6_9(options: &Options) {
    let batches = profile_trace(TraceProfile::UpcI, options.seed, options.batches, options.scale);
    let specs = vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)];
    let arrivals = vec![
        (options.batches / 4, QuerySpec::new(QueryKind::TopK)),
        (
            options.batches / 2,
            QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
        ),
    ];
    let capacity = capacity_for_overload(&chapter6_specs(None), &batches, 0.3);
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .with_seed(options.seed);
    let result = run_with_reference(config, &specs, &batches, &arrivals);
    println!("queries arriving at bins {} and {}:", options.batches / 4, options.batches / 2);
    for (name, accuracy) in &result.mean_accuracy {
        println!("  {name:<16} mean accuracy {accuracy:.3}");
    }
    println!("uncontrolled drops: {}", result.uncontrolled_drops);
}

/// Figures 6.10 / 6.11: robustness against selfish and buggy queries.
fn selfish_or_buggy(options: &Options, behavior: CustomBehavior) {
    let batches = profile_trace(TraceProfile::UpcI, options.seed, options.batches, options.scale);
    let base = vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
    ];
    let arrivals = vec![
        (options.batches / 4, QuerySpec::new(QueryKind::P2pDetector).with_custom(behavior)),
        (options.batches / 2, QuerySpec::new(QueryKind::P2pDetector).with_custom(behavior)),
    ];
    let capacity = capacity_for_overload(&chapter6_specs(Some(behavior)), &batches, 0.4);
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .with_seed(options.seed);
    let result = run_with_reference(config, &base, &batches, &arrivals);
    let disabled_bins = result
        .bins
        .iter()
        .flat_map(|b| b.queries.iter())
        .filter(|q| q.name == "p2p-detector" && q.disabled)
        .count();
    println!("misbehaving variant: {behavior:?}");
    println!("p2p-detector bins disabled by the enforcement policy: {disabled_bins}");
    for (name, accuracy) in &result.mean_accuracy {
        if *name != "p2p-detector" {
            println!("  {name:<16} mean accuracy {accuracy:.3}");
        }
    }
    println!("uncontrolled drops: {}", result.uncontrolled_drops);
}

fn fig6_10(options: &Options) {
    selfish_or_buggy(options, CustomBehavior::Selfish);
}

fn fig6_11(options: &Options) {
    selfish_or_buggy(options, CustomBehavior::Buggy);
}

/// Figures 6.12–6.14 and Table 6.2: a longer "online" run reporting CPU,
/// drops, per-query accuracy and the average shedding rate over time.
fn fig6_12_14(options: &Options) {
    let batches =
        profile_trace(TraceProfile::UpcI, options.seed, options.batches.max(600), options.scale);
    let specs = chapter6_specs(Some(CustomBehavior::Honest));
    let capacity = capacity_for_overload(&specs, &batches, 0.5);
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .with_seed(options.seed);
    let result = run_with_reference(config, &specs, &batches, &[]);
    println!("capacity {capacity:.0} cycles/bin, {} bins", result.bins.len());
    println!("\nper-query accuracy (Table 6.2):");
    println!("{:<16} {:>20}", "query", "accuracy (mean ±sd)");
    let mut names: Vec<&String> = result.mean_accuracy.keys().collect();
    names.sort();
    for name in names {
        let errors = result.error_series.get(name).cloned().unwrap_or_default();
        let accuracies: Vec<f64> = errors.iter().map(|e| 1.0 - e).collect();
        println!("{name:<16} {:>20}", fmt_pm(mean(&accuracies), stdev(&accuracies)));
    }
    let occupations: Vec<f64> = result.bins.iter().map(|b| b.buffer_occupation).collect();
    let rates: Vec<f64> =
        result.bins.iter().map(netshed_monitor::BinRecord::mean_sampling_rate).collect();
    println!(
        "\nbuffer occupation: mean {:.2}, max {:.2}",
        mean(&occupations),
        occupations.iter().copied().fold(0.0f64, f64::max)
    );
    println!("average load shedding rate: {:.2}", 1.0 - mean(&rates));
    println!("uncontrolled drops: {}", result.uncontrolled_drops);
}

// --------------------------------------------------------------------------
// Ablations
// --------------------------------------------------------------------------

/// Ablation: buffer discovery (rtthresh) on/off.
fn ablation_rtthresh(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches, options.scale);
    let specs = chapter4_specs();
    let capacity = capacity_for_overload(&specs, &batches, 0.5);
    for (name, discovery) in [("buffer discovery on", true), ("buffer discovery off", false)] {
        let mut config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            .with_seed(options.seed);
        config.buffer_discovery = discovery;
        let result = run_with_reference(config, &specs, &batches, &[]);
        println!(
            "{name:<22} avg accuracy {:.3}  drops {}  mean cycles/bin {:.0}",
            result.overall_mean_accuracy(),
            result.uncontrolled_drops,
            result.mean_cycles_per_bin()
        );
    }
}

/// Ablation: EWMA prediction-error correction on/off.
fn ablation_error_correction(options: &Options) {
    let batches =
        profile_trace(TraceProfile::CescaII, options.seed, options.batches, options.scale);
    let specs = chapter4_specs();
    let capacity = capacity_for_overload(&specs, &batches, 0.5);
    for (name, alpha) in [("error correction on (alpha=0.9)", 0.9), ("error correction off", 0.0)] {
        let mut config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            .with_seed(options.seed);
        config.ewma_alpha = alpha;
        let result = run_with_reference(config, &specs, &batches, &[]);
        let over = result.bins.iter().filter(|b| b.total_cycles() > capacity * 1.1).count() as f64
            / result.bins.len() as f64;
        println!(
            "{name:<32} avg accuracy {:.3}  drops {}  bins >110% capacity {:.1}%",
            result.overall_mean_accuracy(),
            result.uncontrolled_drops,
            over * 100.0
        );
    }
}
