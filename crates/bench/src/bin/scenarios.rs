//! Manage the golden-replay conformance corpus.
//!
//! ```sh
//! cargo run -p netshed-bench --release --bin scenarios -- list
//! cargo run -p netshed-bench --release --bin scenarios -- record [--dir corpus]
//! cargo run -p netshed-bench --release --bin scenarios -- verify [--dir corpus] [--workers N] [--borrowed]
//! cargo run -p netshed-bench --release --bin scenarios -- run <name> [--strategy mmfs_pkt] [--workers N]
//! ```
//!
//! `record` regenerates every built-in scenario, writes the `.nstr`
//! recordings and pins the per-strategy digests into `GOLDEN.digests` —
//! run it (and commit the result) only when an intentional change moves the
//! golden outputs. `verify` replays the committed corpus and fails loudly,
//! naming each drifted stream, when any digest moved; this is what the CI
//! golden-corpus job runs. `verify --borrowed` decodes the recordings
//! through the zero-copy [`decode_batches_shared`] path instead of the
//! copying reader (both are always cross-checked against each other), so CI
//! proves the borrowed replay plane produces the same pinned digests.

use netshed_bench::corpus::{
    all_strategies, compute_golden, corpus_capacity, diff_digests, digest_run, format_manifest,
    parse_manifest, strategy_by_name, GoldenEntry, MANIFEST_NAME, TRACE_EXTENSION,
};
use netshed_trace::scenario::{builtin, builtins};
use netshed_trace::{decode_batches, decode_batches_shared, encode_batches, Batch, Bytes};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut strategy_name: Option<String> = None;
    let mut borrowed = false;
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // Flags fail loudly on missing or unparseable values: a typo like
        // `--workers two` must not silently verify at the default count.
        match arg.as_str() {
            "--dir" => {
                let Some(value) = iter.next() else {
                    eprintln!("--dir requires a path");
                    return ExitCode::FAILURE;
                };
                dir = Some(PathBuf::from(value));
            }
            "--workers" => {
                let Some(value) = iter.next() else {
                    eprintln!("--workers requires a count");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(count) if count >= 1 => workers = Some(count),
                    _ => {
                        eprintln!("--workers requires a count >= 1, got {value:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--strategy" => {
                let Some(value) = iter.next() else {
                    eprintln!("--strategy requires a name");
                    return ExitCode::FAILURE;
                };
                strategy_name = Some(value.clone());
            }
            "--borrowed" => borrowed = true,
            other => positional.push(other.to_string()),
        }
    }
    let command = positional.first().map_or("list", String::as_str);
    // Flags a command ignores are rejected, not silently dropped — a caller
    // passing `run … --workers 4` must not believe the parallel plane ran
    // when it did not.
    let applicable: &[&str] = match command {
        "list" => &[],
        "record" => &["--dir"],
        "verify" => &["--dir", "--workers", "--borrowed"],
        "run" => &["--workers", "--strategy"],
        _ => &["--dir", "--workers", "--strategy", "--borrowed"],
    };
    for (flag, set) in [
        ("--dir", dir.is_some()),
        ("--workers", workers.is_some()),
        ("--strategy", strategy_name.is_some()),
        ("--borrowed", borrowed),
    ] {
        if set && !applicable.contains(&flag) {
            eprintln!("{flag} does not apply to `{command}`");
            return ExitCode::FAILURE;
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("corpus"));
    let workers = workers.unwrap_or(1);
    match command {
        "list" => list(),
        "record" => record(&dir),
        "verify" => verify(&dir, workers, borrowed),
        "run" => {
            if let Some(name) = positional.get(1) {
                run_one(name, strategy_name.as_deref(), workers)
            } else {
                eprintln!("usage: scenarios run <name> [--strategy <name>] [--workers N]");
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown command {other:?} (use list | record | verify | run)");
            ExitCode::FAILURE
        }
    }
}

fn list() -> ExitCode {
    println!("{:<16} {:>5} {:>6} {:>7}  phases", "scenario", "bins", "links", "pkts");
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let packets: usize = batches.iter().map(Batch::len).sum();
        let phases: Vec<String> = scenario
            .links()
            .iter()
            .flat_map(netshed_trace::Link::phases)
            .map(|p| format!("{}({})", p.name(), p.duration_bins()))
            .collect();
        println!(
            "{:<16} {:>5} {:>6} {:>7}  {}",
            scenario.name(),
            scenario.total_bins(),
            scenario.links().len(),
            packets,
            phases.join(" → ")
        );
    }
    ExitCode::SUCCESS
}

fn record(dir: &Path) -> ExitCode {
    if let Err(error) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {error}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut manifest = Vec::new();
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let bytes = match encode_batches(&batches, scenario.bin_duration_us()) {
            Ok(bytes) => bytes,
            Err(error) => {
                eprintln!("{}: encode failed: {error}", scenario.name());
                return ExitCode::FAILURE;
            }
        };
        let path = dir.join(format!("{}.{TRACE_EXTENSION}", scenario.name()));
        if let Err(error) = std::fs::write(&path, &bytes) {
            eprintln!("cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        let entries = match compute_golden(&scenario, &batches) {
            Ok(entries) => entries,
            Err(error) => {
                eprintln!("{}: digest run failed: {error}", scenario.name());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "recorded {:<16} {:>3} bins, {:>7} bytes, {} strategies pinned",
            scenario.name(),
            batches.len(),
            bytes.len(),
            entries.len()
        );
        manifest.extend(entries);
    }
    let manifest_path = dir.join(MANIFEST_NAME);
    if let Err(error) = std::fs::write(&manifest_path, format_manifest(&manifest)) {
        eprintln!("cannot write {}: {error}", manifest_path.display());
        return ExitCode::FAILURE;
    }
    println!("pinned {} digests into {}", manifest.len(), manifest_path.display());
    ExitCode::SUCCESS
}

fn verify(dir: &Path, workers: usize, borrowed: bool) -> ExitCode {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "cannot read {}: {error} (run `scenarios record` first)",
                manifest_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let pinned = match parse_manifest(&text) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("{}: {error}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut drift: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for scenario in builtins() {
        let path = dir.join(format!("{}.{TRACE_EXTENSION}", scenario.name()));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) => {
                drift.push(format!("{}: missing recording ({error})", scenario.name()));
                continue;
            }
        };
        let copied = match decode_batches(&bytes) {
            Ok(batches) => batches,
            Err(error) => {
                drift.push(format!("{}: recording does not decode: {error}", scenario.name()));
                continue;
            }
        };
        // Both replay planes must agree bit-for-bit on the same container;
        // the digests below then run over whichever plane was requested.
        let container = Bytes::from(bytes);
        let shared = match decode_batches_shared(&container) {
            Ok(batches) => batches,
            Err(error) => {
                drift.push(format!(
                    "{}: recording does not decode through the borrowed reader: {error}",
                    scenario.name()
                ));
                continue;
            }
        };
        if shared != copied {
            drift.push(format!(
                "{}: the zero-copy and copying readers decoded different batch streams",
                scenario.name()
            ));
            continue;
        }
        let recorded = if borrowed { shared } else { copied };
        // The recording must still equal what the generator produces today —
        // otherwise the digests below would silently pin drifted traffic.
        let generated = scenario.generate().expect("builtins are valid");
        if recorded != generated {
            drift.push(format!(
                "{}: generator output no longer matches the committed recording \
                 (re-record the corpus if this change is intentional)",
                scenario.name()
            ));
            continue;
        }
        let capacity = corpus_capacity(&recorded);
        for (name, strategy) in all_strategies() {
            let pinned_entry: Option<&GoldenEntry> =
                pinned.iter().find(|e| e.scenario == scenario.name() && e.strategy == name);
            let Some(entry) = pinned_entry else {
                drift.push(format!(
                    "{} / {name}: no pinned digest in the manifest",
                    scenario.name()
                ));
                continue;
            };
            match digest_run(&recorded, strategy, capacity, workers) {
                Ok(fresh) => {
                    drift.extend(diff_digests(scenario.name(), &name, entry.digest, fresh));
                    checked += 1;
                }
                Err(error) => {
                    drift.push(format!("{} / {name}: run failed: {error}", scenario.name()));
                }
            }
        }
    }
    // Stale rows cut the other way: a manifest entry for a renamed or
    // removed scenario (or strategy) would otherwise pass unnoticed.
    let scenario_names: Vec<String> = builtins().iter().map(|s| s.name().to_string()).collect();
    let strategy_names: Vec<String> = all_strategies().into_iter().map(|(n, _)| n).collect();
    for entry in &pinned {
        if !scenario_names.contains(&entry.scenario) {
            drift.push(format!(
                "{} / {}: manifest row for a scenario that no longer exists",
                entry.scenario, entry.strategy
            ));
        } else if !strategy_names.contains(&entry.strategy) {
            drift.push(format!(
                "{} / {}: manifest row for a strategy that no longer exists",
                entry.scenario, entry.strategy
            ));
        }
    }
    if drift.is_empty() {
        let plane = if borrowed { "borrowed (zero-copy)" } else { "copying" };
        println!(
            "golden corpus conformant: {checked} (scenario, strategy) digests verified at \
             {workers} worker(s) through the {plane} replay plane"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("golden corpus DRIFT ({} problems):", drift.len());
        for line in &drift {
            eprintln!("  {line}");
        }
        eprintln!(
            "if the drift is an intentional output change, regenerate with \
             `cargo run -p netshed-bench --release --bin scenarios -- record` and commit"
        );
        ExitCode::FAILURE
    }
}

fn run_one(name: &str, strategy_name: Option<&str>, workers: usize) -> ExitCode {
    let Some(scenario) = builtin(name) else {
        eprintln!("unknown scenario {name:?} (see `scenarios list`)");
        return ExitCode::FAILURE;
    };
    let strategy = match strategy_name {
        None => netshed_monitor::Strategy::Predictive(netshed_monitor::AllocationPolicy::MmfsPkt),
        Some(requested) => {
            if let Some(strategy) = strategy_by_name(requested) {
                strategy
            } else {
                eprintln!("unknown strategy {requested:?}; known:");
                for (known, _) in all_strategies() {
                    eprintln!("  {known}");
                }
                return ExitCode::FAILURE;
            }
        }
    };
    let batches = scenario.generate().expect("builtins are valid");
    let capacity = corpus_capacity(&batches);
    match digest_run(&batches, strategy, capacity, workers) {
        Ok(digest) => {
            println!(
                "{name} / {}: capacity {capacity:.0} cycles/bin over {} bins at {workers} \
                 worker(s)",
                strategy.name(),
                batches.len()
            );
            println!("{digest}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{name}: run failed: {error}");
            ExitCode::FAILURE
        }
    }
}
