//! Manage the golden-replay conformance corpus and its service-plane runs.
//!
//! ```sh
//! cargo run -p netshed-bench --release --bin scenarios -- list
//! cargo run -p netshed-bench --release --bin scenarios -- record [--dir corpus]
//! cargo run -p netshed-bench --release --bin scenarios -- verify [--dir corpus] [--workers N] [--borrowed]
//! cargo run -p netshed-bench --release --bin scenarios -- run <name> [--strategy mmfs_pkt] [--predictor mlr_fcbf] [--workers N]
//! cargo run -p netshed-bench --release --bin scenarios -- checkpoint <name> <strategy> [--at BIN] [--out FILE]
//! cargo run -p netshed-bench --release --bin scenarios -- resume <name> <strategy> --from FILE [--dir corpus]
//! ```
//!
//! `record` regenerates every built-in scenario, writes the `.nstr`
//! recordings and pins the per-strategy digests into `GOLDEN.digests` —
//! run it (and commit the result) only when an intentional change moves the
//! golden outputs. `verify` replays the committed corpus and fails loudly,
//! naming each drifted stream, when any digest moved; this is what the CI
//! golden-corpus job runs. `verify --borrowed` decodes the recordings
//! through the zero-copy [`decode_batches_shared`] path instead of the
//! copying reader (both are always cross-checked against each other), so CI
//! proves the borrowed replay plane produces the same pinned digests.
//!
//! `checkpoint` and `resume` exercise the service plane: the scenario runs
//! under a daemon (queries registered through the control channel) to a
//! midpoint, the `.nsck` checkpoint is written, and a *separate process*
//! restores it and finishes the run. `resume --dir corpus` verifies the
//! final digest against the pinned manifest row, which is what the CI
//! checkpoint-restore job loops over.
//!
//! Argument parsing lives in [`netshed_bench::cli`] so its hygiene rules
//! (unknown flags and subcommands fail with usage on stderr, `--help`
//! everywhere) are unit-tested.

use netshed_bench::cli::{parse_scenarios_args, usage, ScenariosCommand};
use netshed_bench::corpus::{
    all_strategies, checkpoint_run, compute_golden, corpus_capacity, diff_digests, digest_run,
    digest_run_with_predictor, format_manifest, parse_manifest, resume_run, strategy_by_name,
    GoldenEntry, MANIFEST_NAME, TRACE_EXTENSION,
};
use netshed_monitor::{PredictorKind, Strategy};
use netshed_trace::scenario::{builtin, builtins};
use netshed_trace::{decode_batches, decode_batches_shared, encode_batches, Batch, Bytes};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_scenarios_args(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("{}", error.message);
            eprintln!("{}", error.usage);
            return ExitCode::FAILURE;
        }
    };
    match command {
        ScenariosCommand::Help { topic } => {
            println!("{}", usage(topic.as_deref()));
            ExitCode::SUCCESS
        }
        ScenariosCommand::List => list(),
        ScenariosCommand::Record { dir } => record(&dir),
        ScenariosCommand::Verify { dir, workers, borrowed } => verify(&dir, workers, borrowed),
        ScenariosCommand::Run { name, strategy, predictor, workers } => {
            run_one(&name, strategy.as_deref(), predictor.as_deref(), workers)
        }
        ScenariosCommand::Checkpoint { name, strategy, at, out, workers } => {
            checkpoint(&name, &strategy, at, &out, workers)
        }
        ScenariosCommand::Resume { name, strategy, from, dir, workers } => {
            resume(&name, &strategy, &from, dir.as_deref(), workers)
        }
    }
}

/// Resolves a (scenario, strategy) pair or explains what exists.
fn resolve(name: &str, strategy_name: &str) -> Option<(Vec<Batch>, Strategy)> {
    let Some(scenario) = builtin(name) else {
        eprintln!("unknown scenario {name:?} (see `scenarios list`)");
        return None;
    };
    let Some(strategy) = strategy_by_name(strategy_name) else {
        eprintln!("unknown strategy {strategy_name:?}; known:");
        for (known, _) in all_strategies() {
            eprintln!("  {known}");
        }
        return None;
    };
    Some((scenario.generate().expect("builtins are valid"), strategy))
}

fn list() -> ExitCode {
    println!("{:<16} {:>5} {:>6} {:>7}  phases", "scenario", "bins", "links", "pkts");
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let packets: usize = batches.iter().map(Batch::len).sum();
        let phases: Vec<String> = scenario
            .links()
            .iter()
            .flat_map(netshed_trace::Link::phases)
            .map(|p| format!("{}({})", p.name(), p.duration_bins()))
            .collect();
        println!(
            "{:<16} {:>5} {:>6} {:>7}  {}",
            scenario.name(),
            scenario.total_bins(),
            scenario.links().len(),
            packets,
            phases.join(" → ")
        );
    }
    ExitCode::SUCCESS
}

fn record(dir: &Path) -> ExitCode {
    if let Err(error) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {error}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut manifest = Vec::new();
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let bytes = match encode_batches(&batches, scenario.bin_duration_us()) {
            Ok(bytes) => bytes,
            Err(error) => {
                eprintln!("{}: encode failed: {error}", scenario.name());
                return ExitCode::FAILURE;
            }
        };
        let path = dir.join(format!("{}.{TRACE_EXTENSION}", scenario.name()));
        if let Err(error) = std::fs::write(&path, &bytes) {
            eprintln!("cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        let entries = match compute_golden(&scenario, &batches) {
            Ok(entries) => entries,
            Err(error) => {
                eprintln!("{}: digest run failed: {error}", scenario.name());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "recorded {:<16} {:>3} bins, {:>7} bytes, {} strategies pinned",
            scenario.name(),
            batches.len(),
            bytes.len(),
            entries.len()
        );
        manifest.extend(entries);
    }
    let manifest_path = dir.join(MANIFEST_NAME);
    if let Err(error) = std::fs::write(&manifest_path, format_manifest(&manifest)) {
        eprintln!("cannot write {}: {error}", manifest_path.display());
        return ExitCode::FAILURE;
    }
    println!("pinned {} digests into {}", manifest.len(), manifest_path.display());
    ExitCode::SUCCESS
}

fn verify(dir: &Path, workers: usize, borrowed: bool) -> ExitCode {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "cannot read {}: {error} (run `scenarios record` first)",
                manifest_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let pinned = match parse_manifest(&text) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("{}: {error}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut drift: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for scenario in builtins() {
        let path = dir.join(format!("{}.{TRACE_EXTENSION}", scenario.name()));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) => {
                drift.push(format!("{}: missing recording ({error})", scenario.name()));
                continue;
            }
        };
        let copied = match decode_batches(&bytes) {
            Ok(batches) => batches,
            Err(error) => {
                drift.push(format!("{}: recording does not decode: {error}", scenario.name()));
                continue;
            }
        };
        // Both replay planes must agree bit-for-bit on the same container;
        // the digests below then run over whichever plane was requested.
        let container = Bytes::from(bytes);
        let shared = match decode_batches_shared(&container) {
            Ok(batches) => batches,
            Err(error) => {
                drift.push(format!(
                    "{}: recording does not decode through the borrowed reader: {error}",
                    scenario.name()
                ));
                continue;
            }
        };
        if shared != copied {
            drift.push(format!(
                "{}: the zero-copy and copying readers decoded different batch streams",
                scenario.name()
            ));
            continue;
        }
        let recorded = if borrowed { shared } else { copied };
        // The recording must still equal what the generator produces today —
        // otherwise the digests below would silently pin drifted traffic.
        let generated = scenario.generate().expect("builtins are valid");
        if recorded != generated {
            drift.push(format!(
                "{}: generator output no longer matches the committed recording \
                 (re-record the corpus if this change is intentional)",
                scenario.name()
            ));
            continue;
        }
        let capacity = corpus_capacity(&recorded);
        for (name, strategy) in all_strategies() {
            let pinned_entry: Option<&GoldenEntry> =
                pinned.iter().find(|e| e.scenario == scenario.name() && e.strategy == name);
            let Some(entry) = pinned_entry else {
                drift.push(format!(
                    "{} / {name}: no pinned digest in the manifest",
                    scenario.name()
                ));
                continue;
            };
            match digest_run(&recorded, strategy, capacity, workers) {
                Ok(fresh) => {
                    drift.extend(diff_digests(scenario.name(), &name, entry.digest, fresh));
                    checked += 1;
                }
                Err(error) => {
                    drift.push(format!("{} / {name}: run failed: {error}", scenario.name()));
                }
            }
        }
    }
    // Stale rows cut the other way: a manifest entry for a renamed or
    // removed scenario (or strategy) would otherwise pass unnoticed.
    let scenario_names: Vec<String> = builtins().iter().map(|s| s.name().to_string()).collect();
    let strategy_names: Vec<String> = all_strategies().into_iter().map(|(n, _)| n).collect();
    for entry in &pinned {
        if !scenario_names.contains(&entry.scenario) {
            drift.push(format!(
                "{} / {}: manifest row for a scenario that no longer exists",
                entry.scenario, entry.strategy
            ));
        } else if !strategy_names.contains(&entry.strategy) {
            drift.push(format!(
                "{} / {}: manifest row for a strategy that no longer exists",
                entry.scenario, entry.strategy
            ));
        }
    }
    if drift.is_empty() {
        let plane = if borrowed { "borrowed (zero-copy)" } else { "copying" };
        println!(
            "golden corpus conformant: {checked} (scenario, strategy) digests verified at \
             {workers} worker(s) through the {plane} replay plane"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("golden corpus DRIFT ({} problems):", drift.len());
        for line in &drift {
            eprintln!("  {line}");
        }
        eprintln!(
            "if the drift is an intentional output change, regenerate with \
             `cargo run -p netshed-bench --release --bin scenarios -- record` and commit"
        );
        ExitCode::FAILURE
    }
}

fn run_one(
    name: &str,
    strategy_name: Option<&str>,
    predictor_name: Option<&str>,
    workers: usize,
) -> ExitCode {
    let Some((batches, strategy)) = resolve(name, strategy_name.unwrap_or("mmfs_pkt")) else {
        return ExitCode::FAILURE;
    };
    let named = predictor_name.map(|name| (name, PredictorKind::from_name(name)));
    let predictor = match named {
        None => PredictorKind::MlrFcbf,
        Some((_, Some(kind))) => kind,
        Some((requested, None)) => {
            eprintln!("unknown predictor {requested:?}; known:");
            for kind in PredictorKind::ALL {
                eprintln!("  {}", kind.name());
            }
            return ExitCode::FAILURE;
        }
    };
    let capacity = corpus_capacity(&batches);
    match digest_run_with_predictor(&batches, strategy, capacity, workers, predictor) {
        Ok(digest) => {
            println!(
                "{name} / {} / {}: capacity {capacity:.0} cycles/bin over {} bins at {workers} \
                 worker(s)",
                strategy.name(),
                predictor.name(),
                batches.len()
            );
            println!("{digest}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{name}: run failed: {error}");
            ExitCode::FAILURE
        }
    }
}

fn checkpoint(
    name: &str,
    strategy_name: &str,
    at: Option<u64>,
    out: &Path,
    workers: usize,
) -> ExitCode {
    let Some((batches, strategy)) = resolve(name, strategy_name) else {
        return ExitCode::FAILURE;
    };
    let capacity = corpus_capacity(&batches);
    let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
    let at = at.unwrap_or(non_empty / 2).max(1);
    if at >= non_empty {
        eprintln!("--at {at} does not land mid-scenario: {name} has {non_empty} non-empty bins");
        return ExitCode::FAILURE;
    }
    match checkpoint_run(&batches, strategy, capacity, workers, at) {
        Ok(bytes) => {
            if let Err(error) = std::fs::write(out, &bytes) {
                eprintln!("cannot write {}: {error}", out.display());
                return ExitCode::FAILURE;
            }
            println!(
                "checkpointed {name} / {strategy_name} after {at} of {non_empty} non-empty bins: \
                 {} bytes into {}",
                bytes.len(),
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{name} / {strategy_name}: checkpoint failed: {error}");
            ExitCode::FAILURE
        }
    }
}

fn resume(
    name: &str,
    strategy_name: &str,
    from: &Path,
    verify_dir: Option<&Path>,
    workers: usize,
) -> ExitCode {
    let Some((batches, strategy)) = resolve(name, strategy_name) else {
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(from) {
        Ok(bytes) => bytes,
        Err(error) => {
            eprintln!("cannot read {}: {error}", from.display());
            return ExitCode::FAILURE;
        }
    };
    let capacity = corpus_capacity(&batches);
    let digest = match resume_run(&bytes, &batches, strategy, capacity, workers) {
        Ok(digest) => digest,
        Err(error) => {
            eprintln!("{name} / {strategy_name}: resume failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    // Print the manifest-row rendering so the result lines up with
    // GOLDEN.digests textually.
    let row =
        GoldenEntry { scenario: name.to_string(), strategy: strategy_name.to_string(), digest };
    print!(
        "{}",
        format_manifest(std::slice::from_ref(&row))
            .lines()
            .last()
            .map(|l| format!("{l}\n"))
            .unwrap_or_default()
    );
    let Some(dir) = verify_dir else {
        return ExitCode::SUCCESS;
    };
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {}: {error}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let pinned = match parse_manifest(&text) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("{}: {error}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(entry) = pinned.iter().find(|e| e.scenario == name && e.strategy == strategy_name)
    else {
        eprintln!("{name} / {strategy_name}: no pinned digest in {}", manifest_path.display());
        return ExitCode::FAILURE;
    };
    let drift = diff_digests(name, strategy_name, entry.digest, digest);
    if drift.is_empty() {
        println!(
            "{name} / {strategy_name}: resumed run matches the pinned digest at {workers} \
             worker(s)"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("checkpoint/restore DRIFT ({} problems):", drift.len());
        for line in &drift {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}
