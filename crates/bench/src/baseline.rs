//! Reference (pre-refactor) implementations of the batch data plane.
//!
//! The fused single-pass extractor and the zero-copy view shedders replaced
//! an aggregate-major ten-pass extraction loop and clone-based sampling.
//! These faithful replicas of the old code paths are kept so that
//!
//! * the micro / pipeline benchmarks can quantify the speedup against the
//!   exact baseline they claim to beat, and
//! * the shed-equivalence property tests can assert bit-identical selection
//!   between the view path and the clone path.
//!
//! They are *not* part of the monitoring hot path.

use netshed_features::{Aggregate, CounterKind, ExtractorConfig, FeatureId, FeatureVector};
use netshed_sketch::{hash_bytes, H3Hasher, MultiResolutionBitmap};
use netshed_trace::{aggregate_hash_seed, Batch};
use rand::rngs::StdRng;
use rand::Rng;

/// The historical aggregate-major feature extractor: one pass over the batch
/// per aggregate, rebuilding and re-hashing a zero-padded 13-byte key per
/// packet per pass.
pub struct TenPassExtractor {
    config: ExtractorConfig,
    states: Vec<(MultiResolutionBitmap, MultiResolutionBitmap)>,
    current_interval: Option<u64>,
}

impl TenPassExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: ExtractorConfig) -> Self {
        let states = Aggregate::ALL
            .iter()
            .map(|_| {
                (
                    MultiResolutionBitmap::for_cardinality(config.max_cardinality),
                    MultiResolutionBitmap::for_cardinality(config.max_cardinality),
                )
            })
            .collect();
        Self { config, states, current_interval: None }
    }

    /// Creates an extractor with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ExtractorConfig::default())
    }

    /// The pre-refactor `FeatureExtractor::extract`, kept verbatim in
    /// structure: aggregate-major loop nest, per-packet key serialisation and
    /// `hash_bytes` call in every pass.
    pub fn extract(&mut self, batch: &Batch) -> (FeatureVector, u64) {
        let interval = batch.measurement_interval(self.config.measurement_interval_us);
        if self.current_interval != Some(interval) {
            for (_, interval_seen) in &mut self.states {
                interval_seen.clear();
            }
            self.current_interval = Some(interval);
        }

        let mut vector = FeatureVector::zeros();
        vector.set(FeatureId::Packets, batch.len() as f64);
        vector.set(FeatureId::Bytes, batch.total_bytes() as f64);

        let packets = batch.len() as f64;
        let mut operations = 0u64;

        for (agg_idx, aggregate) in Aggregate::ALL.iter().enumerate() {
            let (batch_unique, interval_seen) = &mut self.states[agg_idx];
            batch_unique.clear();

            let seed = aggregate_hash_seed(self.config.hash_seed, agg_idx);
            for packet in batch.packets.iter() {
                let key = aggregate.key(&packet.tuple);
                batch_unique.insert_hash(hash_bytes(&key, seed));
                operations += 1;
            }

            let unique = batch_unique.estimate().min(packets).round();
            let before = interval_seen.estimate();
            interval_seen.merge(batch_unique);
            let after = interval_seen.estimate();
            let new = (after - before).clamp(0.0, unique).round();
            let repeated = (packets - unique).max(0.0);
            let batch_repeated = (packets - new).max(0.0);

            vector.set(FeatureId::Counter(*aggregate, CounterKind::Unique), unique);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::New), new);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::Repeated), repeated);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::BatchRepeated), batch_repeated);
        }

        (vector, operations)
    }
}

/// The historical clone-based packet sampler: copies every kept packet into
/// a fresh batch via `Batch::filtered`.
pub fn clone_packet_sample(batch: &Batch, rate: f64, rng: &mut StdRng) -> (Batch, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (
            Batch::empty(batch.bin_index, batch.start_ts, batch.duration_us),
            batch.len() as u64,
        );
    }
    let sampled = batch.filtered(|_| rng.gen::<f64>() < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

/// The historical clone-based flow sampler: re-serialises every packet's
/// 5-tuple key and copies kept packets into a fresh batch.
pub fn clone_flow_sample(batch: &Batch, rate: f64, hasher: &H3Hasher) -> (Batch, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (
            Batch::empty(batch.bin_index, batch.start_ts, batch.duration_us),
            batch.len() as u64,
        );
    }
    let sampled = batch.filtered(|p| hasher.unit_interval(&p.tuple.as_key()) < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_features::FeatureExtractor;
    use netshed_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn ten_pass_baseline_agrees_with_the_fused_extractor() {
        let mut generator = TraceGenerator::new(
            TraceConfig::default().with_seed(17).with_mean_packets_per_batch(400.0),
        );
        let batches = generator.batches(5);
        let mut fused = FeatureExtractor::with_defaults();
        let mut baseline = TenPassExtractor::with_defaults();
        for batch in &batches {
            let (a, ops_a) = fused.extract(batch);
            let (b, ops_b) = baseline.extract(batch);
            assert_eq!(ops_a, ops_b);
            for id in FeatureId::all() {
                assert_eq!(a.get(id), b.get(id), "feature {} diverged", id.name());
            }
        }
    }
}
