//! Reference (pre-refactor) implementations of the batch data plane.
//!
//! The fused single-pass extractor and the zero-copy view shedders replaced
//! an aggregate-major ten-pass extraction loop and clone-based sampling.
//! These faithful replicas of the old code paths are kept so that
//!
//! * the micro / pipeline benchmarks can quantify the speedup against the
//!   exact baseline they claim to beat, and
//! * the shed-equivalence property tests can assert bit-identical selection
//!   between the view path and the clone path.
//!
//! They are *not* part of the monitoring hot path.

use netshed_features::{Aggregate, CounterKind, ExtractorConfig, FeatureId, FeatureVector};
use netshed_sketch::{hash_bytes, H3Hasher, MultiResolutionBitmap};
use netshed_trace::{aggregate_hash_seed, Batch};
use rand::rngs::StdRng;
use rand::Rng;

/// The historical aggregate-major feature extractor: one pass over the batch
/// per aggregate, rebuilding and re-hashing a zero-padded 13-byte key per
/// packet per pass.
pub struct TenPassExtractor {
    config: ExtractorConfig,
    states: Vec<(MultiResolutionBitmap, MultiResolutionBitmap)>,
    current_interval: Option<u64>,
}

impl TenPassExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: ExtractorConfig) -> Self {
        let states = Aggregate::ALL
            .iter()
            .map(|_| {
                (
                    MultiResolutionBitmap::for_cardinality(config.max_cardinality),
                    MultiResolutionBitmap::for_cardinality(config.max_cardinality),
                )
            })
            .collect();
        Self { config, states, current_interval: None }
    }

    /// Creates an extractor with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ExtractorConfig::default())
    }

    /// The pre-refactor `FeatureExtractor::extract`, kept verbatim in
    /// structure: aggregate-major loop nest, per-packet key serialisation and
    /// `hash_bytes` call in every pass.
    pub fn extract(&mut self, batch: &Batch) -> (FeatureVector, u64) {
        let interval = batch.measurement_interval(self.config.measurement_interval_us);
        if self.current_interval != Some(interval) {
            for (_, interval_seen) in &mut self.states {
                interval_seen.clear();
            }
            self.current_interval = Some(interval);
        }

        let mut vector = FeatureVector::zeros();
        vector.set(FeatureId::Packets, batch.len() as f64);
        vector.set(FeatureId::Bytes, batch.total_bytes() as f64);

        let packets = batch.len() as f64;
        let mut operations = 0u64;

        for (agg_idx, aggregate) in Aggregate::ALL.iter().enumerate() {
            let (batch_unique, interval_seen) = &mut self.states[agg_idx];
            batch_unique.clear();

            let seed = aggregate_hash_seed(self.config.hash_seed, agg_idx);
            for packet in batch.packets.iter() {
                let key = aggregate.key(packet.tuple());
                batch_unique.insert_hash(hash_bytes(&key, seed));
                operations += 1;
            }

            let unique = batch_unique.estimate().min(packets).round();
            let before = interval_seen.estimate();
            interval_seen.merge(batch_unique);
            let after = interval_seen.estimate();
            let new = (after - before).clamp(0.0, unique).round();
            let repeated = (packets - unique).max(0.0);
            let batch_repeated = (packets - new).max(0.0);

            vector.set(FeatureId::Counter(*aggregate, CounterKind::Unique), unique);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::New), new);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::Repeated), repeated);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::BatchRepeated), batch_repeated);
        }

        (vector, operations)
    }
}

/// The historical clone-based packet sampler: copies every kept packet into
/// a fresh batch via `Batch::filtered`.
pub fn clone_packet_sample(batch: &Batch, rate: f64, rng: &mut StdRng) -> (Batch, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (
            Batch::empty(batch.bin_index, batch.start_ts, batch.duration_us),
            batch.len() as u64,
        );
    }
    let sampled = batch.filtered(|_| rng.gen::<f64>() < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

/// The historical clone-based flow sampler: re-serialises every packet's
/// 5-tuple key and copies kept packets into a fresh batch.
pub fn clone_flow_sample(batch: &Batch, rate: f64, hasher: &H3Hasher) -> (Batch, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (
            Batch::empty(batch.bin_index, batch.start_ts, batch.duration_us),
            batch.len() as u64,
        );
    }
    let sampled = batch.filtered(|p| hasher.unit_interval(&p.tuple().as_key()) < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

/// The historical allocating MLR prediction path: FCBF runs every predict
/// call, and the design matrix, response column and probe row are built in
/// fresh allocations per call — exactly the shape `MlrPredictor` had before
/// it grew reusable scratch buffers. Kept so the `prediction_plane` section
/// of the pipeline benchmark can report the before/after ns per bin against
/// the code it replaced.
pub struct AllocMlrPredictor {
    config: netshed_predict::MlrConfig,
    history: netshed_predict::History,
    selected: Vec<usize>,
    batches_since_selection: usize,
}

impl AllocMlrPredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: netshed_predict::MlrConfig) -> Self {
        Self {
            history: netshed_predict::History::new(config.history),
            config,
            selected: Vec::new(),
            batches_since_selection: 0,
        }
    }

    /// Predicts from the history with per-call allocations (the pre-reuse
    /// code path, verbatim in structure).
    pub fn predict(&mut self, features: &FeatureVector) -> f64 {
        use netshed_features::FEATURE_COUNT;
        let n = self.history.len();
        if n < 3 {
            let responses = self.history.responses();
            return netshed_linalg::stats::mean(&responses);
        }
        if self.selected.is_empty() || self.batches_since_selection >= self.config.reselect_every {
            self.selected =
                netshed_predict::fcbf_select(&self.history, &self.config.fcbf, FEATURE_COUNT);
            if self.selected.is_empty() {
                self.selected = vec![FeatureId::Packets.index()];
            }
            self.batches_since_selection = 0;
        }
        self.batches_since_selection += 1;

        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.selected.len() + 1);
        columns.push(vec![1.0; n]);
        for &feature in &self.selected {
            columns.push(self.history.feature_column(feature));
        }
        let design = netshed_linalg::Matrix::from_columns(&columns);
        let responses = self.history.responses();
        let fit = netshed_linalg::ols_solve(&design, &responses, self.config.rcond);

        let mut row = Vec::with_capacity(self.selected.len() + 1);
        row.push(1.0);
        row.extend(self.selected.iter().map(|&i| features.get_index(i)));
        fit.predict(&row).max(0.0)
    }

    /// Feeds back an observation (same semantics as `Predictor::observe`).
    pub fn observe(&mut self, features: &FeatureVector, actual_cycles: f64) {
        self.history.push(*features, actual_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_features::FeatureExtractor;
    use netshed_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn alloc_mlr_baseline_is_bit_identical_to_the_buffer_reusing_predictor() {
        use netshed_predict::{MlrConfig, MlrPredictor, Predictor};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(8);
        let mut baseline = AllocMlrPredictor::new(MlrConfig::default());
        let mut current = MlrPredictor::new(MlrConfig::default());
        for _ in 0..150 {
            let mut features = FeatureVector::zeros();
            features.set(netshed_features::FeatureId::Packets, rng.gen_range(100.0..2000.0));
            features.set(netshed_features::FeatureId::Bytes, rng.gen_range(1e4..1e6));
            features.set(netshed_features::FeatureId::from_index(7), rng.gen_range(0.0..300.0));
            let actual = 1500.0 * features.packets() + 2e5;
            let expected = baseline.predict(&features);
            let got = current.predict(&features);
            assert_eq!(expected, got, "buffer reuse must not change a single bit");
            baseline.observe(&features, actual);
            current.observe(&features, actual);
        }
    }

    #[test]
    fn ten_pass_baseline_agrees_with_the_fused_extractor() {
        let mut generator = TraceGenerator::new(
            TraceConfig::default().with_seed(17).with_mean_packets_per_batch(400.0),
        );
        let batches = generator.batches(5);
        let mut fused = FeatureExtractor::with_defaults();
        let mut baseline = TenPassExtractor::with_defaults();
        for batch in &batches {
            let (a, ops_a) = fused.extract(batch);
            let (b, ops_b) = baseline.extract(batch);
            assert_eq!(ops_a, ops_b);
            for id in FeatureId::all() {
                assert_eq!(a.get(id), b.get(id), "feature {} diverged", id.name());
            }
        }
    }
}
