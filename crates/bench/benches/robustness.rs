//! Robustness harness: measures how far each control policy's *accuracy*
//! degrades under the adversarial corpus (predictor-gaming workloads)
//! relative to the measured-cycles `OraclePolicy`, and how much of that gap
//! the hardened configuration — `DegradationGuard` around the predictive
//! policy plus the `robust_mlr_fcbf` predictor — claws back. Numbers land in
//! `BENCH_robustness.json` (workspace root, or `$BENCH_OUT` if set).
//!
//! Accuracy is the paper's metric: each query's answers against an
//! unconstrained reference execution, averaged over queries and measurement
//! intervals (`run_built_with_reference`). A gamed predictor under-predicts,
//! keeps rates too high, overloads the bin and drops packets without
//! control — which is exactly where accuracy dies, because uncontrolled
//! drops (unlike deliberate sampling) cannot be corrected for. Overload and
//! the mean sampling rate ride along as secondary symptoms so over-shedding
//! is just as visible as overload.
//!
//! Every configuration is run `repeats` times; the accuracy of every repeat
//! must be bit-identical (the corpus determinism contract re-checked from a
//! second angle) and the best wall-clock is reported, so the recovery
//! fractions are intra-run ratios on the same host within one process.
//!
//! Run with `cargo bench -p netshed-bench --bench robustness`; pass
//! `-- --smoke` for the fast CI shape (fewer repeats, same JSON shape).

use netshed_bench::corpus::{
    all_strategies, corpus_capacity, corpus_specs, ADVERSARIAL_SCENARIOS, CORPUS_SEED,
};
use netshed_bench::run_built_with_reference;
use netshed_fairness::EqualRates;
use netshed_monitor::{
    AllocationPolicy, DegradationGuard, Monitor, MonitorBuilder, OraclePolicy, PredictivePolicy,
    PredictorKind, Strategy,
};
use netshed_trace::{scenario::builtin, Batch};
use std::time::Instant;

/// One configuration's measured outcome on one scenario.
struct Outcome {
    name: String,
    /// Mean per-query accuracy against the unconstrained reference run.
    accuracy: f64,
    /// Mean over bins of `max(0, query_cycles − available_cycles) / capacity`.
    overload: f64,
    mean_rate: f64,
    degraded_bins: u64,
    uncontrolled_drops: u64,
    best_elapsed_s: f64,
}

/// Runs one monitor configuration over the scenario `repeats` times,
/// asserting the accuracy is bit-identical across repeats, and keeps the
/// best wall-clock.
fn measure(
    name: &str,
    batches: &[Batch],
    capacity: f64,
    repeats: u32,
    configure: &dyn Fn(MonitorBuilder) -> MonitorBuilder,
) -> Outcome {
    let mut outcome: Option<Outcome> = None;
    for _ in 0..repeats {
        let specs = corpus_specs();
        let mut monitor = configure(
            Monitor::builder().capacity(capacity).seed(CORPUS_SEED).queries(specs.clone()),
        )
        .build()
        .expect("valid configuration");
        let start = Instant::now();
        let result = run_built_with_reference(&mut monitor, &specs, batches);
        let elapsed_s = start.elapsed().as_secs_f64();
        let sample = Outcome {
            name: name.to_string(),
            accuracy: result.overall_mean_accuracy(),
            overload: result.overload_damage(capacity),
            mean_rate: result.mean_sampling_rate(),
            degraded_bins: result.degraded_bins(),
            uncontrolled_drops: result.uncontrolled_drops,
            best_elapsed_s: elapsed_s,
        };
        match &mut outcome {
            None => outcome = Some(sample),
            Some(first) => {
                assert_eq!(
                    first.accuracy.to_bits(),
                    sample.accuracy.to_bits(),
                    "{name}: accuracy drifted between repeats — determinism contract broken"
                );
                first.best_elapsed_s = first.best_elapsed_s.min(elapsed_s);
            }
        }
    }
    outcome.expect("at least one repeat")
}

struct ScenarioNumbers {
    scenario: String,
    bins: usize,
    capacity: f64,
    strategies: Vec<Outcome>,
    oracle: Outcome,
    guard_only: Outcome,
    robust_only: Outcome,
    hardened: Outcome,
    baseline_accuracy: f64,
    gap_recovered_fraction: f64,
}

/// Measures every built-in strategy, the oracle and the hardened
/// configuration on one adversarial scenario and computes the recovered
/// fraction of the baseline-vs-oracle accuracy gap.
fn bench_scenario(name: &str, repeats: u32) -> ScenarioNumbers {
    let scenario = builtin(name).expect("adversarial scenario is a builtin");
    let batches = scenario.generate().expect("scenario generates");
    let bins = batches.len();
    let capacity = corpus_capacity(&batches);

    let strategies: Vec<Outcome> = all_strategies()
        .into_iter()
        .map(|(strategy_name, strategy)| {
            measure(&strategy_name, &batches, capacity, repeats, &move |builder| {
                builder.strategy(strategy)
            })
        })
        .collect();

    let oracle = measure("oracle_eq_srates", &batches, capacity, repeats, &|builder| {
        builder.with_policy(OraclePolicy::new(EqualRates))
    });
    // Ablations: each half of the hardened stack alone, so the JSON shows
    // where the recovery comes from scenario by scenario.
    let guard_only = measure("guard_only", &batches, capacity, repeats, &|builder| {
        builder.with_policy(DegradationGuard::new(PredictivePolicy::new(EqualRates)))
    });
    let robust_only = measure("robust_only", &batches, capacity, repeats, &|builder| {
        builder
            .strategy(Strategy::Predictive(AllocationPolicy::EqualRates))
            .predictor(PredictorKind::RobustMlrFcbf)
    });
    let hardened =
        measure("guarded_eq_srates+robust_mlr_fcbf", &batches, capacity, repeats, &|builder| {
            builder
                .with_policy(DegradationGuard::new(PredictivePolicy::new(EqualRates)))
                .predictor(PredictorKind::RobustMlrFcbf)
        });

    // The baseline the hardened stack replaces: the paper's predictive policy
    // with the same allocator (eq_srates) and the plain MLR predictor.
    let baseline_accuracy = strategies
        .iter()
        .find(|outcome| outcome.name == "eq_srates")
        .expect("eq_srates is a built-in strategy")
        .accuracy;
    let gap = oracle.accuracy - baseline_accuracy;
    // No gap means the attack never separated the baseline from the oracle;
    // there is nothing to recover and the hardened stack trivially succeeds.
    let gap_recovered_fraction =
        if gap > f64::EPSILON { (hardened.accuracy - baseline_accuracy) / gap } else { 1.0 };

    ScenarioNumbers {
        scenario: name.to_string(),
        bins,
        capacity,
        strategies,
        oracle,
        guard_only,
        robust_only,
        hardened,
        baseline_accuracy,
        gap_recovered_fraction,
    }
}

fn outcome_json(outcome: &Outcome, oracle_accuracy: f64) -> String {
    format!(
        "      {{ \"name\": \"{}\", \"accuracy\": {:.6}, \"degradation_vs_oracle\": {:.6}, \
         \"overload\": {:.4}, \"mean_sampling_rate\": {:.4}, \"uncontrolled_drops\": {}, \
         \"degraded_bins\": {}, \"best_elapsed_s\": {:.4} }}",
        outcome.name,
        outcome.accuracy,
        oracle_accuracy - outcome.accuracy,
        outcome.overload,
        outcome.mean_rate,
        outcome.uncontrolled_drops,
        outcome.degraded_bins,
        outcome.best_elapsed_s,
    )
}

fn main() {
    let smoke = criterion::smoke_mode();
    let repeats = if smoke { 2 } else { 4 };

    let mut scenarios = Vec::new();
    for name in ADVERSARIAL_SCENARIOS {
        eprintln!("robustness: {name} — strategies, oracle and hardened stack ...");
        let numbers = bench_scenario(name, repeats);
        for outcome in numbers.strategies.iter().chain([
            &numbers.oracle,
            &numbers.guard_only,
            &numbers.robust_only,
            &numbers.hardened,
        ]) {
            eprintln!(
                "  {:<34} accuracy {:.4} | overload {:.4} | mean rate {:.3} | drops {}",
                outcome.name,
                outcome.accuracy,
                outcome.overload,
                outcome.mean_rate,
                outcome.uncontrolled_drops
            );
        }
        // The CI grep-gate keys on this exact phrase: a "0 bins" line means
        // the tripwire slept through an attack scenario.
        println!(
            "{}: tripwire fired on {} bins; recovered {:.0}% of the accuracy gap",
            numbers.scenario,
            numbers.hardened.degraded_bins,
            numbers.gap_recovered_fraction * 100.0
        );
        scenarios.push(numbers);
    }

    let min_recovered = scenarios
        .iter()
        .map(|numbers| numbers.gap_recovered_fraction)
        .fold(f64::INFINITY, f64::min);

    let scenarios_json: String = scenarios
        .iter()
        .map(|numbers| {
            let strategy_rows: String = numbers
                .strategies
                .iter()
                .map(|outcome| outcome_json(outcome, numbers.oracle.accuracy))
                .collect::<Vec<_>>()
                .join(",\n");
            let ablation_rows: String = [&numbers.guard_only, &numbers.robust_only]
                .iter()
                .map(|outcome| outcome_json(outcome, numbers.oracle.accuracy))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\n      \"scenario\": \"{}\",\n      \"bins\": {},\n      \
                 \"capacity_cycles\": {:.0},\n      \"strategies\": [\n{}\n      ],\n      \
                 \"oracle\": {{ \"name\": \"{}\", \"accuracy\": {:.6} }},\n      \
                 \"ablations\": [\n{}\n      ],\n      \
                 \"hardened\": {{ \"name\": \"{}\", \"accuracy\": {:.6}, \
                 \"overload\": {:.4}, \"mean_sampling_rate\": {:.4}, \"degraded_bins\": {} }},\n      \
                 \"baseline_accuracy\": {:.6},\n      \"gap_recovered_fraction\": {:.4}\n    }}",
                numbers.scenario,
                numbers.bins,
                numbers.capacity,
                strategy_rows,
                numbers.oracle.name,
                numbers.oracle.accuracy,
                ablation_rows,
                numbers.hardened.name,
                numbers.hardened.accuracy,
                numbers.hardened.overload,
                numbers.hardened.mean_rate,
                numbers.hardened.degraded_bins,
                numbers.baseline_accuracy,
                numbers.gap_recovered_fraction,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo bench -p netshed-bench --bench robustness{}\",\n  \
         \"smoke\": {},\n  \"repeats\": {},\n  \
         \"accuracy_metric\": \"mean per-query accuracy vs an unconstrained reference execution\",\n  \
         \"scenarios\": [\n{}\n  ],\n  \
         \"min_gap_recovered_fraction\": {:.4}\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        smoke,
        repeats,
        scenarios_json,
        min_recovered,
    );
    // Cargo runs bench binaries with the package directory as CWD; default
    // to the workspace root so the JSON lands in one predictable place.
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out}");
}
