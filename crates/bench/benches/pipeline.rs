//! Pipeline-level benchmark: quantifies the single-pass data plane and the
//! end-to-end monitor throughput, and records the numbers in
//! `BENCH_pipeline.json` (in the working directory, or `$BENCH_OUT` if set)
//! so the performance trajectory of the repo is tracked PR over PR.
//!
//! Three measurements:
//!
//! 1. **extract**: fused single-pass feature extraction vs the historical
//!    ten-pass baseline on a 10k-packet batch — warm (aggregate hashes cached
//!    on the batch, the steady state for per-query re-extraction) and cold
//!    (hashes computed as part of the call, the first touch of a batch).
//! 2. **shedding**: view-based packet/flow sampling vs the clone-based
//!    baseline, plus a structural check that the view path shares the packet
//!    store (zero per-packet copies).
//! 3. **pipeline**: packets/second through `Monitor::run` with the paper's
//!    Chapter 4 query mix under 2× overload.
//! 4. **control plane**: the same overloaded run with the strategy built
//!    through the `Strategy` enum vs an explicitly constructed
//!    `ControlPolicy` trait object — the dispatch overhead of the open
//!    control plane must stay within noise of the enum baseline.
//!
//! Run with `cargo bench -p netshed-bench --bench pipeline`; pass
//! `-- --smoke` for a fast CI run (fewer iterations, same JSON shape).

use netshed_bench::baseline::{clone_flow_sample, clone_packet_sample, TenPassExtractor};
use netshed_features::FeatureExtractor;
use netshed_monitor::{
    flow_sample, packet_sample, AllocationPolicy, Monitor, NullObserver, PredictivePolicy, Strategy,
};
use netshed_queries::{QueryKind, QuerySpec};
use netshed_sketch::H3Hasher;
use netshed_trace::{Batch, BatchReplay, TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Mean nanoseconds per call of `routine` over `iterations` runs.
fn time_ns<F: FnMut()>(iterations: u64, mut routine: F) -> f64 {
    // One untimed call to warm caches and the allocator.
    routine();
    let start = Instant::now();
    for _ in 0..iterations {
        routine();
    }
    start.elapsed().as_nanos() as f64 / iterations as f64
}

fn ten_k_batch(seed: u64) -> Batch {
    TraceGenerator::new(TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(1e4))
        .next_batch()
}

struct ExtractNumbers {
    packets: usize,
    tenpass_ns: f64,
    fused_warm_ns: f64,
    fused_cold_ns: f64,
}

fn bench_extract(iterations: u64) -> ExtractNumbers {
    let batch = ten_k_batch(11);
    let packets = batch.len();

    let mut baseline = TenPassExtractor::with_defaults();
    let tenpass_ns = time_ns(iterations, || {
        black_box(baseline.extract(&batch));
    });

    // Warm: the batch's aggregate-hash side array is cached after the first
    // call, which is exactly the state every per-query re-extraction sees.
    let mut fused = FeatureExtractor::with_defaults();
    let fused_warm_ns = time_ns(iterations, || {
        black_box(fused.extract(&batch));
    });

    // Cold: a fresh packet store per call, so the hash side array is built
    // inside the measured region. The packet-vector clone and store
    // construction are not extraction work, so their cost is measured
    // separately and subtracted.
    let cold_iterations = iterations.min(64);
    let template: Vec<_> = batch.packets.iter().cloned().collect();
    let construct_ns = time_ns(cold_iterations, || {
        black_box(Batch::new(batch.bin_index, batch.start_ts, batch.duration_us, template.clone()));
    });
    let mut cold = FeatureExtractor::with_defaults();
    let cold_total_ns = time_ns(cold_iterations, || {
        let fresh =
            Batch::new(batch.bin_index, batch.start_ts, batch.duration_us, template.clone());
        black_box(cold.extract(&fresh));
    });
    let fused_cold_ns = (cold_total_ns - construct_ns).max(0.0);

    ExtractNumbers { packets, tenpass_ns, fused_warm_ns, fused_cold_ns }
}

struct ShedNumbers {
    packet_view_ns: f64,
    packet_clone_ns: f64,
    flow_view_ns: f64,
    flow_clone_ns: f64,
    view_shares_store: bool,
}

fn bench_shedding(iterations: u64) -> ShedNumbers {
    // Payload-carrying traffic, as on the paper's full-payload traces: the
    // clone path must copy the payload handles per kept packet, the view
    // path only records indices.
    let batch = TraceGenerator::new(
        TraceConfig::default().with_seed(12).with_mean_packets_per_batch(1e4).with_payloads(true),
    )
    .next_batch();
    let view = batch.view();
    let rate = 0.37;

    let mut rng = StdRng::seed_from_u64(3);
    let packet_view_ns = time_ns(iterations, || {
        black_box(packet_sample(&view, rate, &mut rng));
    });
    let mut rng = StdRng::seed_from_u64(3);
    let packet_clone_ns = time_ns(iterations, || {
        black_box(clone_packet_sample(&batch, rate, &mut rng));
    });

    let hasher = H3Hasher::new(13, 9);
    let flow_view_ns = time_ns(iterations, || {
        black_box(flow_sample(&view, rate, &hasher));
    });
    let flow_clone_ns = time_ns(iterations, || {
        black_box(clone_flow_sample(&batch, rate, &hasher));
    });

    let mut rng = StdRng::seed_from_u64(3);
    let (sampled, _) = packet_sample(&view, rate, &mut rng);
    let view_shares_store = sampled.shares_store(&view);

    ShedNumbers { packet_view_ns, packet_clone_ns, flow_view_ns, flow_clone_ns, view_shares_store }
}

struct PipelineNumbers {
    batches: usize,
    packets: u64,
    elapsed_s: f64,
    packets_per_sec: f64,
}

fn bench_pipeline(batches: usize) -> PipelineNumbers {
    let recorded = TraceGenerator::new(
        TraceConfig::default().with_seed(21).with_mean_packets_per_batch(2000.0),
    )
    .batches(batches);
    let total_packets: u64 = recorded.iter().map(|b| b.len() as u64).sum();
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();
    let demand = netshed_monitor::reference::measure_total_demand(&specs, &recorded[..batches / 4]);

    let mut monitor = Monitor::builder()
        .capacity(demand / 2.0)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .no_noise()
        .queries(specs)
        .build()
        .expect("valid configuration");
    let mut source = BatchReplay::new(recorded);
    let start = Instant::now();
    let summary = monitor.run(&mut source, &mut NullObserver).expect("run");
    let elapsed_s = start.elapsed().as_secs_f64();
    assert_eq!(summary.bins + summary.empty_bins, batches as u64);

    PipelineNumbers {
        batches,
        packets: total_packets,
        elapsed_s,
        packets_per_sec: total_packets as f64 / elapsed_s,
    }
}

struct ControlPlaneNumbers {
    batches: usize,
    enum_ns_per_batch: f64,
    trait_ns_per_batch: f64,
    overhead: f64,
}

/// Times the full overloaded pipeline with the built-in strategy constructed
/// through the enum vs through an explicit `ControlPolicy` trait object.
/// Both paths run the same policy code, so the difference is pure
/// construction/dispatch noise — recorded to keep it that way.
fn bench_control_plane(batches: usize, repeats: u32) -> ControlPlaneNumbers {
    let recorded = TraceGenerator::new(
        TraceConfig::default().with_seed(33).with_mean_packets_per_batch(1000.0),
    )
    .batches(batches);
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();
    let demand = netshed_monitor::reference::measure_total_demand(&specs, &recorded[..batches / 4]);
    let capacity = demand / 2.0;

    let time_path = |use_trait: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let mut builder =
                Monitor::builder().capacity(capacity).no_noise().queries(specs.clone());
            builder = if use_trait {
                builder.with_policy(PredictivePolicy::new(netshed_fairness::MmfsPkt))
            } else {
                builder.strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            };
            let mut monitor = builder.build().expect("valid configuration");
            let mut source = BatchReplay::new(recorded.clone());
            let start = Instant::now();
            black_box(monitor.run(&mut source, &mut NullObserver).expect("run"));
            best = best.min(start.elapsed().as_nanos() as f64 / batches as f64);
        }
        best
    };

    let enum_ns_per_batch = time_path(false);
    let trait_ns_per_batch = time_path(true);
    ControlPlaneNumbers {
        batches,
        enum_ns_per_batch,
        trait_ns_per_batch,
        overhead: trait_ns_per_batch / enum_ns_per_batch - 1.0,
    }
}

fn main() {
    let smoke = criterion::smoke_mode();
    let (iterations, pipeline_batches) = if smoke { (10, 100) } else { (200, 600) };

    eprintln!("extract: fused vs ten-pass on a 10k-packet batch ...");
    let extract = bench_extract(iterations);
    eprintln!(
        "  ten-pass {:.0} ns | fused warm {:.0} ns ({:.1}x) | fused cold {:.0} ns ({:.1}x)",
        extract.tenpass_ns,
        extract.fused_warm_ns,
        extract.tenpass_ns / extract.fused_warm_ns,
        extract.fused_cold_ns,
        extract.tenpass_ns / extract.fused_cold_ns,
    );

    eprintln!("shedding: view vs clone at rate 0.37 on a 10k-packet batch ...");
    let shed = bench_shedding(iterations);
    eprintln!(
        "  packet view {:.0} ns vs clone {:.0} ns | flow view {:.0} ns vs clone {:.0} ns | zero-copy: {}",
        shed.packet_view_ns, shed.packet_clone_ns, shed.flow_view_ns, shed.flow_clone_ns,
        shed.view_shares_store,
    );

    eprintln!("pipeline: Monitor::run over {pipeline_batches} batches under 2x overload ...");
    let pipeline = bench_pipeline(pipeline_batches);
    eprintln!(
        "  {} packets in {:.2} s = {:.0} packets/s",
        pipeline.packets, pipeline.elapsed_s, pipeline.packets_per_sec
    );

    eprintln!("control plane: enum-constructed vs trait-constructed policy ...");
    let control = bench_control_plane(pipeline_batches.min(200), if smoke { 2 } else { 5 });
    eprintln!(
        "  enum {:.0} ns/batch | trait {:.0} ns/batch | overhead {:+.1}%",
        control.enum_ns_per_batch,
        control.trait_ns_per_batch,
        control.overhead * 100.0
    );

    let json = format!(
        "{{\n  \"generated_by\": \"cargo bench -p netshed-bench --bench pipeline{}\",\n  \
         \"smoke\": {},\n  \
         \"extract_10k_batch\": {{\n    \"packets\": {},\n    \"tenpass_ns\": {:.1},\n    \
         \"fused_warm_ns\": {:.1},\n    \"fused_cold_ns\": {:.1},\n    \
         \"speedup_warm\": {:.2},\n    \"speedup_cold\": {:.2}\n  }},\n  \
         \"shedding_10k_batch_rate_0_37\": {{\n    \"packet_view_ns\": {:.1},\n    \
         \"packet_clone_ns\": {:.1},\n    \"flow_view_ns\": {:.1},\n    \
         \"flow_clone_ns\": {:.1},\n    \"view_shares_store\": {},\n    \
         \"per_packet_copies\": 0\n  }},\n  \
         \"pipeline_2x_overload\": {{\n    \"batches\": {},\n    \"packets\": {},\n    \
         \"elapsed_s\": {:.3},\n    \"packets_per_sec\": {:.0}\n  }},\n  \
         \"control_plane_dispatch\": {{\n    \"batches\": {},\n    \
         \"enum_ns_per_batch\": {:.0},\n    \"trait_ns_per_batch\": {:.0},\n    \
         \"overhead_fraction\": {:.4}\n  }}\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        smoke,
        extract.packets,
        extract.tenpass_ns,
        extract.fused_warm_ns,
        extract.fused_cold_ns,
        extract.tenpass_ns / extract.fused_warm_ns,
        extract.tenpass_ns / extract.fused_cold_ns,
        shed.packet_view_ns,
        shed.packet_clone_ns,
        shed.flow_view_ns,
        shed.flow_clone_ns,
        shed.view_shares_store,
        pipeline.batches,
        pipeline.packets,
        pipeline.elapsed_s,
        pipeline.packets_per_sec,
        control.batches,
        control.enum_ns_per_batch,
        control.trait_ns_per_batch,
        control.overhead,
    );
    // Cargo runs bench binaries with the package directory as CWD; default
    // to the workspace root so the JSON lands in one predictable place.
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out}");
}
