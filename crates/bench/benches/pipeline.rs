//! Pipeline-level benchmark: quantifies the single-pass data plane and the
//! end-to-end monitor throughput, and records the numbers in
//! `BENCH_pipeline.json` (in the working directory, or `$BENCH_OUT` if set)
//! so the performance trajectory of the repo is tracked PR over PR.
//!
//! Eight measurements:
//!
//! 1. **extract**: fused single-pass feature extraction vs the historical
//!    ten-pass baseline on a 10k-packet batch — warm (aggregate hashes cached
//!    on the batch, the steady state for per-query re-extraction) and cold
//!    (hashes computed as part of the call, the first touch of a batch).
//! 2. **shedding**: view-based packet/flow sampling vs the clone-based
//!    baseline, plus a structural check that the view path shares the packet
//!    store (zero per-packet copies).
//! 3. **data plane**: intra-run AoS-vs-SoA replay→shed→extract comparison
//!    over the same in-memory `.nstr` container — the copy-decode +
//!    clone-shed + ten-pass replica against the borrowed zero-copy decode +
//!    pooled shed + fused extractor — plus the steady-state allocation
//!    guard: a warmed shed→shard→finish loop must perform **zero** heap
//!    allocations per bin (`alloc_per_bin`, counted by this binary's global
//!    allocator and asserted to be 0).
//! 4. **pipeline**: packets/second through `Monitor::run` with the paper's
//!    Chapter 4 query mix under 2× overload.
//! 5. **control plane**: the same overloaded run with the strategy built
//!    through the `Strategy` enum vs an explicitly constructed
//!    `ControlPolicy` trait object — the dispatch overhead of the open
//!    control plane must stay within noise of the enum baseline.
//! 6. **prediction plane**: ns per bin of the MLR predict/observe cycle,
//!    before (per-call allocations) vs after (reused scratch buffers), plus
//!    the FCBF amortisation of `reselect_every`.
//! 7. **registry scale**: the service-plane daemon at 10/100/1000 live
//!    tenants — control-channel registration cost per query and the
//!    steady-state per-bin cost, with the marginal nanoseconds each
//!    additional tenant adds per bin.
//! 8. **parallel scaling**: the 2× overload pipeline at 1/2/4 workers —
//!    measured wall-clock throughput, and the execution-plane projection
//!    (measured per-task costs under the pool's list schedule) for hosts
//!    with fewer cores than workers — plus the **sharded** row: the same
//!    pipeline through the fixed-lane `ShardedMonitor` fleet at 1/2/4 shard
//!    threads, whose intra-run speedup both endpoints measure in the same
//!    invocation on the identical lane layout.
//!
//! Run with `cargo bench -p netshed-bench --bench pipeline`; pass
//! `-- --smoke` for a fast CI run (fewer iterations, same JSON shape).

use netshed_bench::baseline::{
    clone_flow_sample, clone_packet_sample, AllocMlrPredictor, TenPassExtractor,
};
use netshed_features::{FeatureExtractor, FeatureId, FeatureVector};
use netshed_monitor::{
    flow_sample, packet_sample, packet_sample_with, AllocationPolicy, ExecStats, Monitor,
    MonitorConfig, NullObserver, PredictivePolicy, Strategy,
};
use netshed_predict::{MlrConfig, MlrPredictor, Predictor};
use netshed_queries::{QueryKind, QuerySpec};
use netshed_service::Daemon;
use netshed_sketch::H3Hasher;
use netshed_trace::{
    decode_batches, decode_batches_shared, encode_batches, Batch, BatchReplay, Bytes, KeepListPool,
    TraceConfig, TraceGenerator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A counting wrapper around the system allocator: every heap acquisition
/// (alloc, zeroed alloc, realloc) bumps one relaxed counter. The data-plane
/// bench reads the counter around its warmed steady-state loop to *prove*
/// the zero-allocation claim rather than assert it from code review.
struct CountingAlloc;

/// Heap acquisitions since process start (frees are not counted — the guard
/// pins acquisitions, and a steady state that frees without allocating is
/// impossible anyway).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers all allocation to `System`; the counter is a relaxed atomic
// touched nowhere else, so no allocator invariant is altered.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Mean nanoseconds per call of `routine` over `iterations` runs.
fn time_ns<F: FnMut()>(iterations: u64, mut routine: F) -> f64 {
    // One untimed call to warm caches and the allocator.
    routine();
    let start = Instant::now();
    for _ in 0..iterations {
        routine();
    }
    start.elapsed().as_nanos() as f64 / iterations as f64
}

fn ten_k_batch(seed: u64) -> Batch {
    TraceGenerator::new(TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(1e4))
        .next_batch()
}

struct ExtractNumbers {
    packets: usize,
    tenpass_ns: f64,
    fused_warm_ns: f64,
    fused_cold_ns: f64,
}

fn bench_extract(iterations: u64) -> ExtractNumbers {
    let batch = ten_k_batch(11);
    let packets = batch.len();

    let mut baseline = TenPassExtractor::with_defaults();
    let tenpass_ns = time_ns(iterations, || {
        black_box(baseline.extract(&batch));
    });

    // Warm: the batch's aggregate-hash side array is cached after the first
    // call, which is exactly the state every per-query re-extraction sees.
    let mut fused = FeatureExtractor::with_defaults();
    let fused_warm_ns = time_ns(iterations, || {
        black_box(fused.extract(&batch));
    });

    // Cold: a fresh packet store per call, so the hash side array is built
    // inside the measured region. The packet-vector clone and store
    // construction are not extraction work, so their cost is measured
    // separately and subtracted.
    let cold_iterations = iterations.min(64);
    let template: Vec<_> = batch.packets.iter().map(|p| p.to_packet()).collect();
    let construct_ns = time_ns(cold_iterations, || {
        black_box(Batch::new(batch.bin_index, batch.start_ts, batch.duration_us, template.clone()));
    });
    let mut cold = FeatureExtractor::with_defaults();
    let cold_total_ns = time_ns(cold_iterations, || {
        let fresh =
            Batch::new(batch.bin_index, batch.start_ts, batch.duration_us, template.clone());
        black_box(cold.extract(&fresh));
    });
    let fused_cold_ns = (cold_total_ns - construct_ns).max(0.0);

    ExtractNumbers { packets, tenpass_ns, fused_warm_ns, fused_cold_ns }
}

struct ShedNumbers {
    packet_view_ns: f64,
    packet_clone_ns: f64,
    flow_view_ns: f64,
    flow_clone_ns: f64,
    view_shares_store: bool,
}

fn bench_shedding(iterations: u64) -> ShedNumbers {
    // Payload-carrying traffic, as on the paper's full-payload traces: the
    // clone path must copy the payload handles per kept packet, the view
    // path only records indices.
    let batch = TraceGenerator::new(
        TraceConfig::default().with_seed(12).with_mean_packets_per_batch(1e4).with_payloads(true),
    )
    .next_batch();
    let view = batch.view();
    let rate = 0.37;

    let mut rng = StdRng::seed_from_u64(3);
    let packet_view_ns = time_ns(iterations, || {
        black_box(packet_sample(&view, rate, &mut rng));
    });
    let mut rng = StdRng::seed_from_u64(3);
    let packet_clone_ns = time_ns(iterations, || {
        black_box(clone_packet_sample(&batch, rate, &mut rng));
    });

    let hasher = H3Hasher::new(13, 9);
    let flow_view_ns = time_ns(iterations, || {
        black_box(flow_sample(&view, rate, &hasher));
    });
    let flow_clone_ns = time_ns(iterations, || {
        black_box(clone_flow_sample(&batch, rate, &hasher));
    });

    let mut rng = StdRng::seed_from_u64(3);
    let (sampled, _) = packet_sample(&view, rate, &mut rng);
    let view_shares_store = sampled.shares_store(&view);

    ShedNumbers { packet_view_ns, packet_clone_ns, flow_view_ns, flow_clone_ns, view_shares_store }
}

struct DataPlaneNumbers {
    batches: usize,
    packets: u64,
    aos_packets_per_sec: f64,
    soa_packets_per_sec: f64,
    soa_speedup: f64,
    alloc_per_bin: u64,
}

/// One full AoS data-plane run over an encoded container: copying decode
/// (`decode_batches` duplicates every payload out of the container), the
/// clone-based packet sampler and the aggregate-major ten-pass extractor —
/// the faithful replica of the pre-SoA hot path.
fn aos_replay_run(encoded: &[u8], rate: f64) -> f64 {
    let decoded = decode_batches(encoded).expect("decode recorded trace");
    let mut rng = StdRng::seed_from_u64(5);
    let mut extractor = TenPassExtractor::with_defaults();
    let mut acc = 0.0;
    for batch in &decoded {
        let (sampled, _) = clone_packet_sample(batch, rate, &mut rng);
        let (vector, _) = extractor.extract(&sampled);
        acc += vector.packets();
    }
    acc
}

/// The same run through the SoA path: borrowed zero-copy decode straight
/// into the column store (payloads are windows into `buffer`), pooled
/// keep-list sampling and the fused single-pass extractor.
fn soa_replay_run(buffer: &Bytes, rate: f64) -> f64 {
    let decoded = decode_batches_shared(buffer).expect("decode shared trace");
    let mut rng = StdRng::seed_from_u64(5);
    let mut pool = KeepListPool::new();
    let mut extractor = FeatureExtractor::with_defaults();
    let mut acc = 0.0;
    for batch in &decoded {
        let view = batch.view();
        let (sampled, _) = packet_sample_with(&view, rate, &mut rng, &mut pool);
        let (vector, _) = extractor.extract_view(&sampled);
        acc += vector.packets();
    }
    acc
}

/// One steady-state pass over pre-decoded batches: pooled shed, sharded
/// extraction, merge. With warm aggregate-hash caches and a warmed pool this
/// must not touch the heap at all — `bench_data_plane` counts allocations
/// around the second pass to pin `alloc_per_bin` to zero.
fn steady_state_pass(
    batches: &[Batch],
    rate: f64,
    extractor: &mut FeatureExtractor,
    pool: &mut KeepListPool,
) -> f64 {
    // Re-seeding per pass makes the warmup pass draw the exact keep lists the
    // measured pass draws, so pooled buffers are warmed to the right sizes.
    let mut rng = StdRng::seed_from_u64(9);
    let mut acc = 0.0;
    for batch in batches {
        let view = batch.view();
        let (sampled, _) = packet_sample_with(&view, rate, &mut rng, pool);
        let mut shards = extractor.shard(&sampled);
        for shard in &mut shards {
            shard.process(&sampled);
        }
        let (vector, _) = FeatureExtractor::finish_shards(&sampled, &shards);
        acc += vector.packets();
    }
    acc
}

/// Intra-run AoS-vs-SoA comparison plus the allocation guard, all over one
/// in-memory `.nstr` container recorded from a payload-carrying trace. Both
/// paths run in this process within minutes of each other, so the speedup is
/// a genuine intra-run ratio, not a cross-machine or cross-commit number.
fn bench_data_plane(batches: usize, repeats: u32) -> DataPlaneNumbers {
    let rate = 0.5;
    let recorded = TraceGenerator::new(
        TraceConfig::default()
            .with_seed(41)
            .with_mean_packets_per_batch(2000.0)
            .with_payloads(true),
    )
    .batches(batches);
    let packets: u64 = recorded.iter().map(|b| b.len() as u64).sum();
    let encoded = encode_batches(&recorded, recorded[0].duration_us).expect("encode trace");
    let buffer = Bytes::from(encoded.clone());
    drop(recorded);

    let best_elapsed = |run: &mut dyn FnMut() -> f64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = Instant::now();
            black_box(run());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let aos_s = best_elapsed(&mut || aos_replay_run(&encoded, rate));
    let soa_s = best_elapsed(&mut || soa_replay_run(&buffer, rate));

    // Allocation guard: decode once (borrowed), warm every per-batch hash
    // cache, the extractor and the keep-list pool with a first pass, then
    // count heap acquisitions across a second, identical pass.
    let decoded = decode_batches_shared(&buffer).expect("decode shared trace");
    let mut extractor = FeatureExtractor::with_defaults();
    let mut pool = KeepListPool::new();
    black_box(steady_state_pass(&decoded, rate, &mut extractor, &mut pool));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    black_box(steady_state_pass(&decoded, rate, &mut extractor, &mut pool));
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "steady-state shed→shard→finish loop allocated {allocations} times over {batches} bins"
    );

    DataPlaneNumbers {
        batches,
        packets,
        aos_packets_per_sec: packets as f64 / aos_s,
        soa_packets_per_sec: packets as f64 / soa_s,
        soa_speedup: aos_s / soa_s,
        alloc_per_bin: allocations / batches as u64,
    }
}

struct PipelineNumbers {
    batches: usize,
    packets: u64,
    elapsed_s: f64,
    packets_per_sec: f64,
    exec_stats: ExecStats,
}

/// Runs the 2× overload pipeline (Chapter 4 query mix, MmfsPkt) at the given
/// worker count and reports wall-clock throughput plus the monitor's
/// execution-plane telemetry.
fn bench_pipeline_at(batches: usize, workers: usize) -> PipelineNumbers {
    let recorded = TraceGenerator::new(
        TraceConfig::default().with_seed(21).with_mean_packets_per_batch(2000.0),
    )
    .batches(batches);
    let total_packets: u64 = recorded.iter().map(|b| b.len() as u64).sum();
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();
    let demand = netshed_monitor::reference::measure_total_demand(&specs, &recorded[..batches / 4])
        .expect("valid query specs");

    let mut monitor = Monitor::builder()
        .capacity(demand / 2.0)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .no_noise()
        .with_workers(workers)
        .queries(specs)
        .build()
        .expect("valid configuration");
    let mut source = BatchReplay::new(recorded);
    let start = Instant::now();
    let summary = monitor.run(&mut source, &mut NullObserver).expect("run");
    let elapsed_s = start.elapsed().as_secs_f64();
    assert_eq!(summary.bins + summary.empty_bins, batches as u64);

    PipelineNumbers {
        batches,
        packets: total_packets,
        elapsed_s,
        packets_per_sec: total_packets as f64 / elapsed_s,
        exec_stats: monitor.exec_stats(),
    }
}

fn bench_pipeline(batches: usize) -> PipelineNumbers {
    bench_pipeline_at(batches, 1)
}

/// Runs the same 2× overload pipeline through the sharded fleet (default
/// virtual-lane count) at the given shard-thread count. The lane layout is
/// fixed, so every shard count replays the identical computation — the row
/// reports pure wall-clock scaling, with the execution plane's list-schedule
/// projection for hosts that cannot run the threads for real.
fn bench_sharded_pipeline_at(batches: usize, shards: usize) -> PipelineNumbers {
    let recorded = TraceGenerator::new(
        TraceConfig::default().with_seed(21).with_mean_packets_per_batch(2000.0),
    )
    .batches(batches);
    let total_packets: u64 = recorded.iter().map(|b| b.len() as u64).sum();
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();
    let demand = netshed_monitor::reference::measure_total_demand(&specs, &recorded[..batches / 4])
        .expect("valid query specs");

    let mut fleet = Monitor::builder()
        .capacity(demand / 2.0)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .no_noise()
        .with_shards(shards)
        .queries(specs)
        .build_sharded()
        .expect("valid configuration");
    let mut source = BatchReplay::new(recorded);
    let start = Instant::now();
    let summary = fleet.run(&mut source, &mut NullObserver).expect("run");
    let elapsed_s = start.elapsed().as_secs_f64();
    assert_eq!(summary.bins + summary.empty_bins, batches as u64);

    PipelineNumbers {
        batches,
        packets: total_packets,
        elapsed_s,
        packets_per_sec: total_packets as f64 / elapsed_s,
        exec_stats: fleet.exec_stats(),
    }
}

struct PredictionPlaneNumbers {
    bins: usize,
    alloc_ns_per_bin: f64,
    reuse_ns_per_bin: f64,
    reuse_reselect10_ns_per_bin: f64,
}

/// Times one predict+observe cycle per bin over a synthetic feature stream:
/// the historical allocating MLR path vs the buffer-reusing predictor (both
/// reselecting every bin, as the paper does), plus the reusing predictor with
/// `reselect_every = 10` to show the FCBF amortisation.
fn bench_prediction_plane(bins: usize) -> PredictionPlaneNumbers {
    fn feature_stream(bins: usize) -> Vec<(FeatureVector, f64)> {
        let mut rng = StdRng::seed_from_u64(77);
        (0..bins)
            .map(|_| {
                let mut features = FeatureVector::zeros();
                features.set(FeatureId::Packets, rng.gen_range(500.0..2500.0));
                features.set(FeatureId::Bytes, rng.gen_range(1e5..1.5e6));
                features.set(FeatureId::from_index(6), rng.gen_range(50.0..400.0));
                features.set(FeatureId::from_index(11), rng.gen_range(10.0..900.0));
                let cycles = 1800.0 * features.packets() + 0.4 * features.bytes() + 3e5;
                (features, cycles)
            })
            .collect()
    }
    let stream = feature_stream(bins);

    /// One predict+observe step of whichever predictor variant is measured.
    type PredictCycle<'a> = Box<dyn FnMut(&FeatureVector, f64) + 'a>;

    // Best of three repeats per variant: one predict+observe cycle is a few
    // microseconds, so a single pass is at the mercy of scheduler noise.
    let best_ns_per_bin = |mut cycle: PredictCycle<'_>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for (features, cycles) in &stream {
                cycle(features, *cycles);
            }
            best = best.min(start.elapsed().as_nanos() as f64 / bins as f64);
        }
        best
    };

    let mut alloc = AllocMlrPredictor::new(MlrConfig::default());
    let alloc_ns_per_bin = best_ns_per_bin(Box::new(move |features, cycles| {
        black_box(alloc.predict(features));
        alloc.observe(features, cycles);
    }));

    let mut reuse = MlrPredictor::new(MlrConfig::default());
    let reuse_ns_per_bin = best_ns_per_bin(Box::new(move |features, cycles| {
        black_box(reuse.predict(features));
        reuse.observe(features, cycles);
    }));

    let mut amortised = MlrPredictor::new(MlrConfig { reselect_every: 10, ..MlrConfig::default() });
    let reuse_reselect10_ns_per_bin = best_ns_per_bin(Box::new(move |features, cycles| {
        black_box(amortised.predict(features));
        amortised.observe(features, cycles);
    }));

    PredictionPlaneNumbers { bins, alloc_ns_per_bin, reuse_ns_per_bin, reuse_reselect10_ns_per_bin }
}

struct ScalingPoint {
    workers: usize,
    packets_per_sec: f64,
    measured_speedup: f64,
    projected_speedup: f64,
}

struct ShardedScalingPoint {
    shards: usize,
    packets_per_sec: f64,
    measured_speedup: f64,
    projected_speedup: f64,
}

struct ScalingNumbers {
    batches: usize,
    host_cores: usize,
    parallel_fraction: f64,
    points: Vec<ScalingPoint>,
    speedup_4w: f64,
    speedup_4w_basis: &'static str,
    shard_lanes: usize,
    sharded_points: Vec<ShardedScalingPoint>,
    sharded_speedup_4s: f64,
    sharded_speedup_4s_basis: &'static str,
}

/// The 2× overload pipeline at 1/2/4 workers. Measured wall-clock speedups
/// are only meaningful when the host has that many cores; the projection —
/// per-task costs measured on the 1-worker run, scheduled by the same greedy
/// list discipline the pool uses — says what an N-core host would get, and is
/// the reported basis whenever the host cannot run N workers for real.
fn bench_parallel_scaling(batches: usize) -> ScalingNumbers {
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let baseline = bench_pipeline_at(batches, 1);
    let stats = baseline.exec_stats;
    let mut points = vec![ScalingPoint {
        workers: 1,
        packets_per_sec: baseline.packets_per_sec,
        measured_speedup: 1.0,
        projected_speedup: 1.0,
    }];
    for workers in [2usize, 4] {
        let run = bench_pipeline_at(batches, workers);
        points.push(ScalingPoint {
            workers,
            packets_per_sec: run.packets_per_sec,
            measured_speedup: run.packets_per_sec / baseline.packets_per_sec,
            projected_speedup: stats.projected_speedup(workers).unwrap_or(1.0),
        });
    }
    let four = points.last().expect("4-worker point");
    let (speedup_4w, speedup_4w_basis) = if host_cores >= 4 {
        (four.measured_speedup, "measured")
    } else {
        (four.projected_speedup, "projected_list_schedule_single_core_host")
    };

    // The sharded row: same pipeline through the fixed-lane fleet at 1/2/4
    // shard threads. The speedup is intra-run — both endpoints are measured
    // in this invocation, on the identical lane layout and trace.
    let sharded_baseline = bench_sharded_pipeline_at(batches, 1);
    let sharded_stats = sharded_baseline.exec_stats;
    let mut sharded_points = vec![ShardedScalingPoint {
        shards: 1,
        packets_per_sec: sharded_baseline.packets_per_sec,
        measured_speedup: 1.0,
        projected_speedup: 1.0,
    }];
    for shards in [2usize, 4] {
        let run = bench_sharded_pipeline_at(batches, shards);
        sharded_points.push(ShardedScalingPoint {
            shards,
            packets_per_sec: run.packets_per_sec,
            measured_speedup: run.packets_per_sec / sharded_baseline.packets_per_sec,
            projected_speedup: sharded_stats.projected_speedup(shards).unwrap_or(1.0),
        });
    }
    let four_shards = sharded_points.last().expect("4-shard point");
    let (sharded_speedup_4s, sharded_speedup_4s_basis) = if host_cores >= 4 {
        (four_shards.measured_speedup, "measured")
    } else {
        (four_shards.projected_speedup, "projected_list_schedule_single_core_host")
    };

    ScalingNumbers {
        batches,
        host_cores,
        parallel_fraction: stats.parallel_fraction(),
        points,
        speedup_4w,
        speedup_4w_basis,
        shard_lanes: netshed_monitor::DEFAULT_SHARD_LANES,
        sharded_points,
        sharded_speedup_4s,
        sharded_speedup_4s_basis,
    }
}

struct ControlPlaneNumbers {
    batches: usize,
    enum_ns_per_batch: f64,
    trait_ns_per_batch: f64,
    overhead: f64,
}

/// Times the full overloaded pipeline with the built-in strategy constructed
/// through the enum vs through an explicit `ControlPolicy` trait object.
/// Both paths run the same policy code, so the difference is pure
/// construction/dispatch noise — recorded to keep it that way.
fn bench_control_plane(batches: usize, repeats: u32) -> ControlPlaneNumbers {
    let recorded = TraceGenerator::new(
        TraceConfig::default().with_seed(33).with_mean_packets_per_batch(1000.0),
    )
    .batches(batches);
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();
    let demand = netshed_monitor::reference::measure_total_demand(&specs, &recorded[..batches / 4])
        .expect("valid query specs");
    let capacity = demand / 2.0;

    let time_path = |use_trait: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let mut builder =
                Monitor::builder().capacity(capacity).no_noise().queries(specs.clone());
            builder = if use_trait {
                builder.with_policy(PredictivePolicy::new(netshed_fairness::MmfsPkt))
            } else {
                builder.strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            };
            let mut monitor = builder.build().expect("valid configuration");
            let mut source = BatchReplay::new(recorded.clone());
            let start = Instant::now();
            black_box(monitor.run(&mut source, &mut NullObserver).expect("run"));
            best = best.min(start.elapsed().as_nanos() as f64 / batches as f64);
        }
        best
    };

    let enum_ns_per_batch = time_path(false);
    let trait_ns_per_batch = time_path(true);
    ControlPlaneNumbers {
        batches,
        enum_ns_per_batch,
        trait_ns_per_batch,
        overhead: trait_ns_per_batch / enum_ns_per_batch - 1.0,
    }
}

struct RegistryScalePoint {
    queries: usize,
    register_ns_per_query: f64,
    ns_per_bin: f64,
}

struct RegistryScaleNumbers {
    bins: usize,
    points: Vec<RegistryScalePoint>,
    marginal_ns_per_query_per_bin: f64,
}

/// Costs the multi-tenant live registry at 10/100/1000 concurrent queries:
/// registration through the daemon's control channel (all applied at one
/// bin boundary), and the steady-state per-bin processing cost as the
/// tenant count scales. The marginal row — extra nanoseconds per bin each
/// additional tenant costs, from the 10→1000 spread — is the number a
/// capacity planner multiplies.
fn bench_registry_scale(bins: usize) -> RegistryScaleNumbers {
    let batches = TraceGenerator::new(
        TraceConfig::default().with_seed(51).with_mean_packets_per_batch(500.0),
    )
    .batches(bins);
    let tenant_specs = |queries: usize| -> Vec<QuerySpec> {
        (0..queries)
            .map(|i| QuerySpec::new(QueryKind::Counter).with_label(format!("tenant-{i:04}")))
            .collect()
    };
    // Ample capacity: the registry cost is what is being measured, not the
    // shedding response to the demand 1000 tenants would otherwise pile up.
    let config = || MonitorConfig::default().with_capacity(1e15).with_seed(7);

    let mut points = Vec::new();
    for queries in [10usize, 100, 1000] {
        // Registration: N control-channel round trips, all applied in
        // arrival order at the first bin boundary of an empty source.
        let (mut daemon, control) =
            Daemon::new(Monitor::new(config()), BatchReplay::new(Vec::new()));
        let start = Instant::now();
        let pending: Vec<_> =
            tenant_specs(queries).into_iter().map(|s| control.register_query(s)).collect();
        daemon.tick().expect("registration tick");
        for p in pending {
            p.wait().expect("registered");
        }
        let register_ns_per_query = start.elapsed().as_nanos() as f64 / queries as f64;
        assert_eq!(daemon.monitor().query_handles().len(), queries);

        // Steady state: the full tick loop over the recorded bins with N
        // live tenants.
        let (mut daemon, control) =
            Daemon::new(Monitor::new(config()), BatchReplay::new(batches.clone()));
        let pending: Vec<_> =
            tenant_specs(queries).into_iter().map(|s| control.register_query(s)).collect();
        let start = Instant::now();
        daemon.run_to_exhaustion().expect("run");
        let ns_per_bin = start.elapsed().as_nanos() as f64 / bins as f64;
        for p in pending {
            p.wait().expect("registered");
        }
        drop(control);
        points.push(RegistryScalePoint { queries, register_ns_per_query, ns_per_bin });
    }
    let (low, high) = (&points[0], &points[points.len() - 1]);
    let marginal_ns_per_query_per_bin =
        (high.ns_per_bin - low.ns_per_bin).max(0.0) / (high.queries - low.queries) as f64;
    RegistryScaleNumbers { bins, points, marginal_ns_per_query_per_bin }
}

fn main() {
    let smoke = criterion::smoke_mode();
    let (iterations, pipeline_batches) = if smoke { (10, 100) } else { (200, 600) };

    eprintln!("extract: fused vs ten-pass on a 10k-packet batch ...");
    let extract = bench_extract(iterations);
    eprintln!(
        "  ten-pass {:.0} ns | fused warm {:.0} ns ({:.1}x) | fused cold {:.0} ns ({:.1}x)",
        extract.tenpass_ns,
        extract.fused_warm_ns,
        extract.tenpass_ns / extract.fused_warm_ns,
        extract.fused_cold_ns,
        extract.tenpass_ns / extract.fused_cold_ns,
    );

    eprintln!("shedding: view vs clone at rate 0.37 on a 10k-packet batch ...");
    let shed = bench_shedding(iterations);
    eprintln!(
        "  packet view {:.0} ns vs clone {:.0} ns | flow view {:.0} ns vs clone {:.0} ns | zero-copy: {}",
        shed.packet_view_ns, shed.packet_clone_ns, shed.flow_view_ns, shed.flow_clone_ns,
        shed.view_shares_store,
    );

    eprintln!("data plane: AoS vs SoA replay->shed->extract over one .nstr container ...");
    let data_plane = bench_data_plane(pipeline_batches.min(200), if smoke { 2 } else { 3 });
    eprintln!(
        "  AoS {:.0} packets/s | SoA {:.0} packets/s | speedup {:.2}x | alloc/bin {}",
        data_plane.aos_packets_per_sec,
        data_plane.soa_packets_per_sec,
        data_plane.soa_speedup,
        data_plane.alloc_per_bin,
    );

    eprintln!("pipeline: Monitor::run over {pipeline_batches} batches under 2x overload ...");
    let pipeline = bench_pipeline(pipeline_batches);
    eprintln!(
        "  {} packets in {:.2} s = {:.0} packets/s",
        pipeline.packets, pipeline.elapsed_s, pipeline.packets_per_sec
    );

    eprintln!("control plane: enum-constructed vs trait-constructed policy ...");
    let control = bench_control_plane(pipeline_batches.min(200), if smoke { 2 } else { 5 });
    eprintln!(
        "  enum {:.0} ns/batch | trait {:.0} ns/batch | overhead {:+.1}%",
        control.enum_ns_per_batch,
        control.trait_ns_per_batch,
        control.overhead * 100.0
    );

    eprintln!("prediction plane: MLR predict+observe, alloc-per-call vs reused buffers ...");
    let prediction = bench_prediction_plane(if smoke { 200 } else { 600 });
    eprintln!(
        "  alloc {:.0} ns/bin | reuse {:.0} ns/bin ({:.2}x) | reuse+reselect10 {:.0} ns/bin ({:.2}x)",
        prediction.alloc_ns_per_bin,
        prediction.reuse_ns_per_bin,
        prediction.alloc_ns_per_bin / prediction.reuse_ns_per_bin,
        prediction.reuse_reselect10_ns_per_bin,
        prediction.alloc_ns_per_bin / prediction.reuse_reselect10_ns_per_bin,
    );

    eprintln!("registry scale: daemon control channel at 10/100/1000 tenants ...");
    let registry = bench_registry_scale(if smoke { 12 } else { 40 });
    for point in &registry.points {
        eprintln!(
            "  {:>4} tenants: register {:.0} ns/query | steady state {:.0} ns/bin",
            point.queries, point.register_ns_per_query, point.ns_per_bin
        );
    }
    eprintln!("  marginal cost per tenant: {:.0} ns/bin", registry.marginal_ns_per_query_per_bin);

    eprintln!("parallel scaling: 2x overload pipeline at 1/2/4 workers ...");
    let scaling = bench_parallel_scaling(pipeline_batches);
    for point in &scaling.points {
        eprintln!(
            "  {} worker(s): {:.0} packets/s | measured {:.2}x | projected {:.2}x",
            point.workers, point.packets_per_sec, point.measured_speedup, point.projected_speedup
        );
    }
    eprintln!(
        "  host cores: {} | parallel fraction {:.2} | 4-worker speedup {:.2}x ({})",
        scaling.host_cores, scaling.parallel_fraction, scaling.speedup_4w, scaling.speedup_4w_basis
    );
    eprintln!(
        "sharded scaling: same pipeline through the {}-lane fleet at 1/2/4 shard threads ...",
        scaling.shard_lanes
    );
    for point in &scaling.sharded_points {
        eprintln!(
            "  {} shard(s): {:.0} packets/s | measured {:.2}x | projected {:.2}x",
            point.shards, point.packets_per_sec, point.measured_speedup, point.projected_speedup
        );
    }
    eprintln!(
        "  4-shard speedup {:.2}x ({})",
        scaling.sharded_speedup_4s, scaling.sharded_speedup_4s_basis
    );

    let registry_points_json: String = registry
        .points
        .iter()
        .map(|point| {
            format!(
                "      {{ \"queries\": {}, \"register_ns_per_query\": {:.0}, \
                 \"ns_per_bin\": {:.0} }}",
                point.queries, point.register_ns_per_query, point.ns_per_bin
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_points_json: String = scaling
        .points
        .iter()
        .map(|point| {
            format!(
                "      {{ \"workers\": {}, \"packets_per_sec\": {:.0}, \
                 \"measured_speedup\": {:.3}, \"projected_speedup\": {:.3} }}",
                point.workers,
                point.packets_per_sec,
                point.measured_speedup,
                point.projected_speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sharded_points_json: String = scaling
        .sharded_points
        .iter()
        .map(|point| {
            format!(
                "        {{ \"shards\": {}, \"packets_per_sec\": {:.0}, \
                 \"measured_speedup\": {:.3}, \"projected_speedup\": {:.3} }}",
                point.shards,
                point.packets_per_sec,
                point.measured_speedup,
                point.projected_speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo bench -p netshed-bench --bench pipeline{}\",\n  \
         \"smoke\": {},\n  \
         \"extract_10k_batch\": {{\n    \"packets\": {},\n    \"tenpass_ns\": {:.1},\n    \
         \"fused_warm_ns\": {:.1},\n    \"fused_cold_ns\": {:.1},\n    \
         \"speedup_warm\": {:.2},\n    \"speedup_cold\": {:.2}\n  }},\n  \
         \"shedding_10k_batch_rate_0_37\": {{\n    \"packet_view_ns\": {:.1},\n    \
         \"packet_clone_ns\": {:.1},\n    \"flow_view_ns\": {:.1},\n    \
         \"flow_clone_ns\": {:.1},\n    \"view_shares_store\": {},\n    \
         \"per_packet_copies\": 0\n  }},\n  \
         \"pipeline_2x_overload\": {{\n    \"batches\": {},\n    \"packets\": {},\n    \
         \"elapsed_s\": {:.3},\n    \"packets_per_sec\": {:.0},\n    \
         \"data_plane_batches\": {},\n    \"data_plane_packets\": {},\n    \
         \"aos_replay_packets_per_sec\": {:.0},\n    \
         \"soa_replay_packets_per_sec\": {:.0},\n    \"soa_speedup\": {:.2},\n    \
         \"alloc_per_bin\": {}\n  }},\n  \
         \"control_plane_dispatch\": {{\n    \"batches\": {},\n    \
         \"enum_ns_per_batch\": {:.0},\n    \"trait_ns_per_batch\": {:.0},\n    \
         \"overhead_fraction\": {:.4}\n  }},\n  \
         \"prediction_plane\": {{\n    \"bins\": {},\n    \
         \"alloc_ns_per_bin\": {:.0},\n    \"reuse_ns_per_bin\": {:.0},\n    \
         \"reuse_reselect10_ns_per_bin\": {:.0},\n    \"speedup_reuse\": {:.2},\n    \
         \"speedup_reuse_reselect10\": {:.2}\n  }},\n  \
         \"registry_scale\": {{\n    \"bins\": {},\n    \"tenants\": [\n{}\n    ],\n    \
         \"marginal_ns_per_query_per_bin\": {:.0}\n  }},\n  \
         \"parallel_scaling\": {{\n    \"batches\": {},\n    \"host_cores\": {},\n    \
         \"parallel_fraction\": {:.3},\n    \"workers\": [\n{}\n    ],\n    \
         \"speedup_4w\": {:.3},\n    \"speedup_4w_basis\": \"{}\",\n    \
         \"sharded\": {{\n      \"shard_lanes\": {},\n      \"shards\": [\n{}\n      ],\n      \
         \"sharded_speedup_4s\": {:.3},\n      \"sharded_speedup_4s_basis\": \"{}\"\n    }}\n  }}\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        smoke,
        extract.packets,
        extract.tenpass_ns,
        extract.fused_warm_ns,
        extract.fused_cold_ns,
        extract.tenpass_ns / extract.fused_warm_ns,
        extract.tenpass_ns / extract.fused_cold_ns,
        shed.packet_view_ns,
        shed.packet_clone_ns,
        shed.flow_view_ns,
        shed.flow_clone_ns,
        shed.view_shares_store,
        pipeline.batches,
        pipeline.packets,
        pipeline.elapsed_s,
        pipeline.packets_per_sec,
        data_plane.batches,
        data_plane.packets,
        data_plane.aos_packets_per_sec,
        data_plane.soa_packets_per_sec,
        data_plane.soa_speedup,
        data_plane.alloc_per_bin,
        control.batches,
        control.enum_ns_per_batch,
        control.trait_ns_per_batch,
        control.overhead,
        prediction.bins,
        prediction.alloc_ns_per_bin,
        prediction.reuse_ns_per_bin,
        prediction.reuse_reselect10_ns_per_bin,
        prediction.alloc_ns_per_bin / prediction.reuse_ns_per_bin,
        prediction.alloc_ns_per_bin / prediction.reuse_reselect10_ns_per_bin,
        registry.bins,
        registry_points_json,
        registry.marginal_ns_per_query_per_bin,
        scaling.batches,
        scaling.host_cores,
        scaling.parallel_fraction,
        scaling_points_json,
        scaling.speedup_4w,
        scaling.speedup_4w_basis,
        scaling.shard_lanes,
        sharded_points_json,
        scaling.sharded_speedup_4s,
        scaling.sharded_speedup_4s_basis,
    );
    // Cargo runs bench binaries with the package directory as CWD; default
    // to the workspace root so the JSON lands in one predictable place.
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out}");
}
