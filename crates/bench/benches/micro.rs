//! Criterion micro-benchmarks for the per-batch building blocks.
//!
//! These benches back the cost claims of the paper: feature extraction with
//! deterministic per-packet work (Section 3.2.1, Table 3.4), cheap FCBF +
//! MLR prediction (Section 3.3.1), lightweight packet/flow sampling
//! (Section 4.2) and the sketches they are built on. The `extract_*` and
//! `shed_*` groups compare the fused single-pass data plane against the
//! historical ten-pass / clone-based implementations; the headline numbers
//! are recorded by the `pipeline` bench into `BENCH_pipeline.json`.
//!
//! Pass `-- --smoke` for a fast CI-friendly run with reduced iteration
//! counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netshed_bench::baseline::{clone_flow_sample, clone_packet_sample, TenPassExtractor};
use netshed_features::FeatureExtractor;
use netshed_monitor::{flow_sample, packet_sample};
use netshed_predict::{MlrPredictor, Predictor};
use netshed_queries::{build_query, BoyerMoore, CycleMeter, QueryKind};
use netshed_sketch::{mix64, H3Hasher, MultiResolutionBitmap};
use netshed_trace::{TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_feature_extraction(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(1).with_mean_packets_per_batch(1000.0),
    );
    let batch = generator.next_batch();
    let mut group = c.benchmark_group("extract_1000pkt_batch");
    // Warm: the batch's aggregate-hash side array is cached after the first
    // iteration — the steady state every per-query re-extraction sees.
    group.bench_function("fused_warm", |b| {
        let mut extractor = FeatureExtractor::with_defaults();
        b.iter(|| black_box(extractor.extract(&batch)));
    });
    // Cold: a fresh packet store per iteration, so the hashes are computed
    // inside the measured region (the first touch of a batch). The timing
    // includes the store rebuild — subtract `store_build` to isolate
    // extraction; `pipeline.rs` reports the already-corrected number.
    let template: Vec<_> = batch.packets.iter().map(|p| p.to_packet()).collect();
    group.bench_function("fused_cold_incl_store_build", |b| {
        let mut extractor = FeatureExtractor::with_defaults();
        b.iter(|| {
            let fresh = netshed_trace::Batch::new(
                batch.bin_index,
                batch.start_ts,
                batch.duration_us,
                template.clone(),
            );
            black_box(extractor.extract(&fresh))
        });
    });
    group.bench_function("store_build", |b| {
        b.iter(|| {
            black_box(netshed_trace::Batch::new(
                batch.bin_index,
                batch.start_ts,
                batch.duration_us,
                template.clone(),
            ))
        });
    });
    group.bench_function("ten_pass_baseline", |b| {
        let mut extractor = TenPassExtractor::with_defaults();
        b.iter(|| black_box(extractor.extract(&batch)));
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(2).with_mean_packets_per_batch(1000.0),
    );
    let batches = generator.batches(80);
    let mut extractor = FeatureExtractor::with_defaults();
    let mut query = build_query(QueryKind::Flows);
    let mut predictor = MlrPredictor::with_defaults();
    let mut history = Vec::new();
    for batch in &batches {
        let (features, _) = extractor.extract(batch);
        let mut meter = CycleMeter::new();
        query.process_batch(&batch.view(), 1.0, &mut meter);
        predictor.observe(&features, meter.cycles() as f64);
        history.push(features);
    }
    let last = *history.last().unwrap();
    c.bench_function("mlr_fcbf_predict_60_history", |b| {
        b.iter(|| black_box(predictor.predict(&last)));
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(3).with_mean_packets_per_batch(1000.0),
    );
    let batch = generator.next_batch();
    let view = batch.view();
    let mut group = c.benchmark_group("shed_1000pkt_batch");
    group.bench_function("packet_sample_view", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(packet_sample(&view, 0.3, &mut rng)));
    });
    group.bench_function("packet_sample_clone_baseline", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(clone_packet_sample(&batch, 0.3, &mut rng)));
    });
    let hasher = H3Hasher::new(13, 9);
    group.bench_function("flow_sample_view", |b| {
        b.iter(|| black_box(flow_sample(&view, 0.3, &hasher)));
    });
    group.bench_function("flow_sample_clone_baseline", |b| {
        b.iter(|| black_box(clone_flow_sample(&batch, 0.3, &hasher)));
    });
    group.finish();
}

fn bench_sketches(c: &mut Criterion) {
    c.bench_function("multiresolution_bitmap_insert_10k", |b| {
        b.iter(|| {
            let mut bitmap = MultiResolutionBitmap::for_cardinality(100_000);
            for i in 0..10_000u64 {
                bitmap.insert_hash(mix64(i));
            }
            black_box(bitmap.estimate())
        });
    });
}

fn bench_pattern_search(c: &mut Criterion) {
    let pattern = BoyerMoore::new(b"BitTorrent protocol");
    let haystack = vec![b'x'; 1460];
    c.bench_function("boyer_moore_scan_1460B", |b| b.iter(|| black_box(pattern.find(&haystack))));
}

fn bench_queries(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(4).with_mean_packets_per_batch(1000.0).with_payloads(true),
    );
    let batch = generator.next_batch();
    let view = batch.view();
    let mut group = c.benchmark_group("query_per_batch");
    for kind in [QueryKind::Counter, QueryKind::Flows, QueryKind::PatternSearch, QueryKind::Trace] {
        group.bench_function(kind.name(), |b| {
            let mut query = build_query(kind);
            b.iter(|| {
                let mut meter = CycleMeter::new();
                query.process_batch(&view, 1.0, &mut meter);
                black_box(meter.cycles())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_prediction,
    bench_sampling,
    bench_sketches,
    bench_pattern_search,
    bench_queries
);
criterion_main!(benches);
