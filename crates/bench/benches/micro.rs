//! Criterion micro-benchmarks for the per-batch building blocks.
//!
//! These benches back the cost claims of the paper: feature extraction with
//! deterministic per-packet work (Section 3.2.1, Table 3.4), cheap FCBF +
//! MLR prediction (Section 3.3.1), lightweight packet/flow sampling
//! (Section 4.2) and the sketches they are built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netshed_features::FeatureExtractor;
use netshed_monitor::{flow_sample, packet_sample};
use netshed_predict::{MlrPredictor, Predictor};
use netshed_queries::{build_query, BoyerMoore, CycleMeter, QueryKind};
use netshed_sketch::{mix64, H3Hasher, MultiResolutionBitmap};
use netshed_trace::{TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_feature_extraction(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(1).with_mean_packets_per_batch(1000.0),
    );
    let batch = generator.next_batch();
    c.bench_function("feature_extraction_1000pkt_batch", |b| {
        let mut extractor = FeatureExtractor::with_defaults();
        b.iter(|| black_box(extractor.extract(&batch)))
    });
}

fn bench_prediction(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(2).with_mean_packets_per_batch(1000.0),
    );
    let batches = generator.batches(80);
    let mut extractor = FeatureExtractor::with_defaults();
    let mut query = build_query(QueryKind::Flows);
    let mut predictor = MlrPredictor::with_defaults();
    let mut history = Vec::new();
    for batch in &batches {
        let (features, _) = extractor.extract(batch);
        let mut meter = CycleMeter::new();
        query.process_batch(batch, 1.0, &mut meter);
        predictor.observe(&features, meter.cycles() as f64);
        history.push(features);
    }
    let last = history.last().unwrap().clone();
    c.bench_function("mlr_fcbf_predict_60_history", |b| {
        b.iter(|| black_box(predictor.predict(&last)))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(3).with_mean_packets_per_batch(1000.0),
    );
    let batch = generator.next_batch();
    c.bench_function("packet_sample_1000pkt_batch", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(packet_sample(&batch, 0.3, &mut rng)))
    });
    let hasher = H3Hasher::new(13, 9);
    c.bench_function("flow_sample_1000pkt_batch", |b| {
        b.iter(|| black_box(flow_sample(&batch, 0.3, &hasher)))
    });
}

fn bench_sketches(c: &mut Criterion) {
    c.bench_function("multiresolution_bitmap_insert_10k", |b| {
        b.iter(|| {
            let mut bitmap = MultiResolutionBitmap::for_cardinality(100_000);
            for i in 0..10_000u64 {
                bitmap.insert_hash(mix64(i));
            }
            black_box(bitmap.estimate())
        })
    });
}

fn bench_pattern_search(c: &mut Criterion) {
    let pattern = BoyerMoore::new(b"BitTorrent protocol");
    let haystack = vec![b'x'; 1460];
    c.bench_function("boyer_moore_scan_1460B", |b| b.iter(|| black_box(pattern.find(&haystack))));
}

fn bench_queries(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        TraceConfig::default().with_seed(4).with_mean_packets_per_batch(1000.0).with_payloads(true),
    );
    let batch = generator.next_batch();
    let mut group = c.benchmark_group("query_per_batch");
    for kind in [QueryKind::Counter, QueryKind::Flows, QueryKind::PatternSearch, QueryKind::Trace] {
        group.bench_function(kind.name(), |b| {
            let mut query = build_query(kind);
            b.iter(|| {
                let mut meter = CycleMeter::new();
                query.process_batch(&batch, 1.0, &mut meter);
                black_box(meter.cycles())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_prediction,
    bench_sampling,
    bench_sketches,
    bench_pattern_search,
    bench_queries
);
criterion_main!(benches);
