//! Process-level hygiene tests for the `scenarios` binary and an
//! end-to-end checkpoint/resume equivalence check through the corpus
//! helpers.
//!
//! The parsing rules themselves are unit-tested in `netshed_bench::cli`;
//! these tests prove the binary actually wires them up: unknown
//! subcommands and flags exit nonzero with usage on stderr, `--help`
//! prints usage on stdout and exits zero, and a checkpoint written by one
//! process restores in another to the exact digest of the uninterrupted
//! run.

use netshed_bench::corpus::{
    checkpoint_run, corpus_capacity, digest_run, resume_run, strategy_by_name,
};
use netshed_trace::scenario::builtin;
use std::process::Command;

fn scenarios(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .args(args)
        .output()
        .expect("scenarios binary runs")
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage_on_stderr() {
    let output = scenarios(&["frobnicate"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "stderr was: {stderr}");
    assert!(stderr.contains("usage:"), "stderr was: {stderr}");
    assert!(output.stdout.is_empty(), "errors must not pollute stdout");
}

#[test]
fn unknown_flag_exits_nonzero_with_usage_on_stderr() {
    let output = scenarios(&["verify", "--frobnicate"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr was: {stderr}");
    assert!(stderr.contains("usage:"), "stderr was: {stderr}");
}

#[test]
fn help_prints_usage_on_stdout_and_exits_zero() {
    for args in [
        &["--help"][..],
        &["help"][..],
        &["run", "--help"][..],
        &["checkpoint", "-h"][..],
        &["help", "resume"][..],
    ] {
        let output = scenarios(args);
        assert!(output.status.success(), "`{args:?}` should exit zero");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("usage:"), "`{args:?}` stdout was: {stdout}");
        assert!(output.stderr.is_empty(), "help must not write to stderr");
    }
}

#[test]
fn invalid_flag_values_are_rejected() {
    let output = scenarios(&["verify", "--workers", "0"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--workers"), "stderr was: {stderr}");
}

#[test]
fn checkpoint_resume_equals_the_uninterrupted_run() {
    let scenario = builtin("ddos-spike").expect("builtin scenario");
    let batches = scenario.generate().expect("builtins are valid");
    let strategy = strategy_by_name("mmfs_pkt").expect("known strategy");
    let capacity = corpus_capacity(&batches);
    let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
    let at = (non_empty / 2).max(1);
    for workers in [1usize, 4] {
        let uninterrupted =
            digest_run(&batches, strategy, capacity, workers).expect("uninterrupted run");
        let snapshot =
            checkpoint_run(&batches, strategy, capacity, workers, at).expect("checkpoint");
        let resumed = resume_run(&snapshot, &batches, strategy, capacity, workers).expect("resume");
        assert_eq!(resumed, uninterrupted, "resumed digest diverged at {workers} worker(s)");
    }
}

#[test]
fn checkpoint_resume_round_trips_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("netshed-cli-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("ddos-spike.mmfs_pkt.nsck");
    let out_str = out.to_str().expect("utf-8 temp path");

    let checkpointed = scenarios(&["checkpoint", "ddos-spike", "mmfs_pkt", "--out", out_str]);
    assert!(
        checkpointed.status.success(),
        "checkpoint failed: {}",
        String::from_utf8_lossy(&checkpointed.stderr)
    );
    assert!(out.exists(), "checkpoint file written");

    let resumed = scenarios(&["resume", "ddos-spike", "mmfs_pkt", "--from", out_str]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    // The final digest prints as a manifest row the CI job can compare
    // against GOLDEN.digests textually.
    assert!(
        stdout.contains("ddos-spike mmfs_pkt "),
        "resume stdout should carry a manifest row, was: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
