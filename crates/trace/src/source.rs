//! Streaming packet sources.
//!
//! The monitoring pipeline consumes batches from a [`PacketSource`]: an
//! abstraction over "something that produces the next time bin of traffic".
//! The synthetic [`TraceGenerator`](crate::TraceGenerator) is one (infinite)
//! source; a recorded batch vector replayed by [`BatchReplay`] is another;
//! [`Interleave`] merges several sources bin by bin, modelling several links
//! (or several anomaly generators) feeding one monitor. Finite prefixes of an
//! infinite source are taken with [`PacketSourceExt::take_batches`].
//!
//! Sources deliberately mirror `Iterator` (`next_batch` returning `Option`)
//! without being one: batch production is stateful and fallible-by-exhaustion
//! only, and keeping the trait object-safe and free of adapter machinery
//! keeps `Monitor::run` signatures simple.

use crate::batch::Batch;
use crate::generator::TraceGenerator;

/// A stream of traffic batches, one per time bin.
pub trait PacketSource {
    /// Produces the next batch, or `None` when the source is exhausted.
    fn next_batch(&mut self) -> Option<Batch>;

    /// Number of batches still to come, when known in advance.
    ///
    /// Infinite or data-dependent sources return `None`.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }

    /// Advances the cursor past `count` batches without delivering them and
    /// returns how many were actually skipped (fewer when the source ran
    /// out). This is how a restored daemon fast-forwards its source to the
    /// checkpointed position; after `skip_batches(n)` the source produces
    /// exactly the batches a fresh source produces after `n` `next_batch`
    /// calls.
    fn skip_batches(&mut self, count: u64) -> u64 {
        let mut skipped = 0;
        while skipped < count {
            if self.next_batch().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }
}

impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_batch(&mut self) -> Option<Batch> {
        (**self).next_batch()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }

    fn skip_batches(&mut self, count: u64) -> u64 {
        (**self).skip_batches(count)
    }
}

impl<S: PacketSource + ?Sized> PacketSource for Box<S> {
    fn next_batch(&mut self) -> Option<Batch> {
        (**self).next_batch()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }

    fn skip_batches(&mut self, count: u64) -> u64 {
        (**self).skip_batches(count)
    }
}

/// The synthetic generator is an infinite source.
impl PacketSource for TraceGenerator {
    fn next_batch(&mut self) -> Option<Batch> {
        Some(TraceGenerator::next_batch(self))
    }
}

/// Replays a recorded batch vector, in order.
///
/// Batches are shared (`Batch` clones are cheap — the packet vector is
/// reference-counted), so replaying the same recording through several
/// monitors never copies packets.
#[derive(Debug, Clone)]
pub struct BatchReplay {
    batches: Vec<Batch>,
    position: usize,
}

impl BatchReplay {
    /// Creates a replay source over a recorded batch vector.
    pub fn new(batches: Vec<Batch>) -> Self {
        Self { batches, position: 0 }
    }

    /// Records `count` batches from another source and returns their replay.
    pub fn record<S: PacketSource>(source: &mut S, count: usize) -> Self {
        let mut batches = Vec::with_capacity(count);
        for _ in 0..count {
            match source.next_batch() {
                Some(batch) => batches.push(batch),
                None => break,
            }
        }
        Self::new(batches)
    }

    /// Rewinds the replay to the first batch.
    pub fn reset(&mut self) {
        self.position = 0;
    }

    /// The recorded batches.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Total number of recorded batches (independent of the replay position).
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

impl PacketSource for BatchReplay {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.batches.get(self.position)?.clone();
        self.position += 1;
        Some(batch)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.batches.len() - self.position)
    }

    /// O(1): the replay cursor jumps without cloning the skipped batches.
    fn skip_batches(&mut self, count: u64) -> u64 {
        let remaining = (self.batches.len() - self.position) as u64;
        let skipped = count.min(remaining);
        self.position += skipped as usize;
        skipped
    }
}

/// A slice of batches is a replay source too (clones on demand).
impl PacketSource for std::vec::IntoIter<Batch> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.next()
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.len())
    }
}

/// Yields at most a fixed number of batches from an inner source.
///
/// Built with [`PacketSourceExt::take_batches`]; this is how a finite
/// experiment is carved out of the infinite [`TraceGenerator`].
#[derive(Debug)]
pub struct Take<S> {
    inner: S,
    remaining: usize,
}

impl<S> Take<S> {
    /// Consumes the adapter and returns the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PacketSource> PacketSource for Take<S> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.remaining == 0 {
            return None;
        }
        let batch = self.inner.next_batch()?;
        self.remaining -= 1;
        Some(batch)
    }

    fn remaining_hint(&self) -> Option<usize> {
        match self.inner.remaining_hint() {
            Some(inner) => Some(inner.min(self.remaining)),
            None => Some(self.remaining),
        }
    }
}

/// Merges several sources into one aggregate stream, *by bin index*.
///
/// Each merged batch combines the packets of every sub-source batch carrying
/// the same `bin_index` (the smallest index any sub-source has pending),
/// re-sorted by timestamp; sub-source order is preserved for equal
/// timestamps, so the merge is deterministic. Batches from later bins are
/// held back until their bin comes up, which makes the merge correct even
/// for sources that do not start at the same bin or that skip bins — such
/// batches are no longer silently folded into the wrong time bin.
///
/// # Tail semantics
///
/// Sources may end at different lengths. The merged stream runs until the
/// **longest** source is exhausted; once a sub-source ends it simply stops
/// contributing (a link going quiet), and the tail bins carry exactly the
/// surviving sources' packets with their original bin indices and
/// timestamps. Symmetrically, a source that starts at a later bin
/// contributes nothing to the head bins. [`Interleave::live_sources`]
/// reports how many sub-sources can still produce batches.
pub struct Interleave {
    /// Each sub-source with its look-ahead batch (`None` = nothing buffered
    /// yet). Exhausted sources are removed.
    sources: Vec<(Box<dyn PacketSource>, Option<Batch>)>,
}

impl Interleave {
    /// Creates an interleaved source over the given sub-sources.
    pub fn new(sources: Vec<Box<dyn PacketSource>>) -> Self {
        Self { sources: sources.into_iter().map(|s| (s, None)).collect() }
    }

    /// Number of sub-sources still producing batches.
    pub fn live_sources(&self) -> usize {
        self.sources.len()
    }
}

impl PacketSource for Interleave {
    fn next_batch(&mut self) -> Option<Batch> {
        // Fill every empty look-ahead slot, dropping exhausted sources.
        let mut live = Vec::with_capacity(self.sources.len());
        for (mut source, pending) in self.sources.drain(..) {
            let pending = pending.or_else(|| source.next_batch());
            if pending.is_some() {
                live.push((source, pending));
            }
        }
        self.sources = live;

        // The next merged bin is the smallest pending bin index.
        let target = self
            .sources
            .iter()
            .filter_map(|(_, pending)| pending.as_ref().map(|b| b.bin_index))
            .min()?;
        let mut geometry: Option<(u64, u64)> = None;
        let mut packets: Vec<crate::packet::Packet> = Vec::new();
        for (_, pending) in &mut self.sources {
            if pending.as_ref().is_some_and(|b| b.bin_index == target) {
                // lint:allow(no-unwrap): the is_some_and guard on the previous line proves the slot is occupied
                let batch = pending.take().expect("checked above");
                geometry.get_or_insert((batch.start_ts, batch.duration_us));
                packets.extend(batch.packets.iter().map(|p| p.to_packet()));
            }
        }
        // lint:allow(no-unwrap): target is the minimum pending bin index, so at least one source matched and set the geometry
        let (start_ts, duration_us) = geometry.expect("at least one batch matched the min bin");
        // Stable sort: equal timestamps keep sub-source registration order,
        // so the merged stream is reproducible.
        packets.sort_by_key(|p| p.ts);
        Some(Batch::new(target, start_ts, duration_us, packets))
    }

    fn remaining_hint(&self) -> Option<usize> {
        // Known only if every sub-source reports a hint: the interleave runs
        // until the longest one ends (buffered batches count as remaining).
        // Exact for bin-aligned sources (the common case: generators or
        // replays started together, scenario links). Sources with disjoint
        // bin gaps merge into *more* distinct bins than any one source
        // contributes, so there the hint is a lower bound.
        self.sources
            .iter()
            .map(|(source, pending)| {
                source.remaining_hint().map(|h| h + usize::from(pending.is_some()))
            })
            .try_fold(0usize, |acc, hint| hint.map(|h| acc.max(h)))
    }
}

/// Adapter constructors for every source.
pub trait PacketSourceExt: PacketSource + Sized {
    /// Limits the source to its first `count` batches.
    fn take_batches(self, count: usize) -> Take<Self> {
        Take { inner: self, remaining: count }
    }
}

impl<S: PacketSource + Sized> PacketSourceExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn generator(seed: u64) -> TraceGenerator {
        TraceGenerator::new(
            TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(50.0),
        )
    }

    #[test]
    fn generator_is_an_infinite_source() {
        let mut source = generator(1);
        assert_eq!(PacketSource::remaining_hint(&source), None);
        for expected_bin in 0..5 {
            let batch = PacketSource::next_batch(&mut source).expect("infinite source");
            assert_eq!(batch.bin_index, expected_bin);
        }
    }

    #[test]
    fn take_bounds_an_infinite_source() {
        let mut source = generator(2).take_batches(7);
        assert_eq!(source.remaining_hint(), Some(7));
        let mut produced = 0;
        while source.next_batch().is_some() {
            produced += 1;
        }
        assert_eq!(produced, 7);
        assert_eq!(source.remaining_hint(), Some(0));
    }

    #[test]
    fn replay_reproduces_the_recording_and_resets() {
        let mut recording = BatchReplay::record(&mut generator(3), 6);
        assert_eq!(recording.len(), 6);
        let first_pass: Vec<usize> =
            std::iter::from_fn(|| recording.next_batch()).map(|b| b.len()).collect();
        assert_eq!(first_pass.len(), 6);
        assert_eq!(recording.remaining_hint(), Some(0));
        recording.reset();
        let second_pass: Vec<usize> =
            std::iter::from_fn(|| recording.next_batch()).map(|b| b.len()).collect();
        assert_eq!(first_pass, second_pass);
    }

    #[test]
    fn replay_matches_the_generator_it_recorded() {
        let recording = BatchReplay::record(&mut generator(4), 5);
        let mut fresh = generator(4);
        for batch in recording.batches() {
            let original = TraceGenerator::next_batch(&mut fresh);
            assert_eq!(batch.bin_index, original.bin_index);
            assert_eq!(batch.packets.as_ref(), original.packets.as_ref());
        }
    }

    #[test]
    fn interleave_merges_aligned_sources() {
        let a = BatchReplay::record(&mut generator(5), 4);
        let b = BatchReplay::record(&mut generator(6), 4);
        let expected: Vec<usize> =
            a.batches().iter().zip(b.batches()).map(|(x, y)| x.len() + y.len()).collect();
        let mut merged = Interleave::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.remaining_hint(), Some(4));
        for (bin, want) in expected.iter().enumerate() {
            let batch = merged.next_batch().expect("merged batch");
            assert_eq!(batch.bin_index, bin as u64);
            assert_eq!(batch.len(), *want);
            // Merged packets must stay in timestamp order.
            assert!(batch.packets.timestamps().windows(2).all(|w| w[0] <= w[1]));
        }
        assert!(merged.next_batch().is_none());
    }

    #[test]
    fn interleave_outlives_its_shortest_source() {
        let short = BatchReplay::record(&mut generator(7), 2);
        let long = BatchReplay::record(&mut generator(8), 5);
        let mut merged = Interleave::new(vec![Box::new(short), Box::new(long)]);
        let mut produced = 0;
        while merged.next_batch().is_some() {
            produced += 1;
        }
        assert_eq!(produced, 5, "the interleave runs until the longest source ends");
    }

    #[test]
    fn interleave_tail_carries_exactly_the_surviving_sources() {
        // The documented tail semantics: once the short source ends, every
        // later bin equals the long source's own batch — same bin index,
        // same packets, no geometry drift.
        let short = BatchReplay::record(&mut generator(9), 2);
        let long = BatchReplay::record(&mut generator(10), 5);
        let long_batches: Vec<_> = long.batches().to_vec();
        let mut merged = Interleave::new(vec![Box::new(short), Box::new(long)]);
        for bin in 0..5u64 {
            let batch = merged.next_batch().expect("five bins");
            assert_eq!(batch.bin_index, bin);
            if bin >= 2 {
                assert_eq!(
                    batch.packets.as_ref(),
                    long_batches[bin as usize].packets.as_ref(),
                    "tail bin {bin} must be the long source's batch verbatim"
                );
            }
        }
        assert!(merged.next_batch().is_none());
        assert_eq!(merged.live_sources(), 0);
    }

    #[test]
    fn interleave_holds_back_batches_from_future_bins() {
        // A source that starts at a later bin must not have its batches
        // folded into earlier bins (the pre-fix behaviour): bins are merged
        // by index, so the late starter joins when its bin comes up.
        use crate::packet::{FiveTuple, Packet};
        let pkt =
            |ts: u64, src: u32| Packet::header_only(ts, FiveTuple::new(src, 2, 3, 4, 6), 100, 0);
        let early = vec![
            Batch::new(0, 0, 100, vec![pkt(10, 1)]),
            Batch::new(1, 100, 100, vec![pkt(110, 1)]),
            Batch::new(2, 200, 100, vec![pkt(210, 1)]),
        ];
        let late = vec![
            Batch::new(1, 100, 100, vec![pkt(120, 2)]),
            Batch::new(3, 300, 100, vec![pkt(310, 2)]),
        ];
        let mut merged = Interleave::new(vec![
            Box::new(BatchReplay::new(early)),
            Box::new(BatchReplay::new(late)),
        ]);

        let bin0 = merged.next_batch().expect("bin 0");
        assert_eq!(bin0.bin_index, 0);
        assert_eq!(bin0.len(), 1, "the late source contributes nothing to bin 0");

        let bin1 = merged.next_batch().expect("bin 1");
        assert_eq!(bin1.bin_index, 1);
        assert_eq!(bin1.len(), 2, "both sources land in bin 1");
        assert!(bin1.packets.timestamps().windows(2).all(|w| w[0] <= w[1]));

        let bin2 = merged.next_batch().expect("bin 2");
        assert_eq!((bin2.bin_index, bin2.len()), (2, 1));

        // The late source skipped bin 2; its bin 3 is emitted as bin 3, not
        // merged into an earlier one.
        let bin3 = merged.next_batch().expect("bin 3");
        assert_eq!((bin3.bin_index, bin3.len()), (3, 1));
        assert_eq!(bin3.packets.tuples()[0].src_ip, 2);
        assert_eq!(bin3.start_ts, 300);
        assert!(merged.next_batch().is_none());
    }

    #[test]
    fn skip_batches_fast_forwards_to_the_same_cursor() {
        // The replay's O(1) skip and the default skip (drain via next_batch)
        // must land every source on the identical position: the batches that
        // follow are the ones a fresh source yields after `n` next_batch
        // calls.
        let recording = BatchReplay::record(&mut generator(13), 8);
        let mut skipped_replay = recording.clone();
        assert_eq!(skipped_replay.skip_batches(5), 5);
        let mut drained_generator = generator(13);
        assert_eq!(PacketSource::skip_batches(&mut drained_generator, 5), 5);
        for bin in 5..8u64 {
            let from_replay = skipped_replay.next_batch().expect("replay batch");
            let from_generator =
                PacketSource::next_batch(&mut drained_generator).expect("generator batch");
            assert_eq!(from_replay.bin_index, bin);
            assert_eq!(from_generator.bin_index, bin);
            assert_eq!(from_replay.packets.as_ref(), from_generator.packets.as_ref());
        }
        assert_eq!(skipped_replay.remaining_hint(), Some(0));
    }

    #[test]
    fn skip_batches_past_the_end_reports_the_shortfall() {
        let mut replay = BatchReplay::record(&mut generator(14), 3);
        assert_eq!(replay.skip_batches(10), 3);
        assert!(replay.next_batch().is_none());
        let mut bounded = generator(15).take_batches(4);
        assert_eq!(bounded.skip_batches(10), 4);
        assert!(bounded.next_batch().is_none());
    }

    #[test]
    fn interleave_hint_counts_buffered_batches() {
        let a = BatchReplay::record(&mut generator(11), 3);
        let b = BatchReplay::record(&mut generator(12), 1);
        let mut merged = Interleave::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.remaining_hint(), Some(3));
        merged.next_batch().expect("bin 0");
        assert_eq!(merged.remaining_hint(), Some(2));
        merged.next_batch().expect("bin 1");
        merged.next_batch().expect("bin 2");
        assert_eq!(merged.remaining_hint(), Some(0));
        assert!(merged.next_batch().is_none());
    }
}
