//! Named trace profiles standing in for the paper's datasets (Table 2.3).
//!
//! Each profile maps to a [`TraceConfig`] whose load level, payload presence
//! and flow dynamics are chosen to mimic the corresponding trace:
//!
//! | Profile    | Paper trace | Properties reproduced                           |
//! |------------|-------------|-------------------------------------------------|
//! | `CescaI`   | CESCA-I     | header-only, ~360 Mbps average, moderate churn  |
//! | `CescaII`  | CESCA-II    | full payloads, ~133 Mbps, lower packet rate     |
//! | `Abilene`  | ABILENE     | header-only backbone trace, high rate           |
//! | `Cenic`    | CENIC       | header-only, very bursty (peak ≈ 4x avg)        |
//! | `UpcI`     | UPC-I       | full payloads, campus access link               |
//!
//! Absolute data rates are scaled down (packets per 100 ms batch) so that the
//! default experiment runs complete quickly; the *relative* differences
//! between profiles are preserved.

use crate::generator::TraceConfig;

/// A named synthetic stand-in for one of the paper's packet traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceProfile {
    /// CESCA-I: Catalan research network, packet headers only.
    CescaI,
    /// CESCA-II: Catalan research network, full payloads.
    CescaII,
    /// ABILENE: Internet2 backbone, headers only, high packet rate.
    Abilene,
    /// CENIC: 10 Gb/s backbone link, headers only, very bursty.
    Cenic,
    /// UPC-I: campus access link, full payloads.
    UpcI,
}

impl TraceProfile {
    /// All profiles, in the order used by the evaluation chapters.
    pub const ALL: [TraceProfile; 5] = [
        TraceProfile::CescaI,
        TraceProfile::CescaII,
        TraceProfile::Abilene,
        TraceProfile::Cenic,
        TraceProfile::UpcI,
    ];

    /// Human-readable name matching the paper's dataset table.
    pub fn name(self) -> &'static str {
        match self {
            TraceProfile::CescaI => "CESCA-I",
            TraceProfile::CescaII => "CESCA-II",
            TraceProfile::Abilene => "ABILENE",
            TraceProfile::Cenic => "CENIC",
            TraceProfile::UpcI => "UPC-I",
        }
    }

    /// Resolves a profile from its paper name (`"CESCA-I"`, ...), case
    /// insensitively. Returns `None` for unknown names — the scenario layer
    /// turns that into a typed validation error instead of panicking.
    pub fn from_name(name: &str) -> Option<TraceProfile> {
        TraceProfile::ALL.into_iter().find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// Returns `true` if the profile carries full packet payloads.
    pub fn has_payloads(self) -> bool {
        matches!(self, TraceProfile::CescaII | TraceProfile::UpcI)
    }

    /// Builds the trace configuration for this profile.
    ///
    /// `scale` multiplies the mean packets per batch; `1.0` is the default
    /// experiment scale (roughly 1000 packets per 100 ms bin for CESCA-I).
    pub fn config(self, seed: u64, scale: f64) -> TraceConfig {
        let base = TraceConfig::default().with_seed(seed);
        let scaled = |mean: f64| (mean * scale).max(10.0);
        match self {
            TraceProfile::CescaI => TraceConfig {
                mean_packets_per_batch: scaled(1000.0),
                burstiness_sigma: 0.25,
                burstiness_rho: 0.7,
                payloads: false,
                ..base
            },
            TraceProfile::CescaII => TraceConfig {
                mean_packets_per_batch: scaled(600.0),
                burstiness_sigma: 0.2,
                burstiness_rho: 0.7,
                payloads: true,
                ..base
            },
            TraceProfile::Abilene => TraceConfig {
                mean_packets_per_batch: scaled(1400.0),
                burstiness_sigma: 0.15,
                burstiness_rho: 0.6,
                new_flow_probability: 0.12,
                payloads: false,
                ..base
            },
            TraceProfile::Cenic => TraceConfig {
                mean_packets_per_batch: scaled(800.0),
                burstiness_sigma: 0.45,
                burstiness_rho: 0.85,
                new_flow_probability: 0.15,
                payloads: false,
                ..base
            },
            TraceProfile::UpcI => TraceConfig {
                mean_packets_per_batch: scaled(700.0),
                burstiness_sigma: 0.3,
                burstiness_rho: 0.75,
                payloads: true,
                ..base
            },
        }
    }

    /// Builds the configuration at default scale.
    pub fn default_config(self, seed: u64) -> TraceConfig {
        self.config(seed, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;

    #[test]
    fn payload_flags_match_paper_table() {
        assert!(!TraceProfile::CescaI.has_payloads());
        assert!(TraceProfile::CescaII.has_payloads());
        assert!(!TraceProfile::Abilene.has_payloads());
        assert!(!TraceProfile::Cenic.has_payloads());
        assert!(TraceProfile::UpcI.has_payloads());
    }

    #[test]
    fn profiles_generate_consistent_payload_presence() {
        for profile in TraceProfile::ALL {
            let mut g = TraceGenerator::new(profile.config(1, 0.2));
            let batch = g.next_batch();
            let has_payload = batch.packets.has_payloads();
            if profile.has_payloads() {
                assert!(has_payload, "{} should have payloads", profile.name());
            } else {
                assert!(!has_payload, "{} should be header-only", profile.name());
            }
        }
    }

    #[test]
    fn from_name_round_trips_and_rejects_unknowns() {
        for profile in TraceProfile::ALL {
            assert_eq!(TraceProfile::from_name(profile.name()), Some(profile));
            assert_eq!(TraceProfile::from_name(&profile.name().to_lowercase()), Some(profile));
        }
        assert_eq!(TraceProfile::from_name("NLANR-MOZART"), None);
    }

    #[test]
    fn abilene_is_heavier_than_cesca_ii() {
        let a = TraceProfile::Abilene.default_config(1);
        let c = TraceProfile::CescaII.default_config(1);
        assert!(a.mean_packets_per_batch > c.mean_packets_per_batch);
    }

    #[test]
    fn scale_multiplies_load() {
        let small = TraceProfile::CescaI.config(1, 0.1);
        let big = TraceProfile::CescaI.config(1, 1.0);
        assert!(big.mean_packets_per_batch > small.mean_packets_per_batch * 5.0);
    }
}
