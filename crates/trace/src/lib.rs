//! Packet, flow and batch model plus synthetic workload generation.
//!
//! The load shedding paper evaluates its system against real packet traces
//! collected at the CESCA and UPC networks plus two NLANR traces (ABILENE,
//! CENIC) and against live traffic. Those traces are not redistributable, so
//! this crate provides a *synthetic substitute*: a flow-level workload
//! generator whose output exercises the same code paths —
//!
//! * bursty, heavy-tailed traffic (Pareto flow sizes, log-normal rate
//!   modulation per time bin),
//! * Zipf-distributed address and port popularity so that per-aggregate
//!   feature counters (unique/new/repeated items) behave like real traffic,
//! * an application mix (web, DNS, P2P, bulk transfer) with optional payloads
//!   so that signature-matching queries have something to match,
//! * injectable anomalies (DDoS floods with spoofed sources, SYN floods, worm
//!   outbreaks, byte bursts) reproducing Section 3.4.3 of the paper.
//!
//! The fundamental unit consumed by the monitoring system is the [`Batch`]:
//! all packets that arrived during one *time bin* (100 ms in the paper).
//!
//! # Example
//!
//! ```
//! use netshed_trace::{TraceConfig, TraceGenerator};
//!
//! let config = TraceConfig::default().with_seed(7).with_mean_packets_per_batch(500.0);
//! let mut generator = TraceGenerator::new(config);
//! let batch = generator.next_batch();
//! assert!(!batch.packets.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod anomaly;
pub mod batch;
pub mod dist;
pub mod format;
pub mod generator;
pub mod packet;
pub mod profiles;
pub mod scenario;
pub mod source;

pub use aggregate::{aggregate_hash_seed, Aggregate, AggregateHashes, AGGREGATE_COUNT};
pub use anomaly::{Anomaly, AnomalyInjector, AnomalyKind};
pub use batch::{
    shard_key, Batch, BatchBuilder, BatchStats, BatchView, HashClaim, IndexedPackets, KeepListPool,
    PacketRef, PacketStore, StoreBuilder, StoreIndices, TimestampJumpError, MAX_GAP_BINS,
};
pub use format::{
    decode_batches, decode_batches_shared, encode_batches, FormatError, SharedTraceReader,
    TraceReader, TraceWriter, TRACE_FORMAT_VERSION, TRACE_MAGIC,
};
pub use generator::{AppProtocol, TraceConfig, TraceGenerator};
pub use packet::{FiveTuple, Packet, Timestamp, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN};
pub use profiles::TraceProfile;
pub use scenario::{
    AnomalyEvent, Link, Phase, Scenario, ScenarioAnomaly, ScenarioError, ScenarioSource,
    TrafficSpec,
};
pub use source::{BatchReplay, Interleave, PacketSource, PacketSourceExt, Take};

// `decode_batches_shared` and `Packet::payload` speak `Bytes`; re-export it
// so consumers of the zero-copy replay path don't need their own dependency.
pub use bytes::Bytes;

/// Duration of a time bin in microseconds (100 ms, as in the paper).
pub const DEFAULT_TIME_BIN_US: u64 = 100_000;

/// Duration of a measurement interval in microseconds (1 s, as in the paper).
pub const DEFAULT_MEASUREMENT_INTERVAL_US: u64 = 1_000_000;
