//! Packet-level data model.
//!
//! A [`Packet`] is the unified record the monitoring system operates on. It
//! mirrors the "unified packet stream" of the CoMo platform: a timestamp, the
//! classical 5-tuple, the layer-3 length, TCP flags and an optional payload
//! slice. Payloads are reference-counted [`bytes::Bytes`] slices so that a
//! trace with full payloads does not copy payload bytes per packet.

use bytes::Bytes;
use std::fmt;

/// TCP SYN flag bit.
pub const TCP_SYN: u8 = 0x02;
/// TCP ACK flag bit.
pub const TCP_ACK: u8 = 0x10;
/// TCP FIN flag bit.
pub const TCP_FIN: u8 = 0x01;
/// TCP RST flag bit.
pub const TCP_RST: u8 = 0x04;

/// Packet timestamp in microseconds since the start of the trace.
pub type Timestamp = u64;

/// The classical 5-tuple identifying a flow.
///
/// Addresses are stored as host-order IPv4 addresses; the synthetic workload
/// generator only produces IPv4 traffic, which matches the traces used in the
/// paper (2002–2008 ISP traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port (0 for non-TCP/UDP protocols).
    pub src_port: u16,
    /// Destination transport port (0 for non-TCP/UDP protocols).
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, 1 = ICMP, ...).
    pub proto: u8,
}

impl FiveTuple {
    /// Creates a new 5-tuple.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        Self { src_ip, dst_ip, src_port, dst_port, proto }
    }

    /// Returns the tuple with source and destination endpoints swapped.
    ///
    /// Useful to map both directions of a connection to the same flow key.
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Serializes the tuple into a fixed 13-byte key, used by hash sketches.
    pub fn as_key(&self) -> [u8; 13] {
        let mut key = [0u8; 13];
        key[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        key[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        key[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        key[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        key[12] = self.proto;
        key
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            format_ipv4(self.src_ip),
            self.src_port,
            format_ipv4(self.dst_ip),
            self.dst_port,
            self.proto
        )
    }
}

/// Formats a host-order IPv4 address in dotted-quad notation.
pub fn format_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// A single captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp in microseconds since the trace start.
    pub ts: Timestamp,
    /// Flow identity of the packet.
    pub tuple: FiveTuple,
    /// Length of the IP packet on the wire, in bytes.
    pub ip_len: u32,
    /// TCP flags (zero for non-TCP packets).
    pub tcp_flags: u8,
    /// Captured payload, if the trace carries payloads.
    pub payload: Option<Bytes>,
}

impl Packet {
    /// Creates a header-only packet (no payload captured).
    pub fn header_only(ts: Timestamp, tuple: FiveTuple, ip_len: u32, tcp_flags: u8) -> Self {
        Self { ts, tuple, ip_len, tcp_flags, payload: None }
    }

    /// Creates a packet carrying a payload slice.
    pub fn with_payload(
        ts: Timestamp,
        tuple: FiveTuple,
        ip_len: u32,
        tcp_flags: u8,
        payload: Bytes,
    ) -> Self {
        Self { ts, tuple, ip_len, tcp_flags, payload: Some(payload) }
    }

    /// Returns the number of captured payload bytes (zero for header-only packets).
    pub fn payload_len(&self) -> usize {
        self.payload.as_ref().map_or(0, bytes::Bytes::len)
    }

    /// Returns `true` if this is a TCP packet with only the SYN flag set.
    pub fn is_syn(&self) -> bool {
        self.tuple.proto == 6 && (self.tcp_flags & TCP_SYN) != 0 && (self.tcp_flags & TCP_ACK) == 0
    }

    /// Returns `true` if the packet belongs to the given protocol number.
    pub fn is_proto(&self, proto: u8) -> bool {
        self.tuple.proto == proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_key_roundtrip_is_unique_per_field() {
        let a = FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, 6);
        let b = FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, 17);
        assert_ne!(a.as_key(), b.as_key());
        assert_ne!(a.as_key(), a.reversed().as_key());
    }

    #[test]
    fn reversed_twice_is_identity() {
        let a = FiveTuple::new(1, 2, 3, 4, 6);
        assert_eq!(a, a.reversed().reversed());
    }

    #[test]
    fn format_ipv4_dotted_quad() {
        assert_eq!(format_ipv4(0xC0A80001), "192.168.0.1");
        assert_eq!(format_ipv4(0), "0.0.0.0");
    }

    #[test]
    fn syn_detection_requires_tcp_and_no_ack() {
        let t = FiveTuple::new(1, 2, 3, 4, 6);
        let syn = Packet::header_only(0, t, 40, TCP_SYN);
        let synack = Packet::header_only(0, t, 40, TCP_SYN | TCP_ACK);
        let udp = Packet::header_only(0, FiveTuple::new(1, 2, 3, 4, 17), 40, TCP_SYN);
        assert!(syn.is_syn());
        assert!(!synack.is_syn());
        assert!(!udp.is_syn());
    }

    #[test]
    fn payload_len_reports_captured_bytes() {
        let t = FiveTuple::new(1, 2, 3, 4, 6);
        let p = Packet::with_payload(0, t, 1500, TCP_ACK, Bytes::from_static(b"hello"));
        assert_eq!(p.payload_len(), 5);
        assert_eq!(Packet::header_only(0, t, 40, 0).payload_len(), 0);
    }
}
