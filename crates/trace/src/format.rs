//! The `.nstr` binary trace format: record any batch stream to disk and
//! replay it bit-identically.
//!
//! The golden-replay conformance corpus (see `corpus/` at the repository
//! root) pins the output of every control/data/exec-plane refactor against
//! recorded scenarios, which requires a trace container whose decode is
//! *exactly* the batch stream that was encoded — packet timestamps, flow
//! tuples, flags and payload bytes included. The format is deliberately
//! simple and fully self-checking:
//!
//! ```text
//! header   magic "NSTR" · version u16 · flags u16 · time_bin_us u64
//!          · FNV-64 checksum over the preceding bytes
//! frame*   kind=1 · bin_index u64 · start_ts u64 · duration_us u64
//!          · packet_count u32 · body_len u32 · packets · frame checksum u64
//! end      kind=0 · total_batches u64 · checksum u64
//! ```
//!
//! The tiny header and end frames checksum with the byte-serial FNV; each
//! batch frame's checksum (format v2) runs the kind + head bytes through FNV
//! and the body through the word-parallel [`hash_block`], so verifying a
//! payload-heavy container costs memory bandwidth, not a multiply per byte.
//!
//! Every multi-byte value is little-endian. Each packet is encoded as
//! `ts u64 · src u32 · dst u32 · sport u16 · dport u16 · proto u8 ·
//! tcp_flags u8 · ip_len u32 · payload_len u32 (+ payload bytes)`, with
//! `u32::MAX` as the *no payload captured* sentinel (distinct from an empty
//! payload). [`TraceWriter`] streams frames to any [`Write`].
//!
//! Two readers share one frame decoder (each frame body decodes in a single
//! pass straight into the columns of a [`PacketStore`] — there is no
//! intermediate `Vec<Packet>`):
//!
//! * [`TraceReader`] streams from any [`Read`], copying payload bytes out of
//!   its frame buffer.
//! * [`SharedTraceReader`] replays a caller-held in-memory container (a
//!   [`Bytes`] buffer — e.g. a file read or mapped once): payloads become
//!   zero-copy windows into that buffer, so replay cost is independent of
//!   payload volume.
//!
//! Both validate magic, version and every checksum, latch decode errors when
//! driven as a streaming [`PacketSource`], and plug into the pipeline via
//! `read_all` + [`BatchReplay`] or the `into_replay` shortcut.

use crate::batch::{Batch, PacketStore};
use crate::packet::FiveTuple;
use crate::source::{BatchReplay, PacketSource};
use bytes::Bytes;
use netshed_sketch::{hash_block, mix64, IncrementalFnv};
use std::io::{Read, Write};

/// File magic: "NSTR" (netshed trace).
pub const TRACE_MAGIC: [u8; 4] = *b"NSTR";

/// Current format version. Readers accept exactly this version: v2 changed
/// the frame-body checksum from the byte-serial FNV to the word-parallel
/// [`hash_block`], so neither direction of version skew can be decoded.
pub const TRACE_FORMAT_VERSION: u16 = 2;

/// Seed of the container checksums (header and per-frame).
const CHECKSUM_SEED: u64 = 0x6e73_7472; // "nstr"

const FRAME_END: u8 = 0;
const FRAME_BATCH: u8 = 1;

/// Sentinel for "no payload captured" (`Packet.payload == None`).
const NO_PAYLOAD: u32 = u32::MAX;

/// Errors produced while encoding or decoding a binary trace.
#[derive(Debug)]
pub enum FormatError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The stream does not start with the `NSTR` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The trace was written by a different format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this reader supports.
        expected: u16,
    },
    /// A checksum did not match: the file is corrupt or was truncated and
    /// re-extended.
    ChecksumMismatch {
        /// What failed the check ("header", or the 0-based frame index).
        location: String,
    },
    /// The stream ended before the end frame (a partial write).
    Truncated,
    /// The end frame's batch count disagrees with the frames actually read.
    CountMismatch {
        /// Batch count declared by the end frame.
        declared: u64,
        /// Frames actually decoded.
        decoded: u64,
    },
    /// A frame carries an unknown kind byte.
    UnknownFrame {
        /// The offending kind byte.
        kind: u8,
    },
    /// A payload longer than the format can represent (4 GiB) was submitted
    /// for encoding.
    PayloadTooLarge {
        /// Length of the offending payload.
        len: usize,
    },
    /// A batch whose encoded frame body exceeds the format's 4 GiB frame
    /// limit was submitted for encoding.
    FrameTooLarge {
        /// Encoded body length of the offending batch.
        len: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(error) => write!(f, "trace i/o error: {error}"),
            FormatError::BadMagic { found } => {
                write!(f, "not a netshed trace (magic {found:02x?}, expected \"NSTR\")")
            }
            FormatError::UnsupportedVersion { found, expected } => write!(
                f,
                "trace format version {found} is not the supported {expected} \
                 (re-record the trace)"
            ),
            FormatError::ChecksumMismatch { location } => {
                write!(f, "trace checksum mismatch at {location}: file is corrupt")
            }
            FormatError::Truncated => write!(f, "trace ends before its end frame (partial write)"),
            FormatError::CountMismatch { declared, decoded } => {
                write!(f, "trace end frame declares {declared} batches but {decoded} were decoded")
            }
            FormatError::UnknownFrame { kind } => write!(f, "unknown trace frame kind {kind}"),
            FormatError::PayloadTooLarge { len } => {
                write!(f, "packet payload of {len} bytes exceeds the format limit")
            }
            FormatError::FrameTooLarge { len } => {
                write!(f, "batch frame of {len} bytes exceeds the format's 4 GiB limit")
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(error: std::io::Error) -> Self {
        FormatError::Io(error)
    }
}

/// Byte sink that feeds the frame checksum while buffering the frame body.
struct FrameBuf {
    bytes: Vec<u8>,
}

impl FrameBuf {
    fn new() -> Self {
        Self { bytes: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn raw(&mut self, v: &[u8]) {
        self.bytes.extend_from_slice(v);
    }

    fn checksum(&self) -> u64 {
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&self.bytes);
        fnv.finish()
    }
}

/// Streams batches into the `.nstr` container.
///
/// The writer emits the header on construction and one frame per
/// [`TraceWriter::write_batch`]; [`TraceWriter::finish`] appends the end
/// frame (with the total batch count) and flushes. A trace without an end
/// frame is rejected by the reader as [`FormatError::Truncated`], so a
/// crashed recording can never masquerade as a short one.
pub struct TraceWriter<W: Write> {
    writer: W,
    batches: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the container header and returns the writer.
    pub fn new(mut writer: W, time_bin_us: u64) -> Result<Self, FormatError> {
        let mut header = FrameBuf::new();
        header.raw(&TRACE_MAGIC);
        header.u16(TRACE_FORMAT_VERSION);
        header.u16(0); // flags, reserved
        header.u64(time_bin_us);
        let checksum = header.checksum();
        header.u64(checksum);
        writer.write_all(&header.bytes)?;
        Ok(Self { writer, batches: 0 })
    }

    /// Appends one batch frame.
    pub fn write_batch(&mut self, batch: &Batch) -> Result<(), FormatError> {
        let mut body = FrameBuf::new();
        for packet in batch.packets.iter() {
            let tuple = packet.tuple();
            body.u64(packet.ts());
            body.u32(tuple.src_ip);
            body.u32(tuple.dst_ip);
            body.u16(tuple.src_port);
            body.u16(tuple.dst_port);
            body.u8(tuple.proto);
            body.u8(packet.tcp_flags());
            body.u32(packet.ip_len());
            match packet.payload() {
                None => body.u32(NO_PAYLOAD),
                Some(payload) => {
                    let len = u32::try_from(payload.len())
                        .ok()
                        .filter(|&l| l != NO_PAYLOAD)
                        .ok_or(FormatError::PayloadTooLarge { len: payload.len() })?;
                    body.u32(len);
                    body.raw(payload);
                }
            }
        }
        // The per-payload guard above bounds each packet, not the frame: a
        // body past u32 would otherwise wrap `body_len` and write a file
        // that can never decode.
        let body_len = u32::try_from(body.bytes.len())
            .map_err(|_| FormatError::FrameTooLarge { len: body.bytes.len() })?;
        let packet_count = u32::try_from(batch.len())
            .map_err(|_| FormatError::FrameTooLarge { len: body.bytes.len() })?;
        let mut frame = FrameBuf::new();
        frame.u8(FRAME_BATCH);
        frame.u64(batch.bin_index);
        frame.u64(batch.start_ts);
        frame.u64(batch.duration_us);
        frame.u32(packet_count);
        frame.u32(body_len);
        frame.raw(&body.bytes);
        // Kind byte + 32-byte head, then the body — the same split the
        // readers verify against.
        let checksum = frame_checksum(&frame.bytes[1..33], &frame.bytes[33..]);
        frame.u64(checksum);
        self.writer.write_all(&frame.bytes)?;
        self.batches += 1;
        Ok(())
    }

    /// Appends every batch of a slice, in order.
    pub fn write_all(&mut self, batches: &[Batch]) -> Result<(), FormatError> {
        for batch in batches {
            self.write_batch(batch)?;
        }
        Ok(())
    }

    /// Writes the end frame, flushes, and returns the destination.
    pub fn finish(mut self) -> Result<W, FormatError> {
        let mut frame = FrameBuf::new();
        frame.u8(FRAME_END);
        frame.u64(self.batches);
        let checksum = frame.checksum();
        frame.u64(checksum);
        self.writer.write_all(&frame.bytes)?;
        self.writer.flush()?;
        Ok(self.writer)
    }

    /// Number of batches written so far.
    pub fn batches_written(&self) -> u64 {
        self.batches
    }
}

/// Encodes a batch slice into an in-memory `.nstr` container.
pub fn encode_batches(batches: &[Batch], time_bin_us: u64) -> Result<Vec<u8>, FormatError> {
    let mut writer = TraceWriter::new(Vec::new(), time_bin_us)?;
    writer.write_all(batches)?;
    writer.finish()
}

/// Decodes every batch of an in-memory `.nstr` container, copying payloads.
pub fn decode_batches(bytes: &[u8]) -> Result<Vec<Batch>, FormatError> {
    TraceReader::new(bytes)?.read_all()
}

/// Decodes every batch of a shared in-memory `.nstr` container; payloads are
/// zero-copy windows into `buffer` (see [`SharedTraceReader`]).
pub fn decode_batches_shared(buffer: &Bytes) -> Result<Vec<Batch>, FormatError> {
    SharedTraceReader::new(buffer.clone())?.read_all()
}

/// Validates an `.nstr` header in `fixed` (16 bytes) + `declared` (8-byte
/// checksum); returns the recorded time-bin duration.
fn validate_header(fixed: &[u8; 16], declared: [u8; 8]) -> Result<u64, FormatError> {
    validate_magic(fixed)?;
    let version = u16::from_le_bytes([fixed[4], fixed[5]]);
    if version != TRACE_FORMAT_VERSION {
        return Err(FormatError::UnsupportedVersion {
            found: version,
            expected: TRACE_FORMAT_VERSION,
        });
    }
    let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
    fnv.write(fixed);
    if fnv.finish() != u64::from_le_bytes(declared) {
        return Err(FormatError::ChecksumMismatch { location: "header".into() });
    }
    Ok(le_u64(fixed, 8))
}

/// Checks the magic of the fixed header prefix. Called as soon as the first
/// 16 bytes are in, *before* the 8-byte header checksum is read, so that a
/// short non-`.nstr` input reports [`FormatError::BadMagic`] rather than the
/// misleading [`FormatError::Truncated`].
fn validate_magic(fixed: &[u8; 16]) -> Result<(), FormatError> {
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&fixed[..4]);
    if magic != TRACE_MAGIC {
        return Err(FormatError::BadMagic { found: magic });
    }
    Ok(())
}

/// Validates an end frame (`kind` byte already consumed, `rest` = count +
/// checksum) against the number of frames actually decoded.
fn validate_end_frame(rest: &[u8; 16], decoded: u64) -> Result<(), FormatError> {
    let declared_count = le_u64(rest, 0);
    let declared_sum = le_u64(rest, 8);
    let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
    fnv.write(&[FRAME_END]);
    fnv.write(&rest[..8]);
    if fnv.finish() != declared_sum {
        return Err(FormatError::ChecksumMismatch { location: "end frame".into() });
    }
    if declared_count != decoded {
        return Err(FormatError::CountMismatch { declared: declared_count, decoded });
    }
    Ok(())
}

/// Computes a batch frame's checksum (format v2).
///
/// The 33 fixed bytes (kind + 32-byte head) absorb through the byte-serial
/// FNV; the body — which carries the payload volume and dominates the
/// container — absorbs through the word-parallel [`hash_block`], so
/// verification cost is bounded by memory bandwidth rather than a
/// byte-at-a-time multiply chain. The two halves combine through [`mix64`].
fn frame_checksum(head: &[u8], body: &[u8]) -> u64 {
    let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
    fnv.write(&[FRAME_BATCH]);
    fnv.write(head);
    mix64(fnv.finish() ^ hash_block(body, CHECKSUM_SEED))
}

/// Verifies a batch frame's checksum (`kind` + 32-byte head + body against
/// the declared little-endian sum).
fn verify_frame_checksum(
    head: &[u8],
    body: &[u8],
    declared: [u8; 8],
    frame: u64,
) -> Result<(), FormatError> {
    if frame_checksum(head, body) != u64::from_le_bytes(declared) {
        return Err(FormatError::ChecksumMismatch { location: format!("frame {frame}") });
    }
    Ok(())
}

/// Decodes `.nstr` frames from any [`Read`], verifying every checksum.
///
/// Frame bodies decode straight into the column store ([`PacketStore`]);
/// payload bytes are copied out of the reader's frame buffer. For repeated
/// in-memory replay prefer [`SharedTraceReader`], which borrows payloads
/// from the container instead.
pub struct TraceReader<R: Read> {
    reader: R,
    time_bin_us: u64,
    decoded: u64,
    /// Set once the end frame was seen (further reads return `None`).
    finished: bool,
    /// First decode error, latched for the `PacketSource` adapter.
    error: Option<FormatError>,
    frame: Vec<u8>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the container header.
    pub fn new(mut reader: R) -> Result<Self, FormatError> {
        let mut fixed = [0u8; 16];
        read_exact_or_truncated(&mut reader, &mut fixed)?;
        validate_magic(&fixed)?;
        let mut declared = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut declared)?;
        let time_bin_us = validate_header(&fixed, declared)?;
        Ok(Self {
            reader,
            time_bin_us,
            decoded: 0,
            finished: false,
            error: None,
            frame: Vec::new(),
        })
    }

    /// The time-bin duration recorded in the header.
    pub fn time_bin_us(&self) -> u64 {
        self.time_bin_us
    }

    /// The first decode error hit by the [`PacketSource`] adapter, if any.
    ///
    /// `next_batch` has no error channel, so a corrupt tail latches here and
    /// the stream ends early; callers that must distinguish "clean end" from
    /// "corrupt end" check this after the run.
    pub fn error(&self) -> Option<&FormatError> {
        self.error.as_ref()
    }

    /// Decodes the next batch, `Ok(None)` at the (validated) end frame.
    pub fn read_batch(&mut self) -> Result<Option<Batch>, FormatError> {
        if self.finished {
            return Ok(None);
        }
        let mut kind = [0u8; 1];
        read_exact_or_truncated(&mut self.reader, &mut kind)?;
        match kind[0] {
            FRAME_END => {
                let mut rest = [0u8; 16];
                read_exact_or_truncated(&mut self.reader, &mut rest)?;
                validate_end_frame(&rest, self.decoded)?;
                self.finished = true;
                Ok(None)
            }
            FRAME_BATCH => {
                let mut head = [0u8; 32];
                read_exact_or_truncated(&mut self.reader, &mut head)?;
                let bin_index = le_u64(&head, 0);
                let start_ts = le_u64(&head, 8);
                let duration_us = le_u64(&head, 16);
                let packet_count = le_u32(&head, 24);
                let body_len = le_u32(&head, 28);
                // `body_len` comes from a not-yet-verified header, so grow
                // the buffer only as bytes actually arrive: a corrupt
                // length on a short file fails as `Truncated` instead of
                // allocating gigabytes up front.
                self.frame.clear();
                let read = (&mut self.reader)
                    .take(u64::from(body_len))
                    .read_to_end(&mut self.frame)
                    .map_err(FormatError::Io)?;
                if read != body_len as usize {
                    return Err(FormatError::Truncated);
                }
                let mut declared = [0u8; 8];
                read_exact_or_truncated(&mut self.reader, &mut declared)?;
                verify_frame_checksum(&head, &self.frame, declared, self.decoded)?;
                let body = &self.frame;
                let store = decode_store_with(body, packet_count, self.decoded, |range| {
                    Bytes::copy_from_slice(&body[range])
                })?;
                self.decoded += 1;
                Ok(Some(Batch::from_store(bin_index, start_ts, duration_us, store)))
            }
            kind => Err(FormatError::UnknownFrame { kind }),
        }
    }

    /// Skips the next frame without decoding its body.
    ///
    /// `Ok(true)` when a batch frame was stepped over, `Ok(false)` at the
    /// (validated) end frame. The 32-byte frame head is read to learn the
    /// body length, then `body_len + 8` bytes (body plus trailing checksum)
    /// are discarded unread — no column decode, no body hash. The container
    /// header checksum was already verified in [`TraceReader::new`]; a frame
    /// whose declared length overruns the file still reports
    /// [`FormatError::Truncated`].
    fn skip_frame(&mut self) -> Result<bool, FormatError> {
        if self.finished {
            return Ok(false);
        }
        let mut kind = [0u8; 1];
        read_exact_or_truncated(&mut self.reader, &mut kind)?;
        match kind[0] {
            FRAME_END => {
                let mut rest = [0u8; 16];
                read_exact_or_truncated(&mut self.reader, &mut rest)?;
                validate_end_frame(&rest, self.decoded)?;
                self.finished = true;
                Ok(false)
            }
            FRAME_BATCH => {
                let mut head = [0u8; 32];
                read_exact_or_truncated(&mut self.reader, &mut head)?;
                let skip = u64::from(le_u32(&head, 28)) + 8;
                let copied =
                    std::io::copy(&mut (&mut self.reader).take(skip), &mut std::io::sink())
                        .map_err(FormatError::Io)?;
                if copied != skip {
                    return Err(FormatError::Truncated);
                }
                self.decoded += 1;
                Ok(true)
            }
            kind => Err(FormatError::UnknownFrame { kind }),
        }
    }

    /// Decodes the whole trace into a batch vector.
    pub fn read_all(mut self) -> Result<Vec<Batch>, FormatError> {
        let mut batches = Vec::new();
        while let Some(batch) = self.read_batch()? {
            batches.push(batch);
        }
        Ok(batches)
    }

    /// Decodes the whole trace into a rewindable [`BatchReplay`].
    pub fn into_replay(self) -> Result<BatchReplay, FormatError> {
        Ok(BatchReplay::new(self.read_all()?))
    }
}

/// A reader is a streaming [`PacketSource`]: decode errors end the stream
/// and latch in [`TraceReader::error`].
impl<R: Read> PacketSource for TraceReader<R> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.error.is_some() {
            return None;
        }
        match self.read_batch() {
            Ok(batch) => batch,
            Err(error) => {
                self.error = Some(error);
                None
            }
        }
    }

    /// Frame-skip fast path: steps over `count` frames by their declared
    /// lengths instead of decoding and checksumming every body (the default
    /// implementation's cost on a daemon restore over a large `.nstr`).
    /// Cursor, frame counter and error latching behave exactly like `count`
    /// calls to `next_batch` that drop their result.
    fn skip_batches(&mut self, count: u64) -> u64 {
        let mut skipped = 0;
        while skipped < count {
            if self.error.is_some() {
                break;
            }
            match self.skip_frame() {
                Ok(true) => skipped += 1,
                Ok(false) => break,
                Err(error) => {
                    self.error = Some(error);
                    break;
                }
            }
        }
        skipped
    }
}

/// Decodes `.nstr` frames from a caller-held in-memory container without
/// copying packet bytes.
///
/// The whole container lives in one shared [`Bytes`] buffer (read or mapped
/// into memory once by the caller); each decoded payload is an O(1) window
/// into that buffer, so replaying a payload-heavy recording costs the same
/// as replaying a header-only one. Frame fields still stream straight into
/// the [`PacketStore`] columns — there is no intermediate `Vec<Packet>`
/// decode-copy anywhere on this path.
///
/// Validation (magic, version, every checksum, end-frame count) and the
/// error taxonomy are identical to [`TraceReader`]; running off the end of
/// the buffer reports [`FormatError::Truncated`]. The container buffer stays
/// alive as long as any decoded payload does — dropping the reader does not
/// invalidate batches it produced.
pub struct SharedTraceReader {
    buffer: Bytes,
    /// Read cursor into `buffer`.
    at: usize,
    time_bin_us: u64,
    decoded: u64,
    /// Set once the end frame was seen (further reads return `None`).
    finished: bool,
    /// First decode error, latched for the `PacketSource` adapter.
    error: Option<FormatError>,
}

impl SharedTraceReader {
    /// Validates the container header of a shared buffer.
    pub fn new(buffer: Bytes) -> Result<Self, FormatError> {
        let bytes = buffer.as_slice();
        let mut fixed = [0u8; 16];
        fixed.copy_from_slice(bytes.get(..16).ok_or(FormatError::Truncated)?);
        validate_magic(&fixed)?;
        let mut declared = [0u8; 8];
        declared.copy_from_slice(bytes.get(16..24).ok_or(FormatError::Truncated)?);
        let time_bin_us = validate_header(&fixed, declared)?;
        Ok(Self { buffer, at: 24, time_bin_us, decoded: 0, finished: false, error: None })
    }

    /// The time-bin duration recorded in the header.
    pub fn time_bin_us(&self) -> u64 {
        self.time_bin_us
    }

    /// The first decode error hit by the [`PacketSource`] adapter, if any
    /// (same latching contract as [`TraceReader::error`]).
    pub fn error(&self) -> Option<&FormatError> {
        self.error.as_ref()
    }

    /// Decodes the next batch, `Ok(None)` at the (validated) end frame.
    pub fn read_batch(&mut self) -> Result<Option<Batch>, FormatError> {
        if self.finished {
            return Ok(None);
        }
        // An O(1) handle on the container so the cursor can move freely
        // while frame slices stay borrowed from the same allocation.
        let buffer = self.buffer.clone();
        let bytes = buffer.as_slice();
        let kind = *bytes.get(self.at).ok_or(FormatError::Truncated)?;
        self.at += 1;
        match kind {
            FRAME_END => {
                let mut rest = [0u8; 16];
                rest.copy_from_slice(
                    bytes.get(self.at..self.at + 16).ok_or(FormatError::Truncated)?,
                );
                self.at += 16;
                validate_end_frame(&rest, self.decoded)?;
                self.finished = true;
                Ok(None)
            }
            FRAME_BATCH => {
                let head = bytes.get(self.at..self.at + 32).ok_or(FormatError::Truncated)?;
                self.at += 32;
                let bin_index = le_u64(head, 0);
                let start_ts = le_u64(head, 8);
                let duration_us = le_u64(head, 16);
                let packet_count = le_u32(head, 24);
                let body_len = le_u32(head, 28);
                let body_start = self.at;
                let body_end =
                    body_start.checked_add(body_len as usize).ok_or(FormatError::Truncated)?;
                let body = bytes.get(body_start..body_end).ok_or(FormatError::Truncated)?;
                self.at = body_end;
                let mut declared = [0u8; 8];
                declared.copy_from_slice(
                    bytes.get(self.at..self.at + 8).ok_or(FormatError::Truncated)?,
                );
                self.at += 8;
                verify_frame_checksum(head, body, declared, self.decoded)?;
                let store = decode_store_with(body, packet_count, self.decoded, |range| {
                    buffer.slice(body_start + range.start..body_start + range.end)
                })?;
                self.decoded += 1;
                Ok(Some(Batch::from_store(bin_index, start_ts, duration_us, store)))
            }
            kind => Err(FormatError::UnknownFrame { kind }),
        }
    }

    /// Skips the next frame without decoding its body (the in-memory twin of
    /// [`TraceReader::skip_frame`]: a bounds-checked cursor bump past
    /// `body_len + 8` bytes).
    fn skip_frame(&mut self) -> Result<bool, FormatError> {
        if self.finished {
            return Ok(false);
        }
        let bytes = self.buffer.as_slice();
        let kind = *bytes.get(self.at).ok_or(FormatError::Truncated)?;
        self.at += 1;
        match kind {
            FRAME_END => {
                let mut rest = [0u8; 16];
                rest.copy_from_slice(
                    bytes.get(self.at..self.at + 16).ok_or(FormatError::Truncated)?,
                );
                self.at += 16;
                validate_end_frame(&rest, self.decoded)?;
                self.finished = true;
                Ok(false)
            }
            FRAME_BATCH => {
                let head = bytes.get(self.at..self.at + 32).ok_or(FormatError::Truncated)?;
                let body_len = le_u32(head, 28);
                let frame_end = self
                    .at
                    .checked_add(32 + body_len as usize + 8)
                    .filter(|&end| end <= bytes.len())
                    .ok_or(FormatError::Truncated)?;
                self.at = frame_end;
                self.decoded += 1;
                Ok(true)
            }
            kind => Err(FormatError::UnknownFrame { kind }),
        }
    }

    /// Decodes the whole trace into a batch vector (payloads stay borrowed
    /// from the container buffer).
    pub fn read_all(mut self) -> Result<Vec<Batch>, FormatError> {
        let mut batches = Vec::new();
        while let Some(batch) = self.read_batch()? {
            batches.push(batch);
        }
        Ok(batches)
    }

    /// Decodes the whole trace into a rewindable [`BatchReplay`].
    pub fn into_replay(self) -> Result<BatchReplay, FormatError> {
        Ok(BatchReplay::new(self.read_all()?))
    }
}

/// The shared reader is a streaming [`PacketSource`] with the same
/// error-latching contract as [`TraceReader`].
impl PacketSource for SharedTraceReader {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.error.is_some() {
            return None;
        }
        match self.read_batch() {
            Ok(batch) => batch,
            Err(error) => {
                self.error = Some(error);
                None
            }
        }
    }

    /// Frame-skip fast path over the in-memory container (same contract as
    /// [`TraceReader`]'s override).
    fn skip_batches(&mut self, count: u64) -> u64 {
        let mut skipped = 0;
        while skipped < count {
            if self.error.is_some() {
                break;
            }
            match self.skip_frame() {
                Ok(true) => skipped += 1,
                Ok(false) => break,
                Err(error) => {
                    self.error = Some(error);
                    break;
                }
            }
        }
        skipped
    }
}

/// Decodes a little-endian `u64` at `bytes[at..at + 8]`.
///
/// Every caller indexes a fixed-width region of a buffer it just filled, so
/// the width holds by construction; `copy_from_slice` keeps the decode
/// infallible without the `try_into().unwrap()` dance.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes a little-endian `u32` at `bytes[at..at + 4]`.
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(buf)
}

/// Decodes a little-endian `u16` at `bytes[at..at + 2]`.
fn le_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn read_exact_or_truncated<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), FormatError> {
    reader.read_exact(buf).map_err(|error| {
        if error.kind() == std::io::ErrorKind::UnexpectedEof {
            FormatError::Truncated
        } else {
            FormatError::Io(error)
        }
    })
}

/// Decodes one frame body straight into a [`PacketStore`].
///
/// `payload_at` turns a byte range of `body` into the payload's [`Bytes`] —
/// the copying reader materialises the range, the shared reader returns a
/// zero-copy window into the container. This is the single decode loop both
/// readers share, so their batch streams (and error behaviour) cannot
/// diverge.
fn decode_store_with<F>(
    body: &[u8],
    count: u32,
    frame: u64,
    mut payload_at: F,
) -> Result<PacketStore, FormatError>
where
    F: FnMut(std::ops::Range<usize>) -> Bytes,
{
    fn corrupt(frame: u64) -> FormatError {
        FormatError::ChecksumMismatch { location: format!("frame {frame} body") }
    }
    fn take<'b>(
        body: &'b [u8],
        at: &mut usize,
        n: usize,
        frame: u64,
    ) -> Result<&'b [u8], FormatError> {
        let slice = body.get(*at..*at + n).ok_or_else(|| corrupt(frame))?;
        *at += n;
        Ok(slice)
    }
    let mut builder = PacketStore::builder(count as usize);
    let mut at = 0usize;
    for _ in 0..count {
        let ts = le_u64(take(body, &mut at, 8, frame)?, 0);
        let src_ip = le_u32(take(body, &mut at, 4, frame)?, 0);
        let dst_ip = le_u32(take(body, &mut at, 4, frame)?, 0);
        let src_port = le_u16(take(body, &mut at, 2, frame)?, 0);
        let dst_port = le_u16(take(body, &mut at, 2, frame)?, 0);
        let proto = take(body, &mut at, 1, frame)?[0];
        let tcp_flags = take(body, &mut at, 1, frame)?[0];
        let ip_len = le_u32(take(body, &mut at, 4, frame)?, 0);
        let payload_len = le_u32(take(body, &mut at, 4, frame)?, 0);
        let payload = if payload_len == NO_PAYLOAD {
            None
        } else {
            let start = at;
            take(body, &mut at, payload_len as usize, frame)?;
            Some(payload_at(start..at))
        };
        builder.push(
            ts,
            FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto),
            ip_len,
            tcp_flags,
            payload,
        );
    }
    if at != body.len() {
        return Err(corrupt(frame));
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::source::PacketSourceExt;

    fn sample_batches(payloads: bool) -> Vec<Batch> {
        TraceGenerator::new(
            TraceConfig::default()
                .with_seed(17)
                .with_mean_packets_per_batch(40.0)
                .with_payloads(payloads),
        )
        .batches(5)
    }

    /// Rewrites the end frame's batch count in place, fixing up its checksum
    /// so only the count (not the container integrity) is wrong.
    fn falsify_end_count(bytes: &mut [u8], declared: u64) {
        let end = bytes.len() - 17; // kind u8 + count u64 + checksum u64
        assert_eq!(bytes[end], 0, "end frame kind");
        bytes[end + 1..end + 9].copy_from_slice(&declared.to_le_bytes());
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&bytes[end..end + 9]);
        let sum = fnv.finish();
        bytes[end + 9..end + 17].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn skip_batches_fast_path_matches_the_default_cursor() {
        let batches = sample_batches(true);
        let bytes = encode_batches(&batches, 100_000).expect("encode");

        // Reference cursor: a wrapper that hides the readers' overrides, so
        // `skip_batches` resolves to the trait's decode-and-drop default.
        struct DefaultSkip<S>(S);
        impl<S: PacketSource> PacketSource for DefaultSkip<S> {
            fn next_batch(&mut self) -> Option<Batch> {
                self.0.next_batch()
            }
        }

        // 0 = no-op, mid-stream, exact end, past the end (shortfall).
        for skip in [0u64, 1, 3, 5, 7] {
            let mut reference = DefaultSkip(TraceReader::new(&bytes[..]).expect("header"));
            let reference_skipped = reference.skip_batches(skip);
            let reference_rest: Vec<Batch> =
                std::iter::from_fn(|| reference.next_batch()).collect();
            assert!(reference.0.error().is_none());

            let mut fast = TraceReader::new(&bytes[..]).expect("header");
            assert_eq!(fast.skip_batches(skip), reference_skipped, "skip={skip}");
            let fast_rest: Vec<Batch> = std::iter::from_fn(|| fast.next_batch()).collect();
            assert!(fast.error().is_none(), "skip={skip}");
            assert_eq!(fast_rest, reference_rest, "skip={skip}");

            let mut shared = SharedTraceReader::new(Bytes::from(bytes.clone())).expect("header");
            assert_eq!(shared.skip_batches(skip), reference_skipped, "skip={skip}");
            let shared_rest: Vec<Batch> = std::iter::from_fn(|| shared.next_batch()).collect();
            assert!(shared.error().is_none(), "skip={skip}");
            assert_eq!(shared_rest, reference_rest, "skip={skip}");
        }
    }

    #[test]
    fn skip_batches_reports_truncation_like_the_decode_path() {
        let batches = sample_batches(false);
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        // Cut mid-body of some frame: the skip must run off the end and
        // latch `Truncated` instead of silently succeeding.
        let cut = &bytes[..bytes.len() / 2];
        let mut reader = TraceReader::new(cut).expect("header");
        let skipped = reader.skip_batches(u64::from(u32::MAX));
        assert!(skipped < batches.len() as u64);
        assert!(matches!(reader.error(), Some(FormatError::Truncated)));

        let mut shared = SharedTraceReader::new(Bytes::from(cut.to_vec())).expect("header");
        assert_eq!(shared.skip_batches(u64::from(u32::MAX)), skipped);
        assert!(matches!(shared.error(), Some(FormatError::Truncated)));
    }

    #[test]
    fn roundtrip_is_bit_identical_with_and_without_payloads() {
        for payloads in [false, true] {
            let batches = sample_batches(payloads);
            let bytes = encode_batches(&batches, 100_000).expect("encode");
            let decoded = decode_batches(&bytes).expect("decode");
            assert_eq!(batches, decoded, "payloads={payloads}");
        }
    }

    #[test]
    fn shared_replay_is_bit_identical_and_borrows_payloads() {
        let batches = sample_batches(true);
        let container = Bytes::from(encode_batches(&batches, 100_000).expect("encode"));
        let decoded = decode_batches_shared(&container).expect("decode");
        assert_eq!(batches, decoded);
        // Every decoded payload must be a window into the container buffer,
        // not a copy.
        let base = container.as_slice().as_ptr() as usize;
        let end = base + container.len();
        let mut payloads = 0usize;
        for batch in &decoded {
            for packet in batch.packets.iter() {
                if let Some(payload) = packet.payload() {
                    if payload.is_empty() {
                        continue;
                    }
                    let at = payload.as_slice().as_ptr() as usize;
                    assert!(at >= base && at + payload.len() <= end, "payload was copied");
                    payloads += 1;
                }
            }
        }
        assert!(payloads > 0, "the sample trace must exercise payloads");
    }

    #[test]
    fn empty_payload_and_no_payload_stay_distinct() {
        let tuple = FiveTuple::new(1, 2, 3, 4, 6);
        let batch = Batch::new(
            0,
            0,
            100_000,
            vec![
                crate::packet::Packet::header_only(1, tuple, 40, 0),
                crate::packet::Packet::with_payload(2, tuple, 40, 0, Bytes::new()),
            ],
        );
        let bytes = encode_batches(&[batch], 100_000).expect("encode");
        for decoded in [
            decode_batches(&bytes).expect("decode"),
            decode_batches_shared(&Bytes::from(bytes.clone())).expect("shared decode"),
        ] {
            assert_eq!(decoded[0].packets.get(0).payload(), None);
            assert_eq!(decoded[0].packets.get(1).payload(), Some(&Bytes::new()));
        }
    }

    #[test]
    fn empty_batches_survive_the_container() {
        let batches = vec![Batch::empty(3, 300_000, 100_000), Batch::empty(4, 400_000, 100_000)];
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        assert_eq!(decode_batches(&bytes).expect("decode"), batches);
        assert_eq!(decode_batches_shared(&Bytes::from(bytes)).expect("shared"), batches);
    }

    #[test]
    fn reader_reports_the_header_time_bin() {
        let bytes = encode_batches(&[], 250_000).expect("encode");
        let reader = TraceReader::new(&bytes[..]).expect("header");
        assert_eq!(reader.time_bin_us(), 250_000);
        let shared = SharedTraceReader::new(Bytes::from(bytes)).expect("header");
        assert_eq!(shared.time_bin_us(), 250_000);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_batches(&sample_batches(false), 100_000).expect("encode");
        bytes[0] = b'X';
        assert!(matches!(
            TraceReader::new(&bytes[..]).err().expect("must fail"),
            FormatError::BadMagic { .. }
        ));
        assert!(matches!(
            SharedTraceReader::new(Bytes::from(bytes)).err().expect("must fail"),
            FormatError::BadMagic { .. }
        ));
    }

    #[test]
    fn short_garbage_reports_bad_magic_not_truncation() {
        // The magic check runs as soon as the 16 fixed header bytes are in,
        // *before* the 8-byte header checksum is read: feeding a short
        // non-`.nstr` input must say "wrong format", not "truncated trace".
        let garbage = b"not a trace at all"; // 18 bytes: fixed header fits, checksum doesn't
        assert!(matches!(
            TraceReader::new(&garbage[..]).err().expect("must fail"),
            FormatError::BadMagic { .. }
        ));
        assert!(matches!(
            SharedTraceReader::new(Bytes::from(&garbage[..])).err().expect("must fail"),
            FormatError::BadMagic { .. }
        ));
        // Shorter than the magic itself: truncation is the honest answer.
        assert!(matches!(
            TraceReader::new(&garbage[..3]).err().expect("must fail"),
            FormatError::Truncated
        ));
    }

    #[test]
    fn version_skew_is_rejected_in_both_directions() {
        // v2 changed the frame checksum algorithm, so an older container is
        // as undecodable as a newer one — the version check is exact.
        for skewed in [TRACE_FORMAT_VERSION + 1, TRACE_FORMAT_VERSION - 1] {
            let mut bytes = encode_batches(&[], 100_000).expect("encode");
            bytes[4..6].copy_from_slice(&skewed.to_le_bytes());
            assert!(matches!(
                TraceReader::new(&bytes[..]).err().expect("must fail"),
                FormatError::UnsupportedVersion { found, expected }
                    if found == skewed && expected == TRACE_FORMAT_VERSION
            ));
            let err = SharedTraceReader::new(Bytes::from(bytes)).err().expect("must fail");
            assert!(matches!(
                err,
                FormatError::UnsupportedVersion { found, expected }
                    if found == skewed && expected == TRACE_FORMAT_VERSION
            ));
            // The message must diagnose the skew, not just detect it: both
            // the found and the supported version are spelled out.
            let message = err.to_string();
            assert!(message.contains(&skewed.to_string()), "message lacks found version");
            assert!(
                message.contains(&TRACE_FORMAT_VERSION.to_string()),
                "message lacks expected version"
            );
        }
    }

    #[test]
    fn header_corruption_fails_the_header_checksum() {
        let mut bytes = encode_batches(&[], 100_000).expect("encode");
        bytes[9] ^= 0xff; // inside time_bin_us
        assert!(matches!(
            TraceReader::new(&bytes[..]).err().expect("must fail"),
            FormatError::ChecksumMismatch { .. }
        ));
        assert!(matches!(
            SharedTraceReader::new(Bytes::from(bytes)).err().expect("must fail"),
            FormatError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn flipping_any_frame_byte_is_detected() {
        let batches = sample_batches(false);
        let clean = encode_batches(&batches, 100_000).expect("encode");
        // Flip a byte inside the first frame body (past the 24-byte header).
        let mut corrupt = clean.clone();
        corrupt[24 + 40] ^= 0x01;
        let error = decode_batches(&corrupt).expect_err("corruption must be detected");
        assert!(
            matches!(error, FormatError::ChecksumMismatch { .. }),
            "got {error:?} instead of a checksum mismatch"
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected_by_both_readers() {
        // Exhaustive corruption sweep: every byte of the container is
        // covered by the header, a frame, or the end-frame checksum, so any
        // single-bit flip must surface as *some* FormatError — never as a
        // silently different batch stream.
        let batches = sample_batches(true).into_iter().take(2).collect::<Vec<_>>();
        let clean = encode_batches(&batches, 100_000).expect("encode");
        for at in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x01;
            let copy_err = decode_batches(&corrupt);
            assert!(copy_err.is_err(), "flip at byte {at} went undetected (copying reader)");
            let shared_err = decode_batches_shared(&Bytes::from(corrupt));
            assert!(shared_err.is_err(), "flip at byte {at} went undetected (shared reader)");
        }
    }

    #[test]
    fn every_strict_prefix_truncation_errors() {
        let batches = sample_batches(true).into_iter().take(2).collect::<Vec<_>>();
        let clean = encode_batches(&batches, 100_000).expect("encode");
        for len in 0..clean.len() {
            let cut = &clean[..len];
            assert!(decode_batches(cut).is_err(), "prefix of {len} bytes decoded cleanly");
            assert!(
                decode_batches_shared(&Bytes::copy_from_slice(cut)).is_err(),
                "prefix of {len} bytes decoded cleanly (shared reader)"
            );
        }
    }

    #[test]
    fn truncated_traces_are_detected() {
        let bytes = encode_batches(&sample_batches(false), 100_000).expect("encode");
        // Drop the end frame (and a bit more).
        let cut = &bytes[..bytes.len() - 20];
        assert!(matches!(
            decode_batches(cut).expect_err("must fail"),
            FormatError::Truncated | FormatError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn end_frame_count_mismatch_is_detected() {
        let batches = sample_batches(false);
        let mut bytes = encode_batches(&batches, 100_000).expect("encode");
        falsify_end_count(&mut bytes, batches.len() as u64 + 2);
        match decode_batches(&bytes).expect_err("must fail") {
            FormatError::CountMismatch { declared, decoded } => {
                assert_eq!(declared, batches.len() as u64 + 2);
                assert_eq!(decoded, batches.len() as u64);
            }
            other => panic!("expected CountMismatch, got {other:?}"),
        }
        assert!(matches!(
            decode_batches_shared(&Bytes::from(bytes)).expect_err("must fail"),
            FormatError::CountMismatch { .. }
        ));
    }

    #[test]
    fn end_frame_checksum_corruption_is_detected() {
        let mut bytes = encode_batches(&sample_batches(false), 100_000).expect("encode");
        let last = bytes.len() - 1; // inside the end frame's checksum
        bytes[last] ^= 0xff;
        for error in [
            decode_batches(&bytes).expect_err("must fail"),
            decode_batches_shared(&Bytes::from(bytes.clone())).expect_err("must fail"),
        ] {
            match error {
                FormatError::ChecksumMismatch { location } => assert_eq!(location, "end frame"),
                other => panic!("expected an end-frame checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn reader_is_a_packet_source_and_latches_errors() {
        let batches = sample_batches(true);
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        let mut source = TraceReader::new(&bytes[..]).expect("header").take_batches(3);
        let mut produced = 0;
        while source.next_batch().is_some() {
            produced += 1;
        }
        assert_eq!(produced, 3);

        // A truncated stream ends early and reports why. Cut past the end
        // frame (17 bytes) and into the last batch frame's checksum.
        let cut = &bytes[..bytes.len() - 25];
        let mut reader = TraceReader::new(cut).expect("header survives");
        let mut decoded = 0;
        while PacketSource::next_batch(&mut reader).is_some() {
            decoded += 1;
        }
        assert!(decoded < batches.len());
        assert!(reader.error().is_some(), "the decode error must be latched");
    }

    #[test]
    fn shared_reader_is_a_packet_source_and_latches_the_right_error() {
        let batches = sample_batches(true);
        let mut bytes = encode_batches(&batches, 100_000).expect("encode");
        falsify_end_count(&mut bytes, 0);
        let mut reader = SharedTraceReader::new(Bytes::from(bytes)).expect("header");
        let mut decoded = 0;
        while PacketSource::next_batch(&mut reader).is_some() {
            decoded += 1;
        }
        assert_eq!(decoded, batches.len(), "all frames decode before the bad end frame");
        assert!(
            matches!(reader.error(), Some(FormatError::CountMismatch { .. })),
            "the count mismatch must latch, got {:?}",
            reader.error()
        );
    }

    #[test]
    fn into_replay_rewinds_the_recording() {
        let batches = sample_batches(false);
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        let mut replay = SharedTraceReader::new(Bytes::from(bytes))
            .expect("header")
            .into_replay()
            .expect("decode");
        assert_eq!(replay.len(), batches.len());
        let first: Vec<u64> =
            std::iter::from_fn(|| replay.next_batch()).map(|b| b.bin_index).collect();
        replay.reset();
        let second: Vec<u64> =
            std::iter::from_fn(|| replay.next_batch()).map(|b| b.bin_index).collect();
        assert_eq!(first, second);
    }
}
