//! The `.nstr` binary trace format: record any batch stream to disk and
//! replay it bit-identically.
//!
//! The golden-replay conformance corpus (see `corpus/` at the repository
//! root) pins the output of every control/data/exec-plane refactor against
//! recorded scenarios, which requires a trace container whose decode is
//! *exactly* the batch stream that was encoded — packet timestamps, flow
//! tuples, flags and payload bytes included. The format is deliberately
//! simple and fully self-checking:
//!
//! ```text
//! header   magic "NSTR" · version u16 · flags u16 · time_bin_us u64
//!          · FNV-64 checksum over the preceding bytes
//! frame*   kind=1 · bin_index u64 · start_ts u64 · duration_us u64
//!          · packet_count u32 · body_len u32 · packets · body checksum u64
//! end      kind=0 · total_batches u64 · checksum u64
//! ```
//!
//! Every multi-byte value is little-endian. Each packet is encoded as
//! `ts u64 · src u32 · dst u32 · sport u16 · dport u16 · proto u8 ·
//! tcp_flags u8 · ip_len u32 · payload_len u32 (+ payload bytes)`, with
//! `u32::MAX` as the *no payload captured* sentinel (distinct from an empty
//! payload). [`TraceWriter`] streams frames to any [`Write`]; [`TraceReader`]
//! validates magic, version and every checksum while decoding from any
//! [`Read`], and plugs straight into the pipeline — either through
//! [`TraceReader::read_all`] + [`BatchReplay`], the [`TraceReader::into_replay`]
//! shortcut, or directly as a streaming [`PacketSource`].

use crate::batch::Batch;
use crate::packet::{FiveTuple, Packet};
use crate::source::{BatchReplay, PacketSource};
use bytes::Bytes;
use netshed_sketch::IncrementalFnv;
use std::io::{Read, Write};

/// File magic: "NSTR" (netshed trace).
pub const TRACE_MAGIC: [u8; 4] = *b"NSTR";

/// Current format version. Readers reject anything newer.
pub const TRACE_FORMAT_VERSION: u16 = 1;

/// Seed of the FNV-64 checksums (header and per-frame).
const CHECKSUM_SEED: u64 = 0x6e73_7472; // "nstr"

const FRAME_END: u8 = 0;
const FRAME_BATCH: u8 = 1;

/// Sentinel for "no payload captured" (`Packet.payload == None`).
const NO_PAYLOAD: u32 = u32::MAX;

/// Errors produced while encoding or decoding a binary trace.
#[derive(Debug)]
pub enum FormatError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The stream does not start with the `NSTR` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The trace was written by a newer format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// A checksum did not match: the file is corrupt or was truncated and
    /// re-extended.
    ChecksumMismatch {
        /// What failed the check ("header", or the 0-based frame index).
        location: String,
    },
    /// The stream ended before the end frame (a partial write).
    Truncated,
    /// The end frame's batch count disagrees with the frames actually read.
    CountMismatch {
        /// Batch count declared by the end frame.
        declared: u64,
        /// Frames actually decoded.
        decoded: u64,
    },
    /// A frame carries an unknown kind byte.
    UnknownFrame {
        /// The offending kind byte.
        kind: u8,
    },
    /// A payload longer than the format can represent (4 GiB) was submitted
    /// for encoding.
    PayloadTooLarge {
        /// Length of the offending payload.
        len: usize,
    },
    /// A batch whose encoded frame body exceeds the format's 4 GiB frame
    /// limit was submitted for encoding.
    FrameTooLarge {
        /// Encoded body length of the offending batch.
        len: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(error) => write!(f, "trace i/o error: {error}"),
            FormatError::BadMagic { found } => {
                write!(f, "not a netshed trace (magic {found:02x?}, expected \"NSTR\")")
            }
            FormatError::UnsupportedVersion { found } => write!(
                f,
                "trace format version {found} is newer than the supported {TRACE_FORMAT_VERSION}"
            ),
            FormatError::ChecksumMismatch { location } => {
                write!(f, "trace checksum mismatch at {location}: file is corrupt")
            }
            FormatError::Truncated => write!(f, "trace ends before its end frame (partial write)"),
            FormatError::CountMismatch { declared, decoded } => {
                write!(f, "trace end frame declares {declared} batches but {decoded} were decoded")
            }
            FormatError::UnknownFrame { kind } => write!(f, "unknown trace frame kind {kind}"),
            FormatError::PayloadTooLarge { len } => {
                write!(f, "packet payload of {len} bytes exceeds the format limit")
            }
            FormatError::FrameTooLarge { len } => {
                write!(f, "batch frame of {len} bytes exceeds the format's 4 GiB limit")
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(error: std::io::Error) -> Self {
        FormatError::Io(error)
    }
}

/// Byte sink that feeds the frame checksum while buffering the frame body.
struct FrameBuf {
    bytes: Vec<u8>,
}

impl FrameBuf {
    fn new() -> Self {
        Self { bytes: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn raw(&mut self, v: &[u8]) {
        self.bytes.extend_from_slice(v);
    }

    fn checksum(&self) -> u64 {
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&self.bytes);
        fnv.finish()
    }
}

/// Streams batches into the `.nstr` container.
///
/// The writer emits the header on construction and one frame per
/// [`TraceWriter::write_batch`]; [`TraceWriter::finish`] appends the end
/// frame (with the total batch count) and flushes. A trace without an end
/// frame is rejected by the reader as [`FormatError::Truncated`], so a
/// crashed recording can never masquerade as a short one.
pub struct TraceWriter<W: Write> {
    writer: W,
    batches: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the container header and returns the writer.
    pub fn new(mut writer: W, time_bin_us: u64) -> Result<Self, FormatError> {
        let mut header = FrameBuf::new();
        header.raw(&TRACE_MAGIC);
        header.u16(TRACE_FORMAT_VERSION);
        header.u16(0); // flags, reserved
        header.u64(time_bin_us);
        let checksum = header.checksum();
        header.u64(checksum);
        writer.write_all(&header.bytes)?;
        Ok(Self { writer, batches: 0 })
    }

    /// Appends one batch frame.
    pub fn write_batch(&mut self, batch: &Batch) -> Result<(), FormatError> {
        let mut body = FrameBuf::new();
        for packet in batch.packets.iter() {
            body.u64(packet.ts);
            body.u32(packet.tuple.src_ip);
            body.u32(packet.tuple.dst_ip);
            body.u16(packet.tuple.src_port);
            body.u16(packet.tuple.dst_port);
            body.u8(packet.tuple.proto);
            body.u8(packet.tcp_flags);
            body.u32(packet.ip_len);
            match &packet.payload {
                None => body.u32(NO_PAYLOAD),
                Some(payload) => {
                    let len = u32::try_from(payload.len())
                        .ok()
                        .filter(|&l| l != NO_PAYLOAD)
                        .ok_or(FormatError::PayloadTooLarge { len: payload.len() })?;
                    body.u32(len);
                    body.raw(payload);
                }
            }
        }
        // The per-payload guard above bounds each packet, not the frame: a
        // body past u32 would otherwise wrap `body_len` and write a file
        // that can never decode.
        let body_len = u32::try_from(body.bytes.len())
            .map_err(|_| FormatError::FrameTooLarge { len: body.bytes.len() })?;
        let packet_count = u32::try_from(batch.len())
            .map_err(|_| FormatError::FrameTooLarge { len: body.bytes.len() })?;
        let mut frame = FrameBuf::new();
        frame.u8(FRAME_BATCH);
        frame.u64(batch.bin_index);
        frame.u64(batch.start_ts);
        frame.u64(batch.duration_us);
        frame.u32(packet_count);
        frame.u32(body_len);
        frame.raw(&body.bytes);
        let checksum = frame.checksum();
        frame.u64(checksum);
        self.writer.write_all(&frame.bytes)?;
        self.batches += 1;
        Ok(())
    }

    /// Appends every batch of a slice, in order.
    pub fn write_all(&mut self, batches: &[Batch]) -> Result<(), FormatError> {
        for batch in batches {
            self.write_batch(batch)?;
        }
        Ok(())
    }

    /// Writes the end frame, flushes, and returns the destination.
    pub fn finish(mut self) -> Result<W, FormatError> {
        let mut frame = FrameBuf::new();
        frame.u8(FRAME_END);
        frame.u64(self.batches);
        let checksum = frame.checksum();
        frame.u64(checksum);
        self.writer.write_all(&frame.bytes)?;
        self.writer.flush()?;
        Ok(self.writer)
    }

    /// Number of batches written so far.
    pub fn batches_written(&self) -> u64 {
        self.batches
    }
}

/// Encodes a batch slice into an in-memory `.nstr` container.
pub fn encode_batches(batches: &[Batch], time_bin_us: u64) -> Result<Vec<u8>, FormatError> {
    let mut writer = TraceWriter::new(Vec::new(), time_bin_us)?;
    writer.write_all(batches)?;
    writer.finish()
}

/// Decodes every batch of an in-memory `.nstr` container.
pub fn decode_batches(bytes: &[u8]) -> Result<Vec<Batch>, FormatError> {
    TraceReader::new(bytes)?.read_all()
}

/// Decodes `.nstr` frames from any [`Read`], verifying every checksum.
pub struct TraceReader<R: Read> {
    reader: R,
    time_bin_us: u64,
    decoded: u64,
    /// Set once the end frame was seen (further reads return `None`).
    finished: bool,
    /// First decode error, latched for the `PacketSource` adapter.
    error: Option<FormatError>,
    frame: Vec<u8>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the container header.
    pub fn new(mut reader: R) -> Result<Self, FormatError> {
        let mut fixed = [0u8; 16];
        read_exact_or_truncated(&mut reader, &mut fixed)?;
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&fixed[..4]);
        if magic != TRACE_MAGIC {
            return Err(FormatError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([fixed[4], fixed[5]]);
        if version > TRACE_FORMAT_VERSION {
            return Err(FormatError::UnsupportedVersion { found: version });
        }
        let time_bin_us = le_u64(&fixed, 8);
        let mut declared = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut declared)?;
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&fixed);
        if fnv.finish() != u64::from_le_bytes(declared) {
            return Err(FormatError::ChecksumMismatch { location: "header".into() });
        }
        Ok(Self {
            reader,
            time_bin_us,
            decoded: 0,
            finished: false,
            error: None,
            frame: Vec::new(),
        })
    }

    /// The time-bin duration recorded in the header.
    pub fn time_bin_us(&self) -> u64 {
        self.time_bin_us
    }

    /// The first decode error hit by the [`PacketSource`] adapter, if any.
    ///
    /// `next_batch` has no error channel, so a corrupt tail latches here and
    /// the stream ends early; callers that must distinguish "clean end" from
    /// "corrupt end" check this after the run.
    pub fn error(&self) -> Option<&FormatError> {
        self.error.as_ref()
    }

    /// Decodes the next batch, `Ok(None)` at the (validated) end frame.
    pub fn read_batch(&mut self) -> Result<Option<Batch>, FormatError> {
        if self.finished {
            return Ok(None);
        }
        let mut kind = [0u8; 1];
        read_exact_or_truncated(&mut self.reader, &mut kind)?;
        match kind[0] {
            FRAME_END => {
                let mut rest = [0u8; 16];
                read_exact_or_truncated(&mut self.reader, &mut rest)?;
                let declared_count = le_u64(&rest, 0);
                let declared_sum = le_u64(&rest, 8);
                let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
                fnv.write(&kind);
                fnv.write(&rest[..8]);
                if fnv.finish() != declared_sum {
                    return Err(FormatError::ChecksumMismatch { location: "end frame".into() });
                }
                if declared_count != self.decoded {
                    return Err(FormatError::CountMismatch {
                        declared: declared_count,
                        decoded: self.decoded,
                    });
                }
                self.finished = true;
                Ok(None)
            }
            FRAME_BATCH => {
                let mut head = [0u8; 32];
                read_exact_or_truncated(&mut self.reader, &mut head)?;
                let bin_index = le_u64(&head, 0);
                let start_ts = le_u64(&head, 8);
                let duration_us = le_u64(&head, 16);
                let packet_count = le_u32(&head, 24);
                let body_len = le_u32(&head, 28);
                // `body_len` comes from a not-yet-verified header, so grow
                // the buffer only as bytes actually arrive: a corrupt
                // length on a short file fails as `Truncated` instead of
                // allocating gigabytes up front.
                self.frame.clear();
                let read = (&mut self.reader)
                    .take(u64::from(body_len))
                    .read_to_end(&mut self.frame)
                    .map_err(FormatError::Io)?;
                if read != body_len as usize {
                    return Err(FormatError::Truncated);
                }
                let mut declared = [0u8; 8];
                read_exact_or_truncated(&mut self.reader, &mut declared)?;
                let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
                fnv.write(&kind);
                fnv.write(&head);
                fnv.write(&self.frame);
                if fnv.finish() != u64::from_le_bytes(declared) {
                    return Err(FormatError::ChecksumMismatch {
                        location: format!("frame {}", self.decoded),
                    });
                }
                let packets = decode_packets(&self.frame, packet_count, self.decoded)?;
                self.decoded += 1;
                Ok(Some(Batch::new(bin_index, start_ts, duration_us, packets)))
            }
            kind => Err(FormatError::UnknownFrame { kind }),
        }
    }

    /// Decodes the whole trace into a batch vector.
    pub fn read_all(mut self) -> Result<Vec<Batch>, FormatError> {
        let mut batches = Vec::new();
        while let Some(batch) = self.read_batch()? {
            batches.push(batch);
        }
        Ok(batches)
    }

    /// Decodes the whole trace into a rewindable [`BatchReplay`].
    pub fn into_replay(self) -> Result<BatchReplay, FormatError> {
        Ok(BatchReplay::new(self.read_all()?))
    }
}

/// A reader is a streaming [`PacketSource`]: decode errors end the stream
/// and latch in [`TraceReader::error`].
impl<R: Read> PacketSource for TraceReader<R> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.error.is_some() {
            return None;
        }
        match self.read_batch() {
            Ok(batch) => batch,
            Err(error) => {
                self.error = Some(error);
                None
            }
        }
    }
}

/// Decodes a little-endian `u64` at `bytes[at..at + 8]`.
///
/// Every caller indexes a fixed-width region of a buffer it just filled, so
/// the width holds by construction; `copy_from_slice` keeps the decode
/// infallible without the `try_into().unwrap()` dance.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes a little-endian `u32` at `bytes[at..at + 4]`.
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(buf)
}

/// Decodes a little-endian `u16` at `bytes[at..at + 2]`.
fn le_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn read_exact_or_truncated<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), FormatError> {
    reader.read_exact(buf).map_err(|error| {
        if error.kind() == std::io::ErrorKind::UnexpectedEof {
            FormatError::Truncated
        } else {
            FormatError::Io(error)
        }
    })
}

fn decode_packets(body: &[u8], count: u32, frame: u64) -> Result<Vec<Packet>, FormatError> {
    let corrupt = || FormatError::ChecksumMismatch { location: format!("frame {frame} body") };
    let mut packets = Vec::with_capacity(count as usize);
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8], FormatError> {
        let slice = body.get(at..at + n).ok_or_else(corrupt)?;
        at += n;
        Ok(slice)
    };
    for _ in 0..count {
        let ts = le_u64(take(8)?, 0);
        let src_ip = le_u32(take(4)?, 0);
        let dst_ip = le_u32(take(4)?, 0);
        let src_port = le_u16(take(2)?, 0);
        let dst_port = le_u16(take(2)?, 0);
        let proto = take(1)?[0];
        let tcp_flags = take(1)?[0];
        let ip_len = le_u32(take(4)?, 0);
        let payload_len = le_u32(take(4)?, 0);
        let payload = if payload_len == NO_PAYLOAD {
            None
        } else {
            Some(Bytes::copy_from_slice(take(payload_len as usize)?))
        };
        packets.push(Packet {
            ts,
            tuple: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto),
            ip_len,
            tcp_flags,
            payload,
        });
    }
    if at != body.len() {
        return Err(corrupt());
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::source::PacketSourceExt;

    fn sample_batches(payloads: bool) -> Vec<Batch> {
        TraceGenerator::new(
            TraceConfig::default()
                .with_seed(17)
                .with_mean_packets_per_batch(40.0)
                .with_payloads(payloads),
        )
        .batches(5)
    }

    #[test]
    fn roundtrip_is_bit_identical_with_and_without_payloads() {
        for payloads in [false, true] {
            let batches = sample_batches(payloads);
            let bytes = encode_batches(&batches, 100_000).expect("encode");
            let decoded = decode_batches(&bytes).expect("decode");
            assert_eq!(batches, decoded, "payloads={payloads}");
        }
    }

    #[test]
    fn empty_payload_and_no_payload_stay_distinct() {
        let tuple = FiveTuple::new(1, 2, 3, 4, 6);
        let batch = Batch::new(
            0,
            0,
            100_000,
            vec![
                Packet::header_only(1, tuple, 40, 0),
                Packet::with_payload(2, tuple, 40, 0, Bytes::new()),
            ],
        );
        let decoded =
            decode_batches(&encode_batches(&[batch], 100_000).expect("encode")).expect("decode");
        assert_eq!(decoded[0].packets[0].payload, None);
        assert_eq!(decoded[0].packets[1].payload, Some(Bytes::new()));
    }

    #[test]
    fn empty_batches_survive_the_container() {
        let batches = vec![Batch::empty(3, 300_000, 100_000), Batch::empty(4, 400_000, 100_000)];
        let decoded =
            decode_batches(&encode_batches(&batches, 100_000).expect("encode")).expect("decode");
        assert_eq!(batches, decoded);
    }

    #[test]
    fn reader_reports_the_header_time_bin() {
        let bytes = encode_batches(&[], 250_000).expect("encode");
        let reader = TraceReader::new(&bytes[..]).expect("header");
        assert_eq!(reader.time_bin_us(), 250_000);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_batches(&sample_batches(false), 100_000).expect("encode");
        bytes[0] = b'X';
        assert!(matches!(
            TraceReader::new(&bytes[..]).err().expect("must fail"),
            FormatError::BadMagic { .. }
        ));
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut bytes = encode_batches(&[], 100_000).expect("encode");
        bytes[4..6].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            TraceReader::new(&bytes[..]).err().expect("must fail"),
            FormatError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn header_corruption_fails_the_header_checksum() {
        let mut bytes = encode_batches(&[], 100_000).expect("encode");
        bytes[9] ^= 0xff; // inside time_bin_us
        assert!(matches!(
            TraceReader::new(&bytes[..]).err().expect("must fail"),
            FormatError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn flipping_any_frame_byte_is_detected() {
        let batches = sample_batches(false);
        let clean = encode_batches(&batches, 100_000).expect("encode");
        // Flip a byte inside the first frame body (past the 24-byte header).
        let mut corrupt = clean.clone();
        corrupt[24 + 40] ^= 0x01;
        let error = decode_batches(&corrupt).expect_err("corruption must be detected");
        assert!(
            matches!(error, FormatError::ChecksumMismatch { .. }),
            "got {error:?} instead of a checksum mismatch"
        );
    }

    #[test]
    fn truncated_traces_are_detected() {
        let bytes = encode_batches(&sample_batches(false), 100_000).expect("encode");
        // Drop the end frame (and a bit more).
        let cut = &bytes[..bytes.len() - 20];
        assert!(matches!(
            decode_batches(cut).expect_err("must fail"),
            FormatError::Truncated | FormatError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn reader_is_a_packet_source_and_latches_errors() {
        let batches = sample_batches(true);
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        let mut source = TraceReader::new(&bytes[..]).expect("header").take_batches(3);
        let mut produced = 0;
        while source.next_batch().is_some() {
            produced += 1;
        }
        assert_eq!(produced, 3);

        // A truncated stream ends early and reports why. Cut past the end
        // frame (17 bytes) and into the last batch frame's checksum.
        let cut = &bytes[..bytes.len() - 25];
        let mut reader = TraceReader::new(cut).expect("header survives");
        let mut decoded = 0;
        while PacketSource::next_batch(&mut reader).is_some() {
            decoded += 1;
        }
        assert!(decoded < batches.len());
        assert!(reader.error().is_some(), "the decode error must be latched");
    }

    #[test]
    fn into_replay_rewinds_the_recording() {
        let batches = sample_batches(false);
        let bytes = encode_batches(&batches, 100_000).expect("encode");
        let mut replay =
            TraceReader::new(&bytes[..]).expect("header").into_replay().expect("decode");
        assert_eq!(replay.len(), batches.len());
        let first: Vec<u64> =
            std::iter::from_fn(|| replay.next_batch()).map(|b| b.bin_index).collect();
        replay.reset();
        let second: Vec<u64> =
            std::iter::from_fn(|| replay.next_batch()).map(|b| b.bin_index).collect();
        assert_eq!(first, second);
    }
}
