//! Synthetic traffic anomalies.
//!
//! Section 3.4.3 of the paper evaluates the prediction and load shedding
//! schemes under injected anomalies: volume-based DDoS attacks, SYN floods
//! with spoofed sources, worm outbreaks and attacks crafted against the
//! monitoring system itself (bursts that are hard to predict because they go
//! idle every other second). The same four shapes are reproduced here as
//! packet injectors that add packets to the bins they are active in.

use crate::packet::{FiveTuple, Packet, TCP_ACK, TCP_SYN};
use rand::rngs::StdRng;
use rand::Rng;

/// The kind of anomaly to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyKind {
    /// Volume-based distributed denial of service: an overwhelming number of
    /// small packets from spoofed sources towards a single target, with
    /// random source ports (drives up the number of distinct flows).
    DdosFlood {
        /// Target host of the attack.
        target: u32,
    },
    /// TCP SYN flood against one target host and port: 40-byte SYN packets
    /// from spoofed sources.
    SynFlood {
        /// Target host.
        target: u32,
        /// Target port.
        port: u16,
    },
    /// Worm outbreak: many sources scanning many destinations on a fixed
    /// destination port, small payload with a recognisable signature.
    WormOutbreak {
        /// Destination port the worm propagates on.
        port: u16,
    },
    /// Burst of MTU-sized packets on a handful of flows; stresses queries
    /// whose cost depends on the number of bytes (trace, pattern-search).
    ByteBurst,
    /// Port scan: a single source probing randomly drawn well-known ports
    /// (1–1024) across many hosts with bare 40-byte SYNs. Drives up the
    /// number of new flows per source (the scan signature the paper's
    /// feature set reacts to — it keys on flow churn, not port order).
    PortScan {
        /// Scanning host.
        source: u32,
    },
    /// Flash crowd: a surge of *legitimate-looking* clients opening normal
    /// HTTP-sized flows towards one server. Unlike a DDoS flood the packets
    /// are full-sized and carry realistic flag sequences, so the byte load
    /// rises with the flow count.
    FlashCrowd {
        /// The suddenly-popular server.
        target: u32,
        /// Server port the crowd connects to.
        port: u16,
    },
    /// Feature-mimicry payload pathology: HTTP-looking packets from a small
    /// client pool whose payloads are tiled with a Boyer–Moore–Horspool
    /// worst-case block (the pattern-search signature with its first byte
    /// swapped for one absent from the pattern). The traffic is
    /// indistinguishable from a flash crowd in every aggregate feature —
    /// packets, bytes, flows all stay calm — but every payload byte forces
    /// the string search to walk nearly the whole pattern backwards on a
    /// skip of one, so the *cost per byte* explodes while the predictor's
    /// inputs say nothing happened.
    PatternStress,
    /// Flow-churn attack on stateful queries: a constant number of
    /// constant-sized packets per bin, but the flow identities alternate by
    /// bin between a tiny reused tuple pool (hash lookups) and fresh
    /// spoofed tuples (a hash insert per packet), so the state-query cost
    /// oscillates by the insert/lookup cycle ratio. The payloads are tiled
    /// with the same near-miss block as [`PatternStress`](Self::PatternStress)
    /// — an attacker controls payload bytes for free — so part of the cost
    /// rides on content no header feature can express.
    FlowChurn,
    /// Aggregate-key skew against flow sampling: nearly all bytes ride on a
    /// handful of elephant flows, so per-flow keep/drop sampling delivers
    /// all-or-nothing traffic fractions and rate-extrapolated estimates
    /// swing wildly around the truth even at moderate sampling rates. The
    /// elephant frames carry the near-miss scan payload too, hiding part of
    /// the per-byte cost from the predictor's inputs.
    AggregateSkew,
}

/// One Boyer–Moore–Horspool worst-case block: the pattern-search query's
/// default HTTP signature (`GET / HTTP/1.1`) with its first byte replaced by
/// a byte that never occurs in the pattern. The pattern itself never matches
/// (the payload carries no `G` at all), so the scan always runs to
/// completion, and every alignment examines most of the pattern before
/// mismatching with a shift of one.
const STRESS_BLOCK: [u8; 14] = *b"ZET / HTTP/1.1";

/// Payload size for [`AnomalyKind::PatternStress`] packets: a plausible
/// HTTP-response size, tiled from whole stress blocks.
const STRESS_PAYLOAD_LEN: usize = STRESS_BLOCK.len() * 43;

static STRESS_PAYLOAD: [u8; STRESS_PAYLOAD_LEN] = tile_stress();

/// Payload carried by [`AnomalyKind::FlowChurn`] packets: the 120-byte
/// wire size minus the 40-byte header, tiled with the stress block so the
/// per-byte scan cost rides invisibly on top of the hash-table churn.
const CHURN_PAYLOAD_LEN: usize = 80;

static CHURN_PAYLOAD: [u8; CHURN_PAYLOAD_LEN] = tile_stress();

/// Payload carried by [`AnomalyKind::AggregateSkew`] packets: the 1400-byte
/// elephant frames minus the header, same near-miss content.
const SKEW_PAYLOAD_LEN: usize = 1360;

static SKEW_PAYLOAD: [u8; SKEW_PAYLOAD_LEN] = tile_stress();

/// Tiles `N` bytes from whole (possibly truncated) stress blocks.
const fn tile_stress<const N: usize>() -> [u8; N] {
    let mut payload = [0u8; N];
    let mut i = 0;
    while i < N {
        payload[i] = STRESS_BLOCK[i % STRESS_BLOCK.len()];
        i += 1;
    }
    payload
}

/// An anomaly active over a range of time bins.
///
/// `duty_cycle_bins` reproduces the paper's "goes idle every other second"
/// attack: the anomaly only injects packets during the first half of every
/// duty cycle. With `duty_cycle_bins == 0` the anomaly is always on while in
/// range.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Attack shape.
    pub kind: AnomalyKind,
    /// First affected bin (inclusive).
    pub start_bin: u64,
    /// Last affected bin (exclusive).
    pub end_bin: u64,
    /// Extra packets injected per active bin.
    pub packets_per_bin: usize,
    /// Length of the on/off duty cycle in bins (0 = always on).
    pub duty_cycle_bins: u64,
}

impl Anomaly {
    /// Creates an always-on anomaly over `[start_bin, end_bin)`.
    pub fn new(kind: AnomalyKind, start_bin: u64, end_bin: u64, packets_per_bin: usize) -> Self {
        Self { kind, start_bin, end_bin, packets_per_bin, duty_cycle_bins: 0 }
    }

    /// Sets an on/off duty cycle: the anomaly injects packets only during the
    /// first half of every `cycle_bins`-bin period.
    pub fn with_duty_cycle(mut self, cycle_bins: u64) -> Self {
        self.duty_cycle_bins = cycle_bins;
        self
    }

    /// Returns `true` if the anomaly injects packets into the given bin.
    pub fn is_active(&self, bin: u64) -> bool {
        if bin < self.start_bin || bin >= self.end_bin {
            return false;
        }
        if self.duty_cycle_bins == 0 {
            return true;
        }
        let phase = (bin - self.start_bin) % self.duty_cycle_bins;
        phase < self.duty_cycle_bins / 2
    }

    /// Appends this anomaly's packets for the given bin to `out`.
    pub fn inject(
        &self,
        bin: u64,
        start_ts: u64,
        duration_us: u64,
        rng: &mut StdRng,
        out: &mut Vec<Packet>,
    ) {
        if !self.is_active(bin) {
            return;
        }
        for _ in 0..self.packets_per_bin {
            let ts = start_ts + rng.gen_range(0..duration_us);
            let packet = match self.kind {
                AnomalyKind::DdosFlood { target } => {
                    let tuple = FiveTuple::new(
                        rng.gen::<u32>(),
                        target,
                        rng.gen_range(1..=65535u16),
                        rng.gen_range(1..=65535u16),
                        17,
                    );
                    Packet::header_only(ts, tuple, 60, 0)
                }
                AnomalyKind::SynFlood { target, port } => {
                    let tuple = FiveTuple::new(
                        rng.gen::<u32>(),
                        target,
                        rng.gen_range(1024..=65535u16),
                        port,
                        6,
                    );
                    Packet::header_only(ts, tuple, 40, TCP_SYN)
                }
                AnomalyKind::WormOutbreak { port } => {
                    let tuple = FiveTuple::new(
                        0x0a00_0000 | (rng.gen::<u32>() & 0xffff),
                        rng.gen::<u32>(),
                        rng.gen_range(1024..=65535u16),
                        port,
                        6,
                    );
                    let mut p = Packet::header_only(ts, tuple, 404, TCP_SYN);
                    p.payload = Some(bytes::Bytes::from_static(
                        b"\x90\x90\x90\x90WORM-PAYLOAD-SIGNATURE-0xDEADBEEF",
                    ));
                    p
                }
                AnomalyKind::ByteBurst => {
                    // A handful of heavy-hitter flows sending MTU packets.
                    let flow = rng.gen_range(0..8u32);
                    let tuple = FiveTuple::new(
                        0x0a00_00f0 + flow,
                        0xc0a8_0001,
                        40_000 + flow as u16,
                        80,
                        6,
                    );
                    Packet::header_only(ts, tuple, 1500, 0)
                }
                AnomalyKind::PortScan { source } => {
                    // One scanner sweeping ports on a /16 worth of targets.
                    let target = 0x0a00_0000 | (rng.gen::<u32>() & 0xffff);
                    let tuple = FiveTuple::new(
                        source,
                        target,
                        rng.gen_range(32768..=65535u16),
                        rng.gen_range(1..=1024u16),
                        6,
                    );
                    Packet::header_only(ts, tuple, 40, TCP_SYN)
                }
                AnomalyKind::FlashCrowd { target, port } => {
                    // Distinct but *plausible* clients (bounded pool, not
                    // spoofed-random) sending data-sized packets to one
                    // server port.
                    let client = 0x8000_0000 | (rng.gen::<u32>() & 0x000f_ffff);
                    let tuple =
                        FiveTuple::new(client, target, rng.gen_range(1024..=65535u16), port, 6);
                    let flags = if rng.gen::<f64>() < 0.1 { TCP_SYN } else { TCP_ACK };
                    let size = if flags == TCP_SYN { 40 } else { rng.gen_range(200..1400u32) };
                    Packet::header_only(ts, tuple, size, flags)
                }
                AnomalyKind::PatternStress => {
                    // A small pool of plausible HTTP clients keeps the flow
                    // table and every aggregate feature calm; the payload
                    // bytes do the damage.
                    let client = 0x0a20_0000 | rng.gen_range(0..24u32);
                    let tuple =
                        FiveTuple::new(client, 0x0a00_0050, rng.gen_range(1024..=65535u16), 80, 6);
                    let mut p =
                        Packet::header_only(ts, tuple, STRESS_PAYLOAD_LEN as u32 + 40, TCP_ACK);
                    p.payload = Some(bytes::Bytes::from_static(&STRESS_PAYLOAD));
                    p
                }
                AnomalyKind::FlowChurn => {
                    // Even bins reuse a dozen tuples, odd bins draw fresh
                    // spoofed ones; counts and sizes are identical either
                    // way, so only the state-query cost oscillates.
                    let tuple = if bin.is_multiple_of(2) {
                        let slot = rng.gen_range(0..12u32);
                        FiveTuple::new(0x0a30_0000 + slot, 0xc0a8_0002, 9000 + slot as u16, 443, 6)
                    } else {
                        FiveTuple::new(
                            rng.gen::<u32>(),
                            0xc0a8_0002,
                            rng.gen_range(1024..=65535u16),
                            443,
                            6,
                        )
                    };
                    let mut p = Packet::header_only(ts, tuple, 120, TCP_ACK);
                    p.payload = Some(bytes::Bytes::from_static(&CHURN_PAYLOAD));
                    p
                }
                AnomalyKind::AggregateSkew => {
                    // ~92% of packets (and almost all bytes) land on four
                    // elephant flows; the rest are light background cover.
                    let tuple = if rng.gen::<f64>() < 0.92 {
                        let heavy = rng.gen_range(0..4u32);
                        FiveTuple::new(
                            0x0a40_0010 + heavy,
                            0xc0a8_0003,
                            5000 + heavy as u16,
                            8080,
                            6,
                        )
                    } else {
                        FiveTuple::new(
                            rng.gen::<u32>(),
                            0xc0a8_0003,
                            rng.gen_range(1024..=65535u16),
                            8080,
                            6,
                        )
                    };
                    let mut p = Packet::header_only(ts, tuple, 1400, TCP_ACK);
                    p.payload = Some(bytes::Bytes::from_static(&SKEW_PAYLOAD));
                    p
                }
            };
            out.push(packet);
        }
    }
}

/// Convenience collection of anomalies applied to a batch stream.
#[derive(Debug, Clone, Default)]
pub struct AnomalyInjector {
    anomalies: Vec<Anomaly>,
}

impl AnomalyInjector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an anomaly to the set.
    pub fn add(&mut self, anomaly: Anomaly) -> &mut Self {
        self.anomalies.push(anomaly);
        self
    }

    /// Returns the configured anomalies.
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Returns `true` if any anomaly is active in the given bin.
    pub fn any_active(&self, bin: u64) -> bool {
        self.anomalies.iter().any(|a| a.is_active(bin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn anomaly_respects_bin_range() {
        let a = Anomaly::new(AnomalyKind::ByteBurst, 10, 20, 5);
        assert!(!a.is_active(9));
        assert!(a.is_active(10));
        assert!(a.is_active(19));
        assert!(!a.is_active(20));
    }

    #[test]
    fn duty_cycle_alternates() {
        let a = Anomaly::new(AnomalyKind::ByteBurst, 0, 100, 5).with_duty_cycle(20);
        // First half of each 20-bin cycle is on, second half off.
        assert!(a.is_active(0));
        assert!(a.is_active(9));
        assert!(!a.is_active(10));
        assert!(!a.is_active(19));
        assert!(a.is_active(20));
    }

    #[test]
    fn syn_flood_injects_syn_packets_to_target() {
        let a = Anomaly::new(AnomalyKind::SynFlood { target: 0x01020304, port: 80 }, 0, 1, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|p| p.is_syn() && p.tuple.dst_ip == 0x01020304 && p.ip_len == 40));
    }

    #[test]
    fn ddos_flood_produces_many_distinct_sources() {
        let a = Anomaly::new(AnomalyKind::DdosFlood { target: 7 }, 0, 1, 200);
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        let distinct: std::collections::HashSet<u32> = out.iter().map(|p| p.tuple.src_ip).collect();
        assert!(distinct.len() > 150, "spoofed sources should be mostly unique");
    }

    #[test]
    fn port_scan_sweeps_low_ports_from_one_source() {
        let a = Anomaly::new(AnomalyKind::PortScan { source: 0xdead_beef }, 0, 1, 100);
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|p| p.tuple.src_ip == 0xdead_beef
            && p.tuple.dst_port <= 1024
            && p.is_syn()
            && p.ip_len == 40));
        let targets: std::collections::HashSet<u32> = out.iter().map(|p| p.tuple.dst_ip).collect();
        assert!(targets.len() > 50, "a scan probes many hosts");
    }

    #[test]
    fn flash_crowd_sends_data_sized_packets_to_one_server() {
        let a = Anomaly::new(AnomalyKind::FlashCrowd { target: 0x0a00_0042, port: 80 }, 0, 1, 200);
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert_eq!(out.len(), 200);
        assert!(out.iter().all(|p| p.tuple.dst_ip == 0x0a00_0042 && p.tuple.dst_port == 80));
        let bytes: u64 = out.iter().map(|p| u64::from(p.ip_len)).sum();
        assert!(
            bytes > 200 * 100,
            "a flash crowd carries real byte load, unlike a SYN flood ({bytes} bytes)"
        );
    }

    #[test]
    fn pattern_stress_payloads_never_match_but_never_skip_far() {
        let a = Anomaly::new(AnomalyKind::PatternStress, 0, 1, 80);
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert_eq!(out.len(), 80);
        let pattern = b"GET / HTTP/1.1";
        for p in &out {
            let payload = p.payload.as_ref().expect("stress packets carry payloads");
            assert_eq!(payload.len(), STRESS_PAYLOAD_LEN);
            assert_eq!(u64::from(p.ip_len), payload.len() as u64 + 40);
            // The signature must never occur: a match would let the scan
            // terminate early and the attack would defeat itself.
            assert!(
                !payload.windows(pattern.len()).any(|w| w == pattern),
                "payload must not contain the search pattern"
            );
            // Every payload byte *is* a pattern byte though, so the skip
            // table never grants a full-pattern shift.
            assert!(payload.iter().all(|b| pattern.contains(b) || *b == b'Z'));
        }
        // The client pool is tiny: the flow-table features stay calm.
        let sources: std::collections::HashSet<u32> = out.iter().map(|p| p.tuple.src_ip).collect();
        assert!(sources.len() <= 24, "mimicry traffic must not look like a flood");
    }

    #[test]
    fn flow_churn_alternates_identity_not_volume() {
        let a = Anomaly::new(AnomalyKind::FlowChurn, 0, 2, 150);
        let mut rng = StdRng::seed_from_u64(7);
        let (mut even, mut odd) = (Vec::new(), Vec::new());
        a.inject(0, 0, 100_000, &mut rng, &mut even);
        a.inject(1, 100_000, 100_000, &mut rng, &mut odd);
        assert_eq!(even.len(), odd.len(), "packet counts are identical either way");
        assert!(even.iter().chain(&odd).all(|p| p.ip_len == 120), "sizes are identical too");
        assert!(
            even.iter().chain(&odd).all(|p| p
                .payload
                .as_ref()
                .is_some_and(|payload| payload.len() == CHURN_PAYLOAD_LEN)),
            "churn packets carry the near-miss scan payload"
        );
        let reused: std::collections::HashSet<_> = even.iter().map(|p| p.tuple).collect();
        let fresh: std::collections::HashSet<_> = odd.iter().map(|p| p.tuple).collect();
        assert!(reused.len() <= 12, "even bins reuse a tiny tuple pool");
        assert!(fresh.len() > 140, "odd bins churn fresh flows");
    }

    #[test]
    fn aggregate_skew_concentrates_bytes_on_elephants() {
        let a = Anomaly::new(AnomalyKind::AggregateSkew, 0, 1, 200);
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert_eq!(out.len(), 200);
        let mut per_flow: std::collections::HashMap<FiveTuple, usize> =
            std::collections::HashMap::new();
        for p in &out {
            *per_flow.entry(p.tuple).or_default() += 1;
        }
        let mut counts: Vec<usize> = per_flow.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = counts.iter().take(4).sum();
        assert!(top4 > 160, "the top four flows must dominate ({top4}/200 packets)");
        assert!(
            out.iter().all(|p| p
                .payload
                .as_ref()
                .is_some_and(|payload| payload.len() == SKEW_PAYLOAD_LEN)),
            "elephant frames carry the near-miss scan payload"
        );
    }

    #[test]
    fn inactive_bin_injects_nothing() {
        let a = Anomaly::new(AnomalyKind::ByteBurst, 5, 6, 50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        a.inject(0, 0, 100_000, &mut rng, &mut out);
        assert!(out.is_empty());
    }
}
