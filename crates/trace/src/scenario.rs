//! Declarative workload scenarios.
//!
//! The paper's evaluation lives on workload diversity: steady traffic,
//! volume DDoS attacks, scans, flash crowds and links going quiet are what
//! stress the predictor and the shedding policies (Sections 2.3 and 5). A
//! [`Scenario`] describes such a workload *declaratively* — one or more
//! links, each a sequence of named phases with a duration, a traffic profile
//! and anomaly injections — and compiles to an ordinary finite
//! [`PacketSource`], so the same description drives examples, benchmarks and
//! the golden-replay conformance corpus. Scenarios are validated before they
//! compile: malformed descriptions (zero-duration phases, overlapping
//! anomaly windows, unknown profile names) come back as typed
//! [`ScenarioError`]s rather than panics or silently-wrong traffic.
//!
//! ```
//! use netshed_trace::scenario::{AnomalyEvent, Phase, Scenario};
//! use netshed_trace::{PacketSource, TraceProfile};
//!
//! let scenario = Scenario::new("ddos-demo")
//!     .seed(7)
//!     .phase(Phase::new("calm", 10).profile(TraceProfile::CescaI).scale(0.1))
//!     .phase(
//!         Phase::new("attack", 10)
//!             .profile(TraceProfile::CescaI)
//!             .scale(0.1)
//!             .anomaly(AnomalyEvent::ddos(0x0a00_0001).over(2, 6).intensity(300)),
//!     );
//! let mut source = scenario.compile().expect("valid scenario");
//! assert_eq!(source.remaining_hint(), Some(20));
//! let first = source.next_batch().expect("finite but non-empty");
//! assert_eq!(first.bin_index, 0);
//! ```
//!
//! Multi-link scenarios ([`Scenario::link`]) compile each link to its own
//! phased stream and merge them through [`Interleave`], so a scenario can
//! model several monitored links — including links of different lengths,
//! with the tail semantics documented on [`Interleave`].

use crate::anomaly::{Anomaly, AnomalyKind};
use crate::batch::Batch;
use crate::generator::{TraceConfig, TraceGenerator};
use crate::profiles::TraceProfile;
use crate::source::{Interleave, PacketSource};
use netshed_sketch::mix64;
use std::collections::VecDeque;

/// A malformed scenario description, named precisely enough to fix it.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario has no links (and therefore no phases).
    NoLinks {
        /// Scenario name.
        scenario: String,
    },
    /// A link has no phases.
    EmptyLink {
        /// Link name.
        link: String,
    },
    /// A phase lasts zero bins.
    ZeroDurationPhase {
        /// Link name.
        link: String,
        /// Phase name.
        phase: String,
    },
    /// A phase references a traffic profile name that does not exist.
    UnknownProfile {
        /// Phase name.
        phase: String,
        /// The unresolved profile name.
        name: String,
    },
    /// A phase's traffic scale is not a positive finite number.
    InvalidScale {
        /// Phase name.
        phase: String,
        /// The offending scale.
        scale: f64,
    },
    /// An anomaly window is empty (zero bins).
    EmptyAnomalyWindow {
        /// Phase name.
        phase: String,
    },
    /// An anomaly window reaches past the end of its phase.
    AnomalyOutOfPhase {
        /// Phase name.
        phase: String,
        /// First bin of the window (phase-relative).
        start_bin: u64,
        /// One past the last bin of the window (phase-relative).
        end_bin: u64,
        /// Phase duration in bins.
        duration: u64,
    },
    /// Two anomaly windows of the same phase overlap. Concurrent anomalies
    /// are modelled with separate links, which keeps each injection stream
    /// independently seeded and reproducible.
    OverlappingAnomalies {
        /// Phase name.
        phase: String,
        /// `[start, end)` of the earlier window.
        first: (u64, u64),
        /// `[start, end)` of the later window.
        second: (u64, u64),
    },
    /// A packet-injecting anomaly sits on a silent phase (nothing to inject
    /// into — give the phase a profile, or move the anomaly to another link).
    AnomalyOnSilentPhase {
        /// Phase name.
        phase: String,
    },
    /// A packet-injecting anomaly would inject zero packets per bin.
    ZeroIntensity {
        /// Phase name.
        phase: String,
    },
    /// A link's total duration exceeds the supported maximum — the
    /// compiled source would never terminate on simulation timescales (or
    /// overflow the batch accounting).
    LinkTooLong {
        /// Link name.
        link: String,
        /// Total bins over the link's phases (saturating).
        bins: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoLinks { scenario } => {
                write!(f, "scenario {scenario:?} has no links")
            }
            ScenarioError::EmptyLink { link } => write!(f, "link {link:?} has no phases"),
            ScenarioError::ZeroDurationPhase { link, phase } => {
                write!(f, "phase {phase:?} of link {link:?} lasts zero bins")
            }
            ScenarioError::UnknownProfile { phase, name } => {
                write!(f, "phase {phase:?} references unknown trace profile {name:?}")
            }
            ScenarioError::InvalidScale { phase, scale } => {
                write!(f, "phase {phase:?} has invalid traffic scale {scale}")
            }
            ScenarioError::EmptyAnomalyWindow { phase } => {
                write!(f, "phase {phase:?} has an anomaly window of zero bins")
            }
            ScenarioError::AnomalyOutOfPhase { phase, start_bin, end_bin, duration } => write!(
                f,
                "anomaly window [{start_bin}, {end_bin}) reaches past the end of phase \
                 {phase:?} ({duration} bins)"
            ),
            ScenarioError::OverlappingAnomalies { phase, first, second } => write!(
                f,
                "anomaly windows [{}, {}) and [{}, {}) of phase {phase:?} overlap; model \
                 concurrent anomalies as separate links",
                first.0, first.1, second.0, second.1
            ),
            ScenarioError::AnomalyOnSilentPhase { phase } => {
                write!(f, "silent phase {phase:?} cannot carry a packet-injecting anomaly")
            }
            ScenarioError::ZeroIntensity { phase } => {
                write!(f, "anomaly in phase {phase:?} would inject zero packets per bin")
            }
            ScenarioError::LinkTooLong { link, bins } => {
                write!(
                    f,
                    "link {link:?} lasts {bins} bins, more than the supported {MAX_LINK_BINS}"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The anomaly shapes a scenario can inject, one per threat family the
/// paper's robustness evaluation exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioAnomaly {
    /// Volume DDoS flood from spoofed sources towards one target.
    Ddos {
        /// Target host of the attack.
        target: u32,
    },
    /// Port scan: one source probing low ports across many hosts.
    PortScan {
        /// Scanning host.
        source: u32,
    },
    /// Flash crowd: legitimate-looking clients rushing one server.
    FlashCrowd {
        /// The suddenly-popular server.
        target: u32,
        /// Server port the crowd connects to.
        port: u16,
    },
    /// Link flap: the link goes dark — base traffic is generated but lost,
    /// so the affected bins arrive empty (and the generator state, including
    /// any other link's stream, is unaffected).
    LinkFlap,
    /// Adversarial payload pathology: HTTP-looking traffic tiled with a
    /// Boyer–Moore worst-case block, so string-search cost per byte explodes
    /// while every aggregate feature stays calm
    /// ([`AnomalyKind::PatternStress`]).
    PatternStress,
    /// Adversarial flow churn: constant packet volume whose flow identities
    /// alternate between a reused pool and fresh spoofed tuples, thrashing
    /// state-query hash tables ([`AnomalyKind::FlowChurn`]).
    FlowChurn,
    /// Adversarial aggregate-key skew: elephant flows that turn per-flow
    /// sampling into an all-or-nothing lottery
    /// ([`AnomalyKind::AggregateSkew`]).
    AggregateSkew,
}

/// One anomaly, placed on a window of phase-relative bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyEvent {
    kind: ScenarioAnomaly,
    start_bin: u64,
    /// `None` = until the end of the phase (resolved at validation time).
    duration_bins: Option<u64>,
    packets_per_bin: usize,
    duty_cycle_bins: u64,
}

impl AnomalyEvent {
    /// An event of the given kind covering its whole phase (narrow it with
    /// [`AnomalyEvent::over`]).
    pub fn new(kind: ScenarioAnomaly) -> Self {
        Self { kind, start_bin: 0, duration_bins: None, packets_per_bin: 200, duty_cycle_bins: 0 }
    }

    /// A volume DDoS flood against `target`.
    pub fn ddos(target: u32) -> Self {
        Self::new(ScenarioAnomaly::Ddos { target })
    }

    /// A port scan from `source`.
    pub fn port_scan(source: u32) -> Self {
        Self::new(ScenarioAnomaly::PortScan { source })
    }

    /// A flash crowd towards `target:port`.
    pub fn flash_crowd(target: u32, port: u16) -> Self {
        Self::new(ScenarioAnomaly::FlashCrowd { target, port })
    }

    /// A link flap (the link's traffic is lost for the window).
    pub fn link_flap() -> Self {
        Self::new(ScenarioAnomaly::LinkFlap)
    }

    /// A Boyer–Moore worst-case payload attack (feature mimicry).
    pub fn pattern_stress() -> Self {
        Self::new(ScenarioAnomaly::PatternStress)
    }

    /// A flow-churn attack on stateful queries.
    pub fn flow_churn() -> Self {
        Self::new(ScenarioAnomaly::FlowChurn)
    }

    /// An aggregate-key skew attack on flow sampling.
    pub fn aggregate_skew() -> Self {
        Self::new(ScenarioAnomaly::AggregateSkew)
    }

    /// Places the event on `[start_bin, start_bin + duration_bins)`,
    /// phase-relative.
    pub fn over(mut self, start_bin: u64, duration_bins: u64) -> Self {
        self.start_bin = start_bin;
        self.duration_bins = Some(duration_bins);
        self
    }

    /// Extra packets injected per active bin (ignored by link flaps).
    pub fn intensity(mut self, packets_per_bin: usize) -> Self {
        self.packets_per_bin = packets_per_bin;
        self
    }

    /// On/off duty cycle in bins (the paper's "goes idle every other
    /// second" attack); 0 = always on while in the window.
    pub fn duty_cycle(mut self, cycle_bins: u64) -> Self {
        self.duty_cycle_bins = cycle_bins;
        self
    }

    /// The anomaly shape.
    pub fn kind(&self) -> ScenarioAnomaly {
        self.kind
    }

    /// Resolves the `[start, end)` window against the owning phase.
    fn window(&self, phase_duration: u64) -> (u64, u64) {
        let end = match self.duration_bins {
            Some(duration) => self.start_bin.saturating_add(duration),
            None => phase_duration,
        };
        (self.start_bin, end)
    }
}

/// What base traffic a phase carries. The phase-level
/// [`Phase::scale`] multiplier applies uniformly to every variant except
/// [`TrafficSpec::Silent`].
#[derive(Debug, Clone)]
pub enum TrafficSpec {
    /// A named stand-in for one of the paper's traces.
    Profile(TraceProfile),
    /// A profile referenced by its paper name, resolved at validation time
    /// (this is how machine-written configs say "CESCA-I" and get a typed
    /// error for a typo instead of a panic).
    Named(String),
    /// A fully explicit generator configuration (seed and time bin are
    /// overridden by the scenario; the mean is multiplied by the phase
    /// scale).
    Config(Box<TraceConfig>),
    /// No base traffic: the phase emits empty bins (a dark link).
    Silent,
}

/// A named phase: duration, base traffic, anomalies.
#[derive(Debug, Clone)]
pub struct Phase {
    name: String,
    duration_bins: u64,
    traffic: TrafficSpec,
    /// Multiplier on the traffic spec's mean packets per batch, applied at
    /// compile time — the same semantics for every traffic variant.
    scale: f64,
    anomalies: Vec<AnomalyEvent>,
}

impl Phase {
    /// A phase of `duration_bins` bins carrying CESCA-I-like traffic at
    /// scale 1.0 (override with the builder methods).
    pub fn new(name: impl Into<String>, duration_bins: u64) -> Self {
        Self {
            name: name.into(),
            duration_bins,
            traffic: TrafficSpec::Profile(TraceProfile::CescaI),
            scale: 1.0,
            anomalies: Vec::new(),
        }
    }

    /// Sets the base traffic to a named profile (the phase scale is kept).
    pub fn profile(mut self, profile: TraceProfile) -> Self {
        self.traffic = TrafficSpec::Profile(profile);
        self
    }

    /// Sets the base traffic to a profile referenced by its paper name;
    /// unknown names surface as [`ScenarioError::UnknownProfile`] at
    /// validation time.
    pub fn profile_named(mut self, name: impl Into<String>) -> Self {
        self.traffic = TrafficSpec::Named(name.into());
        self
    }

    /// Sets the base traffic to an explicit generator configuration (the
    /// phase scale still multiplies its mean).
    pub fn config(mut self, config: TraceConfig) -> Self {
        self.traffic = TrafficSpec::Config(Box::new(config));
        self
    }

    /// Silences the phase: no base traffic, empty bins.
    pub fn silent(mut self) -> Self {
        self.traffic = TrafficSpec::Silent;
        self
    }

    /// Sets the multiplier on the phase's mean packets per batch. Setting
    /// it twice keeps the last value (it does not compound), and the order
    /// relative to [`Phase::profile`] / [`Phase::config`] does not matter.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Adds an anomaly event to the phase.
    pub fn anomaly(mut self, event: AnomalyEvent) -> Self {
        self.anomalies.push(event);
        self
    }

    /// The phase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase duration in bins.
    pub fn duration_bins(&self) -> u64 {
        self.duration_bins
    }
}

/// One monitored link: a sequence of phases.
#[derive(Debug, Clone)]
pub struct Link {
    name: String,
    phases: Vec<Phase>,
}

impl Link {
    /// An empty link (add phases with [`Link::phase`]).
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), phases: Vec::new() }
    }

    /// Appends a phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// The link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The link's phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total bins over all phases (saturating; validation rejects links
    /// past [`ScenarioError::LinkTooLong`]'s limit long before that
    /// matters).
    pub fn total_bins(&self) -> u64 {
        self.phases.iter().fold(0u64, |acc, p| acc.saturating_add(p.duration_bins))
    }
}

/// A declarative, validated, compilable workload description.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    seed: u64,
    time_bin_us: u64,
    links: Vec<Link>,
    /// Index into `links` of the link that [`Scenario::phase`] appends to,
    /// once created. Kept separate from explicitly added links so mixing
    /// `.link(...)` and `.phase(...)` never grows a user-built link.
    default_link: Option<usize>,
}

impl Scenario {
    /// A new scenario with the default seed (42) and the paper's 100 ms bins.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            seed: 42,
            time_bin_us: crate::DEFAULT_TIME_BIN_US,
            links: Vec::new(),
            default_link: None,
        }
    }

    /// Sets the scenario seed. Every link and phase derives its own
    /// generator seed from this one, so one number reproduces the whole
    /// workload.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the time-bin duration in microseconds.
    pub fn time_bin_us(mut self, time_bin_us: u64) -> Self {
        self.time_bin_us = time_bin_us;
        self
    }

    /// Appends a phase to the scenario's default link (created on first
    /// use). The default link is always its own link — phases added here
    /// never extend a link that was added explicitly with
    /// [`Scenario::link`].
    pub fn phase(mut self, phase: Phase) -> Self {
        let index = if let Some(index) = self.default_link {
            index
        } else {
            let name = format!("{}-link", self.name);
            self.links.push(Link::new(name));
            let index = self.links.len() - 1;
            self.default_link = Some(index);
            index
        };
        self.links[index].phases.push(phase);
        self
    }

    /// Appends a whole link (multi-link scenarios compile to an
    /// [`Interleave`] merge).
    pub fn link(mut self, link: Link) -> Self {
        self.links.push(link);
        self
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The time-bin duration the compiled source produces, in microseconds
    /// (recorders must write this into the trace header rather than
    /// assuming the default).
    pub fn bin_duration_us(&self) -> u64 {
        self.time_bin_us
    }

    /// Bins the compiled source will produce: the longest link wins (see
    /// [`Interleave`] for the tail semantics of shorter links).
    pub fn total_bins(&self) -> u64 {
        self.links.iter().map(Link::total_bins).max().unwrap_or(0)
    }

    /// Checks the description without compiling it.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.links.is_empty() {
            return Err(ScenarioError::NoLinks { scenario: self.name.clone() });
        }
        for link in &self.links {
            if link.phases.is_empty() {
                return Err(ScenarioError::EmptyLink { link: link.name.clone() });
            }
            if link.total_bins() > MAX_LINK_BINS {
                return Err(ScenarioError::LinkTooLong {
                    link: link.name.clone(),
                    bins: link.total_bins(),
                });
            }
            for phase in &link.phases {
                if phase.duration_bins == 0 {
                    return Err(ScenarioError::ZeroDurationPhase {
                        link: link.name.clone(),
                        phase: phase.name.clone(),
                    });
                }
                if !matches!(phase.traffic, TrafficSpec::Silent)
                    && (!phase.scale.is_finite() || phase.scale <= 0.0 || phase.scale > MAX_SCALE)
                {
                    return Err(ScenarioError::InvalidScale {
                        phase: phase.name.clone(),
                        scale: phase.scale,
                    });
                }
                match &phase.traffic {
                    TrafficSpec::Named(name) if TraceProfile::from_name(name).is_none() => {
                        return Err(ScenarioError::UnknownProfile {
                            phase: phase.name.clone(),
                            name: name.clone(),
                        });
                    }
                    // The guard lands on the *effective* mean (config mean ×
                    // phase scale): NaN/∞/non-positive or absurd rates
                    // (which would saturate the Poisson draw) must not reach
                    // the generator.
                    TrafficSpec::Config(config) => {
                        let mean = config.mean_packets_per_batch * phase.scale;
                        if !mean.is_finite() || mean <= 0.0 || mean > MAX_MEAN_PACKETS {
                            return Err(ScenarioError::InvalidScale {
                                phase: phase.name.clone(),
                                scale: mean,
                            });
                        }
                    }
                    _ => {}
                }
                let mut windows: Vec<(u64, u64)> = Vec::with_capacity(phase.anomalies.len());
                for event in &phase.anomalies {
                    let (start, end) = event.window(phase.duration_bins);
                    if end <= start {
                        return Err(ScenarioError::EmptyAnomalyWindow {
                            phase: phase.name.clone(),
                        });
                    }
                    if end > phase.duration_bins {
                        return Err(ScenarioError::AnomalyOutOfPhase {
                            phase: phase.name.clone(),
                            start_bin: start,
                            end_bin: end,
                            duration: phase.duration_bins,
                        });
                    }
                    if event.kind != ScenarioAnomaly::LinkFlap {
                        if matches!(phase.traffic, TrafficSpec::Silent) {
                            return Err(ScenarioError::AnomalyOnSilentPhase {
                                phase: phase.name.clone(),
                            });
                        }
                        if event.packets_per_bin == 0 {
                            return Err(ScenarioError::ZeroIntensity { phase: phase.name.clone() });
                        }
                    }
                    for &(s, e) in &windows {
                        if start < e && s < end {
                            return Err(ScenarioError::OverlappingAnomalies {
                                phase: phase.name.clone(),
                                first: (s, e),
                                second: (start, end),
                            });
                        }
                    }
                    windows.push((start, end));
                }
            }
        }
        Ok(())
    }

    /// Validates and compiles the scenario to a finite [`PacketSource`].
    pub fn compile(&self) -> Result<ScenarioSource, ScenarioError> {
        self.validate()?;
        let mut links = Vec::with_capacity(self.links.len());
        for (link_index, link) in self.links.iter().enumerate() {
            links.push(self.compile_link(link, link_index as u64));
        }
        let total_bins = self.total_bins();
        let inner = if links.len() == 1 {
            // lint:allow(no-unwrap): guarded by the len() == 1 branch condition
            SourceInner::Single(links.pop().expect("one link"))
        } else {
            SourceInner::Multi(Interleave::new(
                links.into_iter().map(|l| Box::new(l) as Box<dyn PacketSource>).collect(),
            ))
        };
        Ok(ScenarioSource { inner, total_bins })
    }

    /// Compiles the scenario and materialises every batch.
    pub fn generate(&self) -> Result<Vec<Batch>, ScenarioError> {
        let mut source = self.compile()?;
        let mut batches = Vec::with_capacity(self.total_bins() as usize);
        while let Some(batch) = source.next_batch() {
            batches.push(batch);
        }
        Ok(batches)
    }

    fn compile_link(&self, link: &Link, link_index: u64) -> PhasedLink {
        let mut phases = VecDeque::with_capacity(link.phases.len());
        for (phase_index, phase) in link.phases.iter().enumerate() {
            let seed = derive_seed(self.seed, link_index, phase_index as u64);
            let mut config = match &phase.traffic {
                TrafficSpec::Profile(profile) => Some(profile.config(seed, phase.scale)),
                TrafficSpec::Named(name) => Some(
                    TraceProfile::from_name(name)
                        // lint:allow(no-unwrap): compile() validated every named profile before this loop
                        .expect("validated above")
                        .config(seed, phase.scale),
                ),
                TrafficSpec::Config(config) => {
                    let mut config = (**config).clone();
                    config.seed = seed;
                    config.mean_packets_per_batch *= phase.scale;
                    Some(config)
                }
                TrafficSpec::Silent => None,
            };
            if let Some(config) = &mut config {
                config.time_bin_us = self.time_bin_us;
            }
            let mut generator = config.map(TraceGenerator::new);
            let mut flaps = Vec::new();
            for event in &phase.anomalies {
                let (start, end) = event.window(phase.duration_bins);
                match event.kind {
                    ScenarioAnomaly::LinkFlap => flaps.push((start, end)),
                    kind => {
                        let injected = match kind {
                            ScenarioAnomaly::Ddos { target } => AnomalyKind::DdosFlood { target },
                            ScenarioAnomaly::PortScan { source } => {
                                AnomalyKind::PortScan { source }
                            }
                            ScenarioAnomaly::FlashCrowd { target, port } => {
                                AnomalyKind::FlashCrowd { target, port }
                            }
                            ScenarioAnomaly::PatternStress => AnomalyKind::PatternStress,
                            ScenarioAnomaly::FlowChurn => AnomalyKind::FlowChurn,
                            ScenarioAnomaly::AggregateSkew => AnomalyKind::AggregateSkew,
                            ScenarioAnomaly::LinkFlap => unreachable!("handled above"),
                        };
                        let anomaly = Anomaly::new(injected, start, end, event.packets_per_bin)
                            .with_duty_cycle(event.duty_cycle_bins);
                        generator
                            .as_mut()
                            // lint:allow(no-unwrap): validation rejects injector anomalies on silent phases, so a generator exists here
                            .expect("injector anomalies are rejected on silent phases")
                            .add_anomaly(anomaly);
                    }
                }
            }
            phases.push_back(CompiledPhase {
                generator,
                duration: phase.duration_bins,
                local_bin: 0,
                flaps,
            });
        }
        PhasedLink {
            phases,
            time_bin_us: self.time_bin_us,
            global_bin: 0,
            total_bins: link.total_bins(),
            produced: 0,
        }
    }
}

/// Largest accepted profile scale: profile base means are ~10³ packets per
/// bin, so this bounds the effective mean near [`MAX_MEAN_PACKETS`].
const MAX_SCALE: f64 = 1e6;

/// Largest accepted mean packets per batch for explicit configs. Far above
/// anything a simulation can chew through per 100 ms bin, but low enough
/// that the Poisson draw and the batch allocation stay well-defined.
const MAX_MEAN_PACKETS: f64 = 1e9;

/// Largest accepted link duration: ten million 100 ms bins ≈ 11 days of
/// simulated traffic, far past any experiment while keeping every batch
/// count and capacity allocation comfortably in range.
const MAX_LINK_BINS: u64 = 10_000_000;

/// Derives a per-(link, phase) generator seed from the scenario seed.
fn derive_seed(seed: u64, link_index: u64, phase_index: u64) -> u64 {
    mix64(seed ^ mix64(0x6c69_6e6b ^ (link_index << 32) ^ phase_index))
}

struct CompiledPhase {
    /// `None` for silent phases.
    generator: Option<TraceGenerator>,
    duration: u64,
    local_bin: u64,
    /// Link-flap windows in phase-relative bins, `[start, end)`.
    flaps: Vec<(u64, u64)>,
}

/// One link's compiled phase sequence: a finite [`PacketSource`] producing
/// one batch per bin, with globally contiguous bin indices and timestamps
/// across phase boundaries.
struct PhasedLink {
    phases: VecDeque<CompiledPhase>,
    time_bin_us: u64,
    global_bin: u64,
    total_bins: u64,
    produced: u64,
}

impl PacketSource for PhasedLink {
    fn next_batch(&mut self) -> Option<Batch> {
        loop {
            let phase = self.phases.front_mut()?;
            if phase.local_bin >= phase.duration {
                self.phases.pop_front();
                continue;
            }
            let local = phase.local_bin;
            phase.local_bin += 1;
            let global = self.global_bin;
            self.global_bin += 1;
            self.produced += 1;
            let start_ts = global * self.time_bin_us;
            let flapped = phase.flaps.iter().any(|&(s, e)| local >= s && local < e);
            let batch = match &mut phase.generator {
                // The generator always advances, even under a flap: the link
                // went dark, the traffic existed, the bins arrive empty.
                Some(generator) => {
                    let raw = generator.next_batch();
                    if flapped {
                        Batch::empty(global, start_ts, self.time_bin_us)
                    } else {
                        // Re-base the phase-local bin onto the scenario
                        // timeline (the generator restarts at bin 0 each
                        // phase).
                        let shift = start_ts - raw.start_ts;
                        let packets = raw
                            .packets
                            .iter()
                            .map(|p| {
                                let mut p = p.to_packet();
                                p.ts += shift;
                                p
                            })
                            .collect();
                        Batch::new(global, start_ts, self.time_bin_us, packets)
                    }
                }
                None => Batch::empty(global, start_ts, self.time_bin_us),
            };
            return Some(batch);
        }
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some((self.total_bins - self.produced) as usize)
    }
}

enum SourceInner {
    Single(PhasedLink),
    Multi(Interleave),
}

/// The compiled form of a [`Scenario`]: a finite stream of one batch per
/// time bin.
pub struct ScenarioSource {
    inner: SourceInner,
    total_bins: u64,
}

impl ScenarioSource {
    /// Bins the source produces in total (regardless of position).
    pub fn total_bins(&self) -> u64 {
        self.total_bins
    }
}

impl PacketSource for ScenarioSource {
    fn next_batch(&mut self) -> Option<Batch> {
        match &mut self.inner {
            SourceInner::Single(link) => link.next_batch(),
            SourceInner::Multi(links) => links.next_batch(),
        }
    }

    fn remaining_hint(&self) -> Option<usize> {
        match &self.inner {
            SourceInner::Single(link) => link.remaining_hint(),
            SourceInner::Multi(links) => links.remaining_hint(),
        }
    }
}

/// The built-in conformance scenarios behind the golden-replay corpus
/// (`corpus/` at the repository root) and the `netshed-bench` `scenarios`
/// subcommand.
///
/// They are deliberately small — tens of bins, low packet rates — so the
/// whole corpus replays in seconds while still covering steady load, a DDoS
/// spike, a duty-cycled port scan, a flash crowd, a flapping multi-link mix
/// and payload-bearing traffic with a silent gap. The last three are the
/// adversarial corpus: predictor-gaming workloads (`bm-mimicry`,
/// `flow-churn`, `agg-skew`) that under-predict cost by construction, pinned
/// like everything else so the robustness plane is regression-tested.
pub fn builtins() -> Vec<Scenario> {
    vec![
        Scenario::new("steady-cesca")
            .seed(101)
            .phase(Phase::new("steady", 30).profile(TraceProfile::CescaI).scale(0.15)),
        Scenario::new("ddos-spike")
            .seed(102)
            .phase(Phase::new("calm", 10).profile(TraceProfile::CescaI).scale(0.12))
            .phase(
                Phase::new("attack", 14)
                    .profile(TraceProfile::CescaI)
                    .scale(0.12)
                    .anomaly(AnomalyEvent::ddos(0x0a00_0001).over(2, 10).intensity(350)),
            )
            .phase(Phase::new("recovery", 8).profile(TraceProfile::CescaI).scale(0.12)),
        Scenario::new("port-scan-wave")
            .seed(103)
            .phase(Phase::new("lead-in", 6).profile(TraceProfile::Abilene).scale(0.08))
            .phase(Phase::new("sweep", 24).profile(TraceProfile::Abilene).scale(0.08).anomaly(
                AnomalyEvent::port_scan(0xc0a8_0a0a).over(4, 16).intensity(250).duty_cycle(8),
            )),
        Scenario::new("flash-crowd")
            .seed(104)
            .phase(Phase::new("quiet", 8).profile(TraceProfile::Cenic).scale(0.1))
            .phase(
                Phase::new("crowd", 16)
                    .profile(TraceProfile::Cenic)
                    .scale(0.1)
                    .anomaly(AnomalyEvent::flash_crowd(0x0a00_0050, 80).over(2, 12).intensity(180)),
            )
            .phase(Phase::new("cooldown", 8).profile(TraceProfile::Cenic).scale(0.1)),
        Scenario::new("link-flap")
            .seed(105)
            .link(
                Link::new("core")
                    .phase(Phase::new("steady", 30).profile(TraceProfile::CescaI).scale(0.1)),
            )
            .link(
                Link::new("edge").phase(
                    Phase::new("flapping", 26)
                        .profile(TraceProfile::Abilene)
                        .scale(0.06)
                        .anomaly(AnomalyEvent::link_flap().over(6, 4))
                        .anomaly(AnomalyEvent::link_flap().over(18, 4)),
                ),
            ),
        Scenario::new("payload-shift")
            .seed(106)
            .phase(Phase::new("light", 10).profile(TraceProfile::CescaII).scale(0.035))
            .phase(Phase::new("gap", 4).silent())
            .phase(Phase::new("heavy", 10).profile(TraceProfile::CescaII).scale(0.06)),
        // The adversarial trio: each games the cost predictor a different
        // way (payload pathology, state churn, sampling skew), with a clean
        // lead-in so the MLR history is warm and trusting when the attack
        // lands, and a recovery tail so the guards' hysteresis is exercised.
        // All three are duty-cycled 2-on/2-off and titrated so attacked bins
        // cost a containable few multiples of the corpus capacity: the
        // damage is then the predictor being gamed — the feature-invisible
        // per-packet cost makes the MLR fit the *average* of the two regimes
        // and the feedback loop whipsaw through the flanks — rather than an
        // unsurvivable flood no causal controller could do anything about.
        Scenario::new("bm-mimicry")
            .seed(107)
            .phase(Phase::new("lull", 10).profile(TraceProfile::CescaII).scale(0.035))
            .phase(
                Phase::new("mimicry", 14)
                    .profile(TraceProfile::CescaII)
                    .scale(0.035)
                    // A dozen innocuous-looking packets whose payloads cost
                    // kilocycles each to scan: "looks cheap, runs expensive".
                    .anomaly(
                        AnomalyEvent::pattern_stress().over(2, 10).intensity(12).duty_cycle(4),
                    ),
            )
            .phase(Phase::new("recovery", 6).profile(TraceProfile::CescaII).scale(0.035)),
        Scenario::new("flow-churn")
            .seed(108)
            .phase(Phase::new("lull", 10).profile(TraceProfile::CescaI).scale(0.12))
            .phase(
                Phase::new("churn", 16)
                    .profile(TraceProfile::CescaI)
                    .scale(0.12)
                    // Duty cycle 4 keeps the insert/lookup parity alternation
                    // alive (cycle 2 would pin the churn to one parity) while
                    // the on/off flank keeps the error EWMA phase-lagged.
                    .anomaly(AnomalyEvent::flow_churn().over(2, 12).intensity(260).duty_cycle(4)),
            )
            .phase(Phase::new("recovery", 6).profile(TraceProfile::CescaI).scale(0.12)),
        Scenario::new("agg-skew")
            .seed(109)
            .phase(Phase::new("lull", 8).profile(TraceProfile::Cenic).scale(0.1))
            .phase(
                Phase::new("skew", 16).profile(TraceProfile::Cenic).scale(0.1).anomaly(
                    AnomalyEvent::aggregate_skew().over(2, 12).intensity(24).duty_cycle(4),
                ),
            )
            .phase(Phase::new("recovery", 6).profile(TraceProfile::Cenic).scale(0.1)),
    ]
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    builtins().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> Scenario {
        Scenario::new(name)
            .seed(9)
            .phase(Phase::new("a", 4).profile(TraceProfile::CescaI).scale(0.05))
    }

    #[test]
    fn compiled_scenarios_are_contiguous_and_finite() {
        let scenario =
            tiny("contig").phase(Phase::new("b", 3).profile(TraceProfile::Abilene).scale(0.05));
        let mut source = scenario.compile().expect("valid");
        assert_eq!(source.remaining_hint(), Some(7));
        assert_eq!(source.total_bins(), 7);
        for expected_bin in 0..7u64 {
            let batch = source.next_batch().expect("seven bins");
            assert_eq!(batch.bin_index, expected_bin);
            assert_eq!(batch.start_ts, expected_bin * crate::DEFAULT_TIME_BIN_US);
            for p in batch.packets.iter() {
                assert!(p.ts() >= batch.start_ts && p.ts() < batch.end_ts());
            }
        }
        assert!(source.next_batch().is_none());
        assert_eq!(source.remaining_hint(), Some(0));
    }

    #[test]
    fn same_seed_reproduces_the_same_stream() {
        let a = tiny("repro").generate().expect("valid");
        let b = tiny("repro").generate().expect("valid");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packets.as_ref(), y.packets.as_ref());
        }
        let c = tiny("repro").seed(10).generate().expect("valid");
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.packets.as_ref() != y.packets.as_ref()),
            "a different seed must change the traffic"
        );
    }

    #[test]
    fn anomaly_windows_inject_only_inside_their_bins() {
        let target = 0x0a00_0001;
        let scenario = Scenario::new("windowed").seed(3).phase(
            Phase::new("attack", 10)
                .profile(TraceProfile::CescaI)
                .scale(0.05)
                .anomaly(AnomalyEvent::ddos(target).over(4, 3).intensity(500)),
        );
        let batches = scenario.generate().expect("valid");
        for (bin, batch) in batches.iter().enumerate() {
            let attack_packets = batch
                .packets
                .iter()
                .filter(|p| p.tuple().dst_ip == target && p.ip_len() == 60)
                .count();
            if (4..7).contains(&bin) {
                assert!(attack_packets >= 400, "bin {bin} should carry the flood");
            } else {
                assert!(attack_packets < 50, "bin {bin} should be clean");
            }
        }
    }

    #[test]
    fn link_flap_darkens_the_window_without_shifting_later_bins() {
        let scenario = Scenario::new("flap").seed(4).phase(
            Phase::new("flapping", 8)
                .profile(TraceProfile::CescaI)
                .scale(0.05)
                .anomaly(AnomalyEvent::link_flap().over(3, 2)),
        );
        let batches = scenario.generate().expect("valid");
        assert_eq!(batches.len(), 8);
        for (bin, batch) in batches.iter().enumerate() {
            if (3..5).contains(&bin) {
                assert!(batch.is_empty(), "bin {bin} must be dark");
            } else {
                assert!(!batch.is_empty(), "bin {bin} must carry traffic");
            }
            assert_eq!(batch.bin_index, bin as u64);
        }
        // The post-flap stream equals the unflapped scenario's: the
        // generator kept running while the link was down.
        let unflapped = Scenario::new("flap")
            .seed(4)
            .phase(Phase::new("flapping", 8).profile(TraceProfile::CescaI).scale(0.05))
            .generate()
            .expect("valid");
        assert_eq!(batches[6].packets.as_ref(), unflapped[6].packets.as_ref());
    }

    #[test]
    fn multi_link_scenarios_interleave_their_links() {
        let two = Scenario::new("two-links")
            .seed(5)
            .link(
                Link::new("a").phase(Phase::new("p", 5).profile(TraceProfile::CescaI).scale(0.05)),
            )
            .link(
                Link::new("b").phase(Phase::new("p", 3).profile(TraceProfile::Cenic).scale(0.05)),
            );
        assert_eq!(two.total_bins(), 5);
        let merged = two.generate().expect("valid");
        assert_eq!(merged.len(), 5, "the interleave runs until the longest link ends");
        let only_a = Scenario::new("two-links")
            .seed(5)
            .link(
                Link::new("a").phase(Phase::new("p", 5).profile(TraceProfile::CescaI).scale(0.05)),
            )
            .generate()
            .expect("valid");
        // Tail bins (after link b ends) carry exactly link a's traffic.
        assert_eq!(merged[4].packets.as_ref(), only_a[4].packets.as_ref());
        // Merged head bins carry more traffic than link a alone.
        assert!(merged[0].len() > only_a[0].len());
    }

    #[test]
    fn silent_phases_emit_empty_bins() {
        let scenario = Scenario::new("gap")
            .seed(6)
            .phase(Phase::new("on", 2).profile(TraceProfile::CescaI).scale(0.05))
            .phase(Phase::new("off", 2).silent())
            .phase(Phase::new("back", 2).profile(TraceProfile::CescaI).scale(0.05));
        let batches = scenario.generate().expect("valid");
        assert_eq!(batches.len(), 6);
        assert!(!batches[1].is_empty());
        assert!(batches[2].is_empty() && batches[3].is_empty());
        assert!(!batches[4].is_empty());
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let no_links = Scenario::new("empty");
        assert_eq!(no_links.validate(), Err(ScenarioError::NoLinks { scenario: "empty".into() }));

        let empty_link = Scenario::new("s").link(Link::new("bare"));
        assert_eq!(empty_link.validate(), Err(ScenarioError::EmptyLink { link: "bare".into() }));

        let zero_phase = Scenario::new("s").phase(Phase::new("nothing", 0));
        assert!(matches!(
            zero_phase.validate(),
            Err(ScenarioError::ZeroDurationPhase { ref phase, .. }) if phase == "nothing"
        ));

        let unknown = Scenario::new("s").phase(Phase::new("p", 4).profile_named("CESCA-IX"));
        assert_eq!(
            unknown.validate(),
            Err(ScenarioError::UnknownProfile { phase: "p".into(), name: "CESCA-IX".into() })
        );

        let bad_scale = Scenario::new("s").phase(Phase::new("p", 4).scale(0.0));
        assert!(matches!(bad_scale.validate(), Err(ScenarioError::InvalidScale { .. })));

        let out_of_phase =
            Scenario::new("s").phase(Phase::new("p", 4).anomaly(AnomalyEvent::ddos(1).over(2, 5)));
        assert!(matches!(out_of_phase.validate(), Err(ScenarioError::AnomalyOutOfPhase { .. })));

        let overlapping = Scenario::new("s").phase(
            Phase::new("p", 10)
                .anomaly(AnomalyEvent::ddos(1).over(0, 5))
                .anomaly(AnomalyEvent::port_scan(2).over(4, 3)),
        );
        assert_eq!(
            overlapping.validate(),
            Err(ScenarioError::OverlappingAnomalies {
                phase: "p".into(),
                first: (0, 5),
                second: (4, 7),
            })
        );

        let on_silent = Scenario::new("s")
            .phase(Phase::new("p", 4).silent().anomaly(AnomalyEvent::ddos(1).over(0, 2)));
        assert!(matches!(on_silent.validate(), Err(ScenarioError::AnomalyOnSilentPhase { .. })));

        let zero_intensity = Scenario::new("s")
            .phase(Phase::new("p", 4).anomaly(AnomalyEvent::ddos(1).over(0, 2).intensity(0)));
        assert!(matches!(zero_intensity.validate(), Err(ScenarioError::ZeroIntensity { .. })));

        let empty_window =
            Scenario::new("s").phase(Phase::new("p", 4).anomaly(AnomalyEvent::ddos(1).over(2, 0)));
        assert!(matches!(empty_window.validate(), Err(ScenarioError::EmptyAnomalyWindow { .. })));
    }

    #[test]
    fn config_phases_are_scale_validated_too() {
        // `Phase::config(...).scale(x)` folds the scale into the config's
        // mean, so the validation guard lands on the resulting mean: NaN,
        // non-positive and absurdly huge rates are all typed errors, never
        // panics or silently empty traffic.
        for bad_scale in [f64::NAN, 0.0, -3.0, 1e300] {
            let scenario = Scenario::new("cfg")
                .phase(Phase::new("p", 2).config(TraceConfig::default()).scale(bad_scale));
            assert!(
                matches!(scenario.validate(), Err(ScenarioError::InvalidScale { .. })),
                "config scale {bad_scale} must be rejected"
            );
        }
        // Huge profile scales are bounded the same way.
        let huge = Scenario::new("huge").phase(Phase::new("p", 2).scale(1e300));
        assert!(matches!(huge.validate(), Err(ScenarioError::InvalidScale { .. })));
        // So is an in-range scale applied to an absurd explicit mean: the
        // guard bounds the *effective* mean.
        let absurd = TraceConfig { mean_packets_per_batch: 1e8, ..TraceConfig::default() };
        let product = Scenario::new("prod").phase(Phase::new("p", 2).config(absurd).scale(100.0));
        assert!(matches!(product.validate(), Err(ScenarioError::InvalidScale { .. })));
        // A sane explicit config still validates and runs.
        let ok = Scenario::new("ok")
            .seed(3)
            .phase(Phase::new("p", 2).config(TraceConfig::default()).scale(0.05));
        assert_eq!(ok.generate().expect("valid").len(), 2);
    }

    #[test]
    fn scale_is_idempotent_and_order_independent_across_traffic_specs() {
        // Setting the scale twice keeps the last value for every variant,
        // and `.scale()` before or after the traffic spec is equivalent —
        // switching a phase between a profile and an equivalent explicit
        // config must not silently change the traffic volume.
        let reference = Scenario::new("s")
            .seed(2)
            .phase(Phase::new("p", 2).profile(TraceProfile::CescaI).scale(0.05))
            .generate()
            .expect("valid");
        for phase in [
            Phase::new("p", 2).scale(0.9).profile(TraceProfile::CescaI).scale(0.05),
            Phase::new("p", 2).scale(0.05).profile(TraceProfile::CescaI),
            Phase::new("p", 2).config(TraceProfile::CescaI.default_config(0)).scale(0.05),
            Phase::new("p", 2).scale(0.05).config(TraceProfile::CescaI.default_config(0)),
        ] {
            let batches = Scenario::new("s").seed(2).phase(phase).generate().expect("valid");
            assert_eq!(batches, reference);
        }
    }

    #[test]
    fn absurd_durations_are_typed_errors_not_panics() {
        for bins in [u64::MAX, MAX_LINK_BINS + 1] {
            let scenario = Scenario::new("forever").phase(Phase::new("p", bins).scale(0.05));
            assert!(
                matches!(scenario.validate(), Err(ScenarioError::LinkTooLong { .. })),
                "{bins} bins must be rejected"
            );
            assert!(scenario.compile().is_err());
        }
        // The sum of phases is bounded too, without overflowing.
        let split = Scenario::new("split")
            .phase(Phase::new("a", u64::MAX / 2).scale(0.05))
            .phase(Phase::new("b", u64::MAX / 2 + 5).scale(0.05));
        assert!(matches!(split.validate(), Err(ScenarioError::LinkTooLong { .. })));
    }

    #[test]
    fn default_link_phases_never_extend_an_explicit_link() {
        let scenario = Scenario::new("mixed")
            .link(Link::new("core").phase(Phase::new("a", 3).scale(0.05)))
            .phase(Phase::new("extra", 2).scale(0.05))
            .phase(Phase::new("more", 1).scale(0.05));
        assert_eq!(scenario.links().len(), 2, "phases go to their own default link");
        assert_eq!(scenario.links()[0].name(), "core");
        assert_eq!(scenario.links()[0].phases().len(), 1, "the explicit link is untouched");
        assert_eq!(scenario.links()[1].name(), "mixed-link");
        assert_eq!(scenario.links()[1].phases().len(), 2);
        assert_eq!(scenario.total_bins(), 3);
    }

    #[test]
    fn bin_duration_accessor_reports_the_configured_bin() {
        assert_eq!(tiny("bins").bin_duration_us(), crate::DEFAULT_TIME_BIN_US);
        assert_eq!(tiny("bins").time_bin_us(50_000).bin_duration_us(), 50_000);
    }

    #[test]
    fn compile_surfaces_validation_errors() {
        let err = Scenario::new("broken").compile().err().expect("must fail");
        assert_eq!(err, ScenarioError::NoLinks { scenario: "broken".into() });
    }

    #[test]
    fn builtins_are_valid_and_unique() {
        let scenarios = builtins();
        assert_eq!(scenarios.len(), 9);
        let mut names = std::collections::HashSet::new();
        for scenario in &scenarios {
            scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
            assert!(names.insert(scenario.name().to_string()), "duplicate {}", scenario.name());
            assert!(scenario.total_bins() >= 20 && scenario.total_bins() <= 60);
        }
        assert!(builtin("ddos-spike").is_some());
        for adversarial in ["bm-mimicry", "flow-churn", "agg-skew"] {
            assert!(builtin(adversarial).is_some(), "{adversarial} must stay in the corpus");
        }
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn named_profiles_resolve_case_insensitively() {
        let scenario = Scenario::new("s")
            .seed(2)
            .phase(Phase::new("p", 2).profile_named("cesca-i").scale(0.05));
        let direct = Scenario::new("s")
            .seed(2)
            .phase(Phase::new("p", 2).profile(TraceProfile::CescaI).scale(0.05));
        let a = scenario.generate().expect("valid");
        let b = direct.generate().expect("valid");
        assert_eq!(a[0].packets.as_ref(), b[0].packets.as_ref());
    }
}
