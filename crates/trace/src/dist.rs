//! Small collection of random distributions used by the workload generator.
//!
//! Only `rand` is available offline (no `rand_distr`), so the handful of
//! distributions the generator needs — Poisson, Pareto, Zipf and log-normal —
//! are implemented here. They favour simplicity over performance; the
//! generator draws at most a few values per packet.

use rand::Rng;

/// Draws from a Poisson distribution with mean `lambda`.
///
/// Uses Knuth's multiplication method for small means and a normal
/// approximation (rounded, clamped at zero) for large means, which is more
/// than accurate enough for workload generation.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let sample = normal(rng, lambda, lambda.sqrt());
        sample.round().max(0.0) as u64
    }
}

/// Draws from a normal distribution via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, stdev: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + stdev * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from a log-normal distribution parameterised by the underlying
/// normal's mean and standard deviation.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws from a Pareto distribution with minimum `scale` and shape `alpha`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64) -> f64 {
    debug_assert!(scale > 0.0 && alpha > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>();
    scale / u.powf(1.0 / alpha)
}

/// Zipf sampler over ranks `1..=n` with exponent `s`.
///
/// The cumulative distribution is precomputed at construction so sampling is
/// a binary search, which matters because the generator draws one or two Zipf
/// values per packet.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (larger `s` means a
    /// more skewed distribution).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        Self { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 80.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "lambda {lambda}: got mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn pareto_respects_scale_minimum() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(pareto(&mut rng, 3.0, 1.2) >= 3.0);
        }
    }

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let mut rng = StdRng::seed_from_u64(3);
        let zipf = Zipf::new(100, 1.0);
        let mut rank0 = 0;
        let mut rank_high = 0;
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            if r == 0 {
                rank0 += 1;
            }
            if r >= 50 {
                rank_high += 1;
            }
        }
        assert!(rank0 > rank_high, "rank 0 ({rank0}) should dominate ranks >= 50 ({rank_high})");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
