//! The ten traffic aggregates of Table 3.1 and their per-packet hashes.
//!
//! The aggregates live in the trace crate (rather than with the feature
//! extractor) because the batch data plane caches one hash per aggregate per
//! packet directly on the shared packet store: the hashes are computed in a
//! single pass the first time a batch is examined and reused by every later
//! consumer — the full-batch extraction, each query's sampled re-extraction,
//! and anything else that counts distinct items per aggregate.

use crate::packet::FiveTuple;
use netshed_sketch::IncrementalFnv;

/// A traffic aggregate: a combination of TCP/IP header fields whose distinct
/// values are counted by the feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Source IP address.
    SrcIp,
    /// Destination IP address.
    DstIp,
    /// IP protocol number.
    Protocol,
    /// (source IP, destination IP) pair.
    SrcDstIp,
    /// (source port, protocol) pair.
    SrcPortProto,
    /// (destination port, protocol) pair.
    DstPortProto,
    /// (source IP, source port, protocol) triple.
    SrcIpPortProto,
    /// (destination IP, destination port, protocol) triple.
    DstIpPortProto,
    /// (source port, destination port, protocol) triple.
    SrcDstPortProto,
    /// The full 5-tuple.
    FiveTuple,
}

/// Number of traffic aggregates (Table 3.1).
pub const AGGREGATE_COUNT: usize = 10;

impl Aggregate {
    /// The ten aggregates in the order of Table 3.1.
    pub const ALL: [Aggregate; AGGREGATE_COUNT] = [
        Aggregate::SrcIp,
        Aggregate::DstIp,
        Aggregate::Protocol,
        Aggregate::SrcDstIp,
        Aggregate::SrcPortProto,
        Aggregate::DstPortProto,
        Aggregate::SrcIpPortProto,
        Aggregate::DstIpPortProto,
        Aggregate::SrcDstPortProto,
        Aggregate::FiveTuple,
    ];

    /// Short name used when reporting selected features (e.g. Table 3.2).
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::SrcIp => "src-ip",
            Aggregate::DstIp => "dst-ip",
            Aggregate::Protocol => "proto",
            Aggregate::SrcDstIp => "src-dst-ip",
            Aggregate::SrcPortProto => "src-port-proto",
            Aggregate::DstPortProto => "dst-port-proto",
            Aggregate::SrcIpPortProto => "src-ip-port-proto",
            Aggregate::DstIpPortProto => "dst-ip-port-proto",
            Aggregate::SrcDstPortProto => "src-dst-port-proto",
            Aggregate::FiveTuple => "5tuple",
        }
    }

    /// Index of the aggregate in [`Aggregate::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Aggregate::SrcIp => 0,
            Aggregate::DstIp => 1,
            Aggregate::Protocol => 2,
            Aggregate::SrcDstIp => 3,
            Aggregate::SrcPortProto => 4,
            Aggregate::DstPortProto => 5,
            Aggregate::SrcIpPortProto => 6,
            Aggregate::DstIpPortProto => 7,
            Aggregate::SrcDstPortProto => 8,
            Aggregate::FiveTuple => 9,
        }
    }

    /// Serialises the aggregate's fields of a 5-tuple into a compact key.
    ///
    /// The key length differs per aggregate, which is fine because the key is
    /// only ever hashed together with the aggregate index as a seed. The fast
    /// path ([`AggregateHashes::compute`]) never materialises these keys; they
    /// remain the reference the hashes are defined (and tested) against.
    pub fn key(self, tuple: &FiveTuple) -> [u8; 13] {
        let mut key = [0u8; 13];
        match self {
            Aggregate::SrcIp => key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes()),
            Aggregate::DstIp => key[..4].copy_from_slice(&tuple.dst_ip.to_be_bytes()),
            Aggregate::Protocol => key[0] = tuple.proto,
            Aggregate::SrcDstIp => {
                key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes());
                key[4..8].copy_from_slice(&tuple.dst_ip.to_be_bytes());
            }
            Aggregate::SrcPortProto => {
                key[..2].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[2] = tuple.proto;
            }
            Aggregate::DstPortProto => {
                key[..2].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[2] = tuple.proto;
            }
            Aggregate::SrcIpPortProto => {
                key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes());
                key[4..6].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[6] = tuple.proto;
            }
            Aggregate::DstIpPortProto => {
                key[..4].copy_from_slice(&tuple.dst_ip.to_be_bytes());
                key[4..6].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[6] = tuple.proto;
            }
            Aggregate::SrcDstPortProto => {
                key[..2].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[2..4].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[4] = tuple.proto;
            }
            Aggregate::FiveTuple => key = tuple.as_key(),
        }
        key
    }
}

/// Derives the per-aggregate hash seed from the extractor's base seed.
///
/// Kept as a free function so the side-array computation and the reference
/// ten-pass implementation (benchmarks, tests) agree on the exact rule.
#[inline]
pub fn aggregate_hash_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(0x9e37_79b9)
}

/// The ten aggregate hashes of one packet, in [`Aggregate::ALL`] order.
///
/// Bit-identical to hashing each aggregate's zero-padded 13-byte key with
/// `hash_bytes(&aggregate.key(tuple), aggregate_hash_seed(seed, index))`, but
/// computed in a single pass over the 5-tuple fields: each field is converted
/// to bytes once and streamed into the aggregates that contain it, and the
/// zero padding of every key collapses to one multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateHashes([u64; AGGREGATE_COUNT]);

impl AggregateHashes {
    /// Computes all ten hashes for a packet's 5-tuple.
    pub fn compute(tuple: &FiveTuple, base_seed: u64) -> Self {
        let src_ip = tuple.src_ip.to_be_bytes();
        let dst_ip = tuple.dst_ip.to_be_bytes();
        let src_port = tuple.src_port.to_be_bytes();
        let dst_port = tuple.dst_port.to_be_bytes();
        let proto = [tuple.proto];

        // One hasher per aggregate, each fed exactly the bytes its 13-byte
        // key would contain: the fields at the front, then the zero padding.
        let hash = |index: usize, fields: &[&[u8]]| -> u64 {
            let mut fnv = IncrementalFnv::new(aggregate_hash_seed(base_seed, index));
            let mut written = 0;
            for field in fields {
                fnv.write(field);
                written += field.len();
            }
            fnv.pad_zeros(13 - written);
            fnv.finish()
        };

        Self([
            hash(0, &[&src_ip]),
            hash(1, &[&dst_ip]),
            hash(2, &[&proto]),
            hash(3, &[&src_ip, &dst_ip]),
            hash(4, &[&src_port, &proto]),
            hash(5, &[&dst_port, &proto]),
            hash(6, &[&src_ip, &src_port, &proto]),
            hash(7, &[&dst_ip, &dst_port, &proto]),
            hash(8, &[&src_port, &dst_port, &proto]),
            hash(9, &[&src_ip, &dst_ip, &src_port, &dst_port, &proto]),
        ])
    }

    /// The hash for one aggregate.
    #[inline]
    pub fn get(&self, aggregate: Aggregate) -> u64 {
        self.0[aggregate.index()]
    }

    /// All ten hashes, in [`Aggregate::ALL`] order.
    #[inline]
    pub fn as_array(&self) -> &[u64; AGGREGATE_COUNT] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_sketch::hash_bytes;

    #[test]
    fn there_are_ten_aggregates_as_in_table_3_1() {
        assert_eq!(Aggregate::ALL.len(), AGGREGATE_COUNT);
    }

    #[test]
    fn indices_are_consistent_with_all_order() {
        for (i, agg) in Aggregate::ALL.iter().enumerate() {
            assert_eq!(agg.index(), i);
        }
    }

    #[test]
    fn keys_only_depend_on_the_aggregated_fields() {
        let a = FiveTuple::new(1, 2, 3, 4, 6);
        let b = FiveTuple::new(1, 9, 8, 7, 6);
        // Same source IP and protocol, so the src-ip key must match.
        assert_eq!(Aggregate::SrcIp.key(&a), Aggregate::SrcIp.key(&b));
        // Destination differs, so the dst-ip key must not match.
        assert_ne!(Aggregate::DstIp.key(&a), Aggregate::DstIp.key(&b));
        // Full 5-tuple key differs.
        assert_ne!(Aggregate::FiveTuple.key(&a), Aggregate::FiveTuple.key(&b));
    }

    #[test]
    fn src_port_proto_ignores_addresses() {
        let a = FiveTuple::new(10, 20, 1234, 80, 6);
        let b = FiveTuple::new(99, 77, 1234, 443, 6);
        assert_eq!(Aggregate::SrcPortProto.key(&a), Aggregate::SrcPortProto.key(&b));
    }

    #[test]
    fn single_pass_hashes_match_the_per_key_reference() {
        // The hash-once invariant of the data plane: the fused computation
        // must be bit-identical to hashing each aggregate's padded key.
        let tuples = [
            FiveTuple::new(0, 0, 0, 0, 0),
            FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, 6),
            FiveTuple::new(u32::MAX, 1, u16::MAX, 65534, 17),
            FiveTuple::new(0xc0a80001, 0x08080808, 53123, 53, 17),
        ];
        for seed in [0u64, 0x5eed_f00d, u64::MAX] {
            for tuple in &tuples {
                let hashes = AggregateHashes::compute(tuple, seed);
                for (index, aggregate) in Aggregate::ALL.iter().enumerate() {
                    let reference =
                        hash_bytes(&aggregate.key(tuple), aggregate_hash_seed(seed, index));
                    assert_eq!(
                        hashes.get(*aggregate),
                        reference,
                        "aggregate {} seed {seed:#x} tuple {tuple}",
                        aggregate.name()
                    );
                    assert_eq!(hashes.as_array()[index], reference);
                }
            }
        }
    }
}
