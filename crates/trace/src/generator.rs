//! Synthetic workload generator.
//!
//! Substitutes the CESCA / UPC / NLANR packet traces used in the paper with a
//! flow-level traffic model that reproduces the properties the load shedding
//! evaluation actually depends on:
//!
//! * **bursty load**: per-bin packet counts follow a log-normal AR(1)
//!   modulation on top of a configurable mean, so peak rates are several times
//!   the average (Section 1.2, "arbitrary input");
//! * **heavy-tailed flows**: flow lengths in packets are Pareto distributed,
//!   so a few flows carry most packets, as in real traffic;
//! * **skewed address/port popularity**: Zipf-distributed hosts and an
//!   application mix, which makes the unique/new/repeated aggregate counters
//!   of the feature extractor behave like they do on ISP traffic;
//! * **optional payloads**: payload-carrying traces (CESCA-II, UPC-I) are
//!   emulated by attaching application-specific payload templates, including
//!   P2P protocol signatures, so signature-matching queries have real work.

use crate::batch::Batch;
use crate::dist::{log_normal, pareto, poisson, Zipf};
use crate::packet::{FiveTuple, Packet, TCP_ACK, TCP_FIN, TCP_SYN};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Application protocols present in the synthetic mix.
///
/// Each protocol determines the transport protocol, the server port, the
/// packet size profile and the payload template used when payload generation
/// is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProtocol {
    /// Plain web traffic (TCP/80).
    Http,
    /// Encrypted web traffic (TCP/443).
    Https,
    /// Domain name lookups (UDP/53), short flows and small packets.
    Dns,
    /// Mail transfer (TCP/25).
    Smtp,
    /// BitTorrent-like P2P traffic (TCP/6881) carrying the well-known
    /// `"BitTorrent protocol"` handshake string in some payloads.
    P2pBitTorrent,
    /// Gnutella-like P2P traffic (TCP/6346) carrying `"GNUTELLA CONNECT"`.
    P2pGnutella,
    /// Interactive SSH (TCP/22), small packets.
    Ssh,
    /// Bulk data transfer (TCP/20), MTU-sized packets.
    Bulk,
    /// Anything else (unclassified UDP high ports).
    Other,
}

impl AppProtocol {
    /// All protocols, used to build the default mix.
    pub const ALL: [AppProtocol; 9] = [
        AppProtocol::Http,
        AppProtocol::Https,
        AppProtocol::Dns,
        AppProtocol::Smtp,
        AppProtocol::P2pBitTorrent,
        AppProtocol::P2pGnutella,
        AppProtocol::Ssh,
        AppProtocol::Bulk,
        AppProtocol::Other,
    ];

    /// Well-known server port of the protocol.
    pub fn server_port(self) -> u16 {
        match self {
            AppProtocol::Http => 80,
            AppProtocol::Https => 443,
            AppProtocol::Dns => 53,
            AppProtocol::Smtp => 25,
            AppProtocol::P2pBitTorrent => 6881,
            AppProtocol::P2pGnutella => 6346,
            AppProtocol::Ssh => 22,
            AppProtocol::Bulk => 20,
            AppProtocol::Other => 40000,
        }
    }

    /// IP protocol number used by the application.
    pub fn ip_proto(self) -> u8 {
        match self {
            AppProtocol::Dns | AppProtocol::Other => 17,
            _ => 6,
        }
    }

    /// Mean packet size in bytes (including headers).
    pub fn mean_packet_size(self) -> f64 {
        match self {
            AppProtocol::Http | AppProtocol::Https => 700.0,
            AppProtocol::Dns => 90.0,
            AppProtocol::Smtp => 500.0,
            AppProtocol::P2pBitTorrent | AppProtocol::P2pGnutella => 900.0,
            AppProtocol::Ssh => 120.0,
            AppProtocol::Bulk => 1400.0,
            AppProtocol::Other => 300.0,
        }
    }

    /// Signature string embedded in some payloads of this protocol, if any.
    ///
    /// These are the strings the `p2p-detector` and `pattern-search` queries
    /// look for.
    pub fn signature(self) -> Option<&'static [u8]> {
        match self {
            AppProtocol::P2pBitTorrent => Some(b"BitTorrent protocol"),
            AppProtocol::P2pGnutella => Some(b"GNUTELLA CONNECT"),
            AppProtocol::Http => Some(b"GET / HTTP/1.1"),
            _ => None,
        }
    }

    /// Human-readable protocol name.
    pub fn name(self) -> &'static str {
        match self {
            AppProtocol::Http => "http",
            AppProtocol::Https => "https",
            AppProtocol::Dns => "dns",
            AppProtocol::Smtp => "smtp",
            AppProtocol::P2pBitTorrent => "bittorrent",
            AppProtocol::P2pGnutella => "gnutella",
            AppProtocol::Ssh => "ssh",
            AppProtocol::Bulk => "bulk",
            AppProtocol::Other => "other",
        }
    }
}

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// PRNG seed; two generators with the same configuration produce the same
    /// packet stream.
    pub seed: u64,
    /// Duration of a time bin (batch) in microseconds.
    pub time_bin_us: u64,
    /// Long-run mean number of packets per batch before modulation.
    pub mean_packets_per_batch: f64,
    /// Standard deviation of the log-normal per-bin load modulation
    /// (0 disables burstiness).
    pub burstiness_sigma: f64,
    /// Autocorrelation coefficient of the per-bin modulation (0..1); higher
    /// values produce longer bursts (closer to self-similar behaviour).
    pub burstiness_rho: f64,
    /// Amplitude of the slow sinusoidal (diurnal-like) load variation, as a
    /// fraction of the mean (0 disables it).
    pub diurnal_amplitude: f64,
    /// Period of the sinusoidal variation, in time bins.
    pub diurnal_period_bins: u64,
    /// Probability that a generated packet starts a brand-new flow.
    pub new_flow_probability: f64,
    /// Pareto shape of the flow length distribution (packets per flow).
    pub flow_length_alpha: f64,
    /// Minimum flow length in packets.
    pub flow_length_min: f64,
    /// Number of distinct "internal" hosts (clients).
    pub internal_hosts: usize,
    /// Number of distinct "external" hosts (servers).
    pub external_hosts: usize,
    /// Zipf exponent for host popularity.
    pub host_zipf_exponent: f64,
    /// Whether packets carry payloads (full-payload traces).
    pub payloads: bool,
    /// Fraction of payload-carrying packets of a P2P flow that embed the
    /// protocol signature (the handshake is only present in some packets).
    pub signature_fraction: f64,
    /// Application mix as (protocol, weight) pairs; weights need not sum to 1.
    pub app_mix: Vec<(AppProtocol, f64)>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            time_bin_us: crate::DEFAULT_TIME_BIN_US,
            mean_packets_per_batch: 1000.0,
            burstiness_sigma: 0.25,
            burstiness_rho: 0.7,
            diurnal_amplitude: 0.2,
            diurnal_period_bins: 6000,
            new_flow_probability: 0.08,
            flow_length_alpha: 1.3,
            flow_length_min: 2.0,
            internal_hosts: 4096,
            external_hosts: 16384,
            host_zipf_exponent: 0.9,
            payloads: false,
            signature_fraction: 0.2,
            app_mix: vec![
                (AppProtocol::Http, 0.32),
                (AppProtocol::Https, 0.18),
                (AppProtocol::Dns, 0.10),
                (AppProtocol::Smtp, 0.05),
                (AppProtocol::P2pBitTorrent, 0.12),
                (AppProtocol::P2pGnutella, 0.04),
                (AppProtocol::Ssh, 0.03),
                (AppProtocol::Bulk, 0.08),
                (AppProtocol::Other, 0.08),
            ],
        }
    }
}

impl TraceConfig {
    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean number of packets per batch.
    pub fn with_mean_packets_per_batch(mut self, mean: f64) -> Self {
        self.mean_packets_per_batch = mean;
        self
    }

    /// Enables or disables payload generation.
    pub fn with_payloads(mut self, payloads: bool) -> Self {
        self.payloads = payloads;
        self
    }

    /// Sets the time bin duration in microseconds.
    pub fn with_time_bin_us(mut self, time_bin_us: u64) -> Self {
        self.time_bin_us = time_bin_us;
        self
    }

    /// Sets the burstiness parameters (log-normal sigma and AR(1) rho).
    pub fn with_burstiness(mut self, sigma: f64, rho: f64) -> Self {
        self.burstiness_sigma = sigma;
        self.burstiness_rho = rho;
        self
    }

    /// Sets the probability that a packet starts a new flow (flow churn).
    pub fn with_new_flow_probability(mut self, p: f64) -> Self {
        self.new_flow_probability = p;
        self
    }
}

/// State of one active synthetic flow.
#[derive(Debug, Clone)]
struct ActiveFlow {
    tuple: FiveTuple,
    app: AppProtocol,
    remaining: u32,
    sent: u32,
}

/// Pool of payload templates, one set per application protocol.
#[derive(Debug)]
struct PayloadPool {
    templates: Vec<(AppProtocol, Bytes, Bytes)>,
}

impl PayloadPool {
    /// Builds one signature-bearing and one plain template per protocol.
    fn new(rng: &mut StdRng) -> Self {
        let mut templates = Vec::new();
        for &app in &AppProtocol::ALL {
            let mut with_sig = vec![0u8; 1460];
            let mut plain = vec![0u8; 1460];
            rng.fill(&mut with_sig[..]);
            rng.fill(&mut plain[..]);
            // Keep the bytes mostly printable so that string-oriented queries
            // see realistic content.
            for b in with_sig.iter_mut().chain(plain.iter_mut()) {
                *b = 0x20 + (*b % 0x5f);
            }
            if let Some(sig) = app.signature() {
                with_sig[..sig.len()].copy_from_slice(sig);
            }
            templates.push((app, Bytes::from(with_sig), Bytes::from(plain)));
        }
        Self { templates }
    }

    /// Returns a payload slice of `len` bytes for the given application.
    fn payload(&self, app: AppProtocol, len: usize, with_signature: bool) -> Bytes {
        let entry = self
            .templates
            .iter()
            .find(|(a, _, _)| *a == app)
            // lint:allow(no-unwrap): the template table is built over AppProtocol::ALL at construction, so every protocol resolves
            .expect("template exists for every protocol");
        let source = if with_signature { &entry.1 } else { &entry.2 };
        let len = len.min(source.len());
        source.slice(..len)
    }
}

/// Streaming synthetic trace generator.
///
/// Produces one [`Batch`] per call to [`TraceGenerator::next_batch`]. The
/// stream is infinite; callers decide how many batches to consume.
pub struct TraceGenerator {
    config: TraceConfig,
    rng: StdRng,
    bin_index: u64,
    modulation: f64,
    active_flows: Vec<ActiveFlow>,
    host_zipf_internal: Zipf,
    host_zipf_external: Zipf,
    app_cdf: Vec<(AppProtocol, f64)>,
    payloads: PayloadPool,
    /// Anomaly packet injectors consulted at every bin.
    injectors: Vec<crate::anomaly::Anomaly>,
}

impl std::fmt::Debug for TraceGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceGenerator")
            .field("bin_index", &self.bin_index)
            .field("active_flows", &self.active_flows.len())
            .finish_non_exhaustive()
    }
}

impl TraceGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: TraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let host_zipf_internal = Zipf::new(config.internal_hosts.max(1), config.host_zipf_exponent);
        let host_zipf_external = Zipf::new(config.external_hosts.max(1), config.host_zipf_exponent);
        let total_weight: f64 = config.app_mix.iter().map(|(_, w)| *w).sum();
        let mut acc = 0.0;
        let app_cdf = config
            .app_mix
            .iter()
            .map(|(app, w)| {
                acc += w / total_weight;
                (*app, acc)
            })
            .collect();
        let payloads = PayloadPool::new(&mut rng);
        Self {
            config,
            rng,
            bin_index: 0,
            modulation: 1.0,
            active_flows: Vec::new(),
            host_zipf_internal,
            host_zipf_external,
            app_cdf,
            payloads,
            injectors: Vec::new(),
        }
    }

    /// Attaches an anomaly that will inject extra packets into the affected bins.
    pub fn add_anomaly(&mut self, anomaly: crate::anomaly::Anomaly) {
        self.injectors.push(anomaly);
    }

    /// Returns the configuration this generator was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Index of the next bin that will be generated.
    pub fn next_bin_index(&self) -> u64 {
        self.bin_index
    }

    /// Number of currently active flows in the generator state.
    pub fn active_flow_count(&self) -> usize {
        self.active_flows.len()
    }

    /// Generates the next batch of the trace.
    pub fn next_batch(&mut self) -> Batch {
        let bin = self.bin_index;
        self.bin_index += 1;
        let start_ts = bin * self.config.time_bin_us;

        // Update the AR(1) log-normal modulation and the slow diurnal factor.
        let rho = self.config.burstiness_rho.clamp(0.0, 0.999);
        let sigma = self.config.burstiness_sigma.max(0.0);
        let innovation = log_normal(&mut self.rng, -0.5 * sigma * sigma, sigma);
        self.modulation = rho * self.modulation + (1.0 - rho) * innovation;
        let diurnal = 1.0
            + self.config.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * bin as f64
                    / self.config.diurnal_period_bins.max(1) as f64)
                    .sin();
        let mean =
            self.config.mean_packets_per_batch * self.modulation.max(0.05) * diurnal.max(0.1);
        let target = poisson(&mut self.rng, mean) as usize;

        let mut packets = Vec::with_capacity(target + 64);
        for _ in 0..target {
            let packet = self.next_packet(start_ts);
            packets.push(packet);
        }

        // Let every attached anomaly contribute its packets for this bin.
        let injectors = std::mem::take(&mut self.injectors);
        for anomaly in &injectors {
            anomaly.inject(bin, start_ts, self.config.time_bin_us, &mut self.rng, &mut packets);
        }
        self.injectors = injectors;

        packets.sort_by_key(|p| p.ts);
        Batch::new(bin, start_ts, self.config.time_bin_us, packets)
    }

    /// Generates `count` consecutive batches.
    pub fn batches(&mut self, count: usize) -> Vec<Batch> {
        (0..count).map(|_| self.next_batch()).collect()
    }

    fn next_packet(&mut self, start_ts: u64) -> Packet {
        let spawn_new = self.active_flows.is_empty()
            || self.rng.gen::<f64>() < self.config.new_flow_probability;
        let flow_idx = if spawn_new {
            self.spawn_flow();
            self.active_flows.len() - 1
        } else {
            self.rng.gen_range(0..self.active_flows.len())
        };

        let ts = start_ts + self.rng.gen_range(0..self.config.time_bin_us);
        let (tuple, app, flags, exhausted) = {
            let flow = &mut self.active_flows[flow_idx];
            let mut flags = 0u8;
            if flow.tuple.proto == 6 {
                flags = if flow.sent == 0 {
                    TCP_SYN
                } else if flow.remaining == 1 {
                    TCP_ACK | TCP_FIN
                } else {
                    TCP_ACK
                };
            }
            flow.sent += 1;
            flow.remaining = flow.remaining.saturating_sub(1);
            (flow.tuple, flow.app, flags, flow.remaining == 0)
        };
        if exhausted {
            self.active_flows.swap_remove(flow_idx);
        }

        let mean_size = app.mean_packet_size();
        let size = if flags & TCP_SYN != 0 && flags & TCP_ACK == 0 {
            40.0
        } else {
            // Packet sizes roughly bimodal: many small ACK-sized packets plus
            // data packets around the application mean, capped at the MTU.
            if self.rng.gen::<f64>() < 0.3 {
                40.0 + self.rng.gen::<f64>() * 80.0
            } else {
                (mean_size * (0.5 + self.rng.gen::<f64>())).min(1500.0)
            }
        };
        let ip_len = size.max(40.0) as u32;

        let payload = if self.config.payloads && ip_len > 60 {
            let payload_len = (ip_len as usize).saturating_sub(40);
            let with_sig = self.rng.gen::<f64>() < self.config.signature_fraction;
            Some(self.payloads.payload(app, payload_len, with_sig))
        } else {
            None
        };

        Packet { ts, tuple, ip_len, tcp_flags: flags, payload }
    }

    fn spawn_flow(&mut self) {
        let app = self.pick_app();
        let client_rank = self.host_zipf_internal.sample(&mut self.rng) as u32;
        let server_rank = self.host_zipf_external.sample(&mut self.rng) as u32;
        // Internal hosts live in 10.0.0.0/8, external hosts in 128.0.0.0/2.
        let client_ip = 0x0a00_0000 | (client_rank & 0x00ff_ffff);
        let server_ip = 0x8000_0000 | server_rank;
        let client_port = self.rng.gen_range(1024..=65535u16);
        // Half of the flows are outbound (client inside), half inbound.
        let outbound = self.rng.gen::<bool>();
        let tuple = if outbound {
            FiveTuple::new(client_ip, server_ip, client_port, app.server_port(), app.ip_proto())
        } else {
            FiveTuple::new(server_ip, client_ip, app.server_port(), client_port, app.ip_proto())
        };
        let length = pareto(
            &mut self.rng,
            self.config.flow_length_min.max(1.0),
            self.config.flow_length_alpha,
        )
        .min(100_000.0) as u32;
        self.active_flows.push(ActiveFlow { tuple, app, remaining: length.max(1), sent: 0 });
    }

    fn pick_app(&mut self) -> AppProtocol {
        let u: f64 = self.rng.gen();
        for (app, cum) in &self.app_cdf {
            if u <= *cum {
                return *app;
            }
        }
        self.app_cdf.last().map_or(AppProtocol::Other, |(app, _)| *app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let mut g1 = TraceGenerator::new(TraceConfig::default().with_seed(9));
        let mut g2 = TraceGenerator::new(TraceConfig::default().with_seed(9));
        for _ in 0..5 {
            let b1 = g1.next_batch();
            let b2 = g2.next_batch();
            assert_eq!(b1.len(), b2.len());
            assert_eq!(b1.packets.as_ref(), b2.packets.as_ref());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = TraceGenerator::new(TraceConfig::default().with_seed(1));
        let mut g2 = TraceGenerator::new(TraceConfig::default().with_seed(2));
        let b1 = g1.next_batch();
        let b2 = g2.next_batch();
        assert_ne!(b1.packets.as_ref(), b2.packets.as_ref());
    }

    #[test]
    fn mean_load_tracks_configuration() {
        let config = TraceConfig::default()
            .with_seed(5)
            .with_mean_packets_per_batch(300.0)
            .with_burstiness(0.1, 0.5);
        let mut g = TraceGenerator::new(config);
        let batches = g.batches(200);
        let mean = batches.iter().map(|b| b.len() as f64).sum::<f64>() / 200.0;
        assert!(
            (mean - 300.0).abs() < 90.0,
            "mean packets per batch {mean} too far from configured 300"
        );
    }

    #[test]
    fn timestamps_are_within_the_bin_and_sorted() {
        let mut g = TraceGenerator::new(TraceConfig::default().with_seed(11));
        for _ in 0..5 {
            let batch = g.next_batch();
            let mut last = batch.start_ts;
            for p in batch.packets.iter() {
                assert!(p.ts() >= batch.start_ts && p.ts() < batch.end_ts());
                assert!(p.ts() >= last);
                last = p.ts();
            }
        }
    }

    #[test]
    fn payload_traces_carry_payloads_and_signatures() {
        let config = TraceConfig::default().with_seed(3).with_payloads(true);
        let mut g = TraceGenerator::new(config);
        let batches = g.batches(20);
        let with_payload =
            batches.iter().flat_map(|b| b.packets.iter()).filter(|p| p.payload().is_some()).count();
        assert!(with_payload > 0, "payload-enabled trace produced no payloads");
        let with_sig = batches
            .iter()
            .flat_map(|b| b.packets.iter())
            .filter_map(|p| p.payload())
            .filter(|pl| {
                pl.windows(b"BitTorrent protocol".len()).any(|w| w == b"BitTorrent protocol")
            })
            .count();
        assert!(with_sig > 0, "no BitTorrent signatures found in payload trace");
    }

    #[test]
    fn header_only_traces_have_no_payloads() {
        let mut g = TraceGenerator::new(TraceConfig::default().with_seed(3));
        let batch = g.next_batch();
        assert!(batch.packets.iter().all(|p| p.payload().is_none()));
    }

    #[test]
    fn flows_have_syn_and_fin_for_tcp() {
        let mut g = TraceGenerator::new(TraceConfig::default().with_seed(13));
        let batches = g.batches(50);
        let syns = batches
            .iter()
            .flat_map(|b| b.packets.iter())
            .filter(crate::batch::PacketRef::is_syn)
            .count();
        assert!(syns > 0, "expected some SYN packets");
    }
}
