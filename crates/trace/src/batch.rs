//! Batches: the unit of work of the monitoring system.
//!
//! The CoMo-based system of the paper groups every 100 ms of traffic into a
//! *batch* and runs the prediction / load-shedding / query-execution cycle
//! once per batch (Section 3.1). A [`Batch`] owns its packets through a
//! shared [`PacketStore`]; the load shedders produce [`BatchView`]s — index
//! lists over the same store — rather than copying packets, so that per-query
//! sampling rates can differ (Chapter 5) without per-query packet clones.
//!
//! # Memory layout
//!
//! The store is *struct-of-arrays*: timestamps, five-tuples, IP lengths, TCP
//! flags, serialised 13-byte flow keys and (lazily) the per-packet
//! [`AggregateHashes`] rows each live in their own dense column, built once
//! at construction. Consumers that stream one attribute — [`BatchStats`]
//! accumulation, flow-key hashing, the fused feature extractor — walk a
//! contiguous column instead of striding over a packet struct, and payload
//! bytes (the one cold, variable-width attribute) never pollute the hot
//! columns. Individual packets are addressed through the cheap [`PacketRef`]
//! accessor; [`Packet`] remains the construction and interop type.
//!
//! Derived data computed at most once per batch, shared by every view:
//!
//! * [`BatchStats`] (packet/byte/flag totals) — accumulated eagerly while the
//!   columns are filled,
//! * the serialised 13-byte flow keys used by flowwise sampling — an eager
//!   column,
//! * the per-packet [`AggregateHashes`] side rows feeding the fused feature
//!   extractor (the "hash once" invariant) — lazy, because the hash seed is
//!   extractor configuration the store cannot know at construction.
//!
//! Steady-state sampling is allocation-free: a [`KeepListPool`] recycles both
//! the keep-index buffers and their `Arc` control blocks, so
//! [`BatchView::filter_indexed_with`] performs no heap allocation once the
//! pool is warm (see DESIGN.md, "Memory plane").

use crate::aggregate::AggregateHashes;
use crate::packet::{FiveTuple, Packet, Timestamp, TCP_ACK, TCP_SYN};
use bytes::Bytes;
use netshed_sketch::hash_bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Fixed seed of the symmetric host-pair shard keys (see
/// [`PacketStore::shard_keys`]). Deliberately *not* configurable: the shard
/// routing must agree across every component of a deployment (front end,
/// checkpoint restore, replay verification), so the seed is part of the wire
/// contract like the `.nstr` frame checksum seed.
const SHARD_KEY_SEED: u64 = 0x7368_6172_644b_6579; // "shardKey"

/// The shard-routing key of a five-tuple: a hash of the *unordered*
/// `{src_ip, dst_ip}` host pair.
///
/// Symmetry (both directions of a conversation yield the same key) keeps the
/// canonical flows of the P2P detector and the per-pair state of the
/// super-sources query shard-atomic; hashing hosts rather than full tuples
/// keeps every flow of a host pair on one shard regardless of ports. The key
/// is independent of the shard count — lane assignment reduces it modulo the
/// number of lanes, so the key column can be shared by any topology.
pub fn shard_key(tuple: &FiveTuple) -> u64 {
    let (lo, hi) = if tuple.src_ip <= tuple.dst_ip {
        (tuple.src_ip, tuple.dst_ip)
    } else {
        (tuple.dst_ip, tuple.src_ip)
    };
    let mut pair = [0_u8; 8];
    pair[..4].copy_from_slice(&lo.to_be_bytes());
    pair[4..].copy_from_slice(&hi.to_be_bytes());
    hash_bytes(&pair, SHARD_KEY_SEED)
}

/// The owning, reference-counted, struct-of-arrays storage behind a
/// [`Batch`].
///
/// Immutable after construction; the lazy aggregate-hash cache is
/// initialise-once (`OnceLock`) and therefore safe to share across threads.
/// Construct through [`PacketStore::builder`] (one streaming pass that fills
/// every column and the stats) or implicitly through [`Batch::new`].
pub struct PacketStore {
    /// Per-packet timestamps in microseconds, ascending.
    ts: Vec<Timestamp>,
    /// Per-packet five-tuples.
    tuples: Vec<FiveTuple>,
    /// Per-packet IP lengths.
    ip_lens: Vec<u32>,
    /// Per-packet TCP flag bytes (0 for non-TCP).
    tcp_flags: Vec<u8>,
    /// Per-packet serialised 13-byte flow keys (eager: flowwise sampling and
    /// the layout-equivalence tests index this column directly).
    flow_keys: Vec<[u8; 13]>,
    /// Captured payloads. Canonically empty when *no* packet carries one (the
    /// common header-only trace pays nothing for the column); otherwise one
    /// entry per packet.
    payloads: Vec<Option<Bytes>>,
    /// Summary statistics, accumulated while the columns were filled.
    stats: BatchStats,
    /// Aggregate hash rows together with the base seed they were derived
    /// from. In practice every extractor in a process uses one seed, so the
    /// first seed seen claims the cache; other seeds receive a typed
    /// [`HashClaim::SeedMismatch`] and hash the packets they retain
    /// themselves (see [`PacketStore::aggregate_hashes`]).
    aggregate_hashes: OnceLock<(u64, Vec<AggregateHashes>)>,
    /// How often [`PacketStore::aggregate_hashes`] was asked for a seed other
    /// than the one that claimed the cache — telemetry for spotting
    /// misconfigured multi-seed deployments that silently lose the shared
    /// cache (relaxed: a counter, not a synchronisation point).
    seed_misses: AtomicU64,
    /// Per-packet shard-routing keys (see [`shard_key`]). Lazy like the
    /// aggregate-hash rows: single-instance runs never pay for the column,
    /// and the fixed [`SHARD_KEY_SEED`] means there is no seed-claim race to
    /// arbitrate.
    shard_keys: OnceLock<Vec<u64>>,
}

/// Streaming constructor for a [`PacketStore`]: one pass fills every column
/// and accumulates the [`BatchStats`].
///
/// Used by [`Batch::new`], by [`BatchBuilder`] and by the borrowed `.nstr`
/// decode path, which pushes decoded fields straight into the columns without
/// an intermediate `Vec<Packet>`.
#[derive(Debug, Default)]
pub struct StoreBuilder {
    ts: Vec<Timestamp>,
    tuples: Vec<FiveTuple>,
    ip_lens: Vec<u32>,
    tcp_flags: Vec<u8>,
    flow_keys: Vec<[u8; 13]>,
    payloads: Vec<Option<Bytes>>,
    stats: BatchStats,
}

impl StoreBuilder {
    /// Creates a builder with capacity for `capacity` packets in every hot
    /// column (the payload column is grown only if a payload ever arrives).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ts: Vec::with_capacity(capacity),
            tuples: Vec::with_capacity(capacity),
            ip_lens: Vec::with_capacity(capacity),
            tcp_flags: Vec::with_capacity(capacity),
            flow_keys: Vec::with_capacity(capacity),
            // lint:allow(hot-path-alloc): zero-capacity lazy column, no heap touch
            payloads: Vec::new(),
            stats: BatchStats::default(),
        }
    }

    /// Number of packets pushed so far.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Returns `true` if nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends one packet's fields to the columns.
    pub fn push(
        &mut self,
        ts: Timestamp,
        tuple: FiveTuple,
        ip_len: u32,
        tcp_flags: u8,
        payload: Option<Bytes>,
    ) {
        let payload_len = payload.as_ref().map_or(0, |p| p.len() as u64);
        self.stats.absorb(tuple.proto, tcp_flags, ip_len, payload_len);
        self.flow_keys.push(tuple.as_key());
        if payload.is_some() || !self.payloads.is_empty() {
            // First payload seen: backfill the column so it stays
            // index-aligned. Header-only stores never enter here.
            if self.payloads.len() < self.ts.len() {
                self.payloads.resize(self.ts.len(), None);
            }
            self.payloads.push(payload);
        }
        self.ts.push(ts);
        self.tuples.push(tuple);
        self.ip_lens.push(ip_len);
        self.tcp_flags.push(tcp_flags);
    }

    /// Appends a [`Packet`], consuming it (the payload moves, no byte copy).
    pub fn push_packet(&mut self, packet: Packet) {
        let Packet { ts, tuple, ip_len, tcp_flags, payload } = packet;
        self.push(ts, tuple, ip_len, tcp_flags, payload);
    }

    /// Finalises the columns into an immutable [`PacketStore`].
    pub fn finish(self) -> PacketStore {
        PacketStore {
            ts: self.ts,
            tuples: self.tuples,
            ip_lens: self.ip_lens,
            tcp_flags: self.tcp_flags,
            flow_keys: self.flow_keys,
            payloads: self.payloads,
            stats: self.stats,
            aggregate_hashes: OnceLock::new(),
            seed_misses: AtomicU64::new(0),
            shard_keys: OnceLock::new(),
        }
    }
}

/// Outcome of asking a store for its per-packet aggregate hash rows
/// (see [`PacketStore::aggregate_hashes`]).
#[derive(Debug, Clone, Copy)]
pub enum HashClaim<'a> {
    /// The cache is owned by the requested seed: one row per stored packet,
    /// indexed by store index.
    Rows(&'a [AggregateHashes]),
    /// The cache was already claimed by a different seed; the caller should
    /// hash the packets it actually retains itself. Each mismatch is counted
    /// in [`PacketStore::hash_seed_misses`].
    SeedMismatch {
        /// The seed that owns the cache.
        cached_seed: u64,
    },
}

impl<'a> HashClaim<'a> {
    /// The cached rows, or `None` on a seed mismatch.
    pub fn rows(self) -> Option<&'a [AggregateHashes]> {
        match self {
            HashClaim::Rows(rows) => Some(rows),
            HashClaim::SeedMismatch { .. } => None,
        }
    }
}

impl PacketStore {
    /// Starts a streaming [`StoreBuilder`] with the given packet capacity.
    pub fn builder(capacity: usize) -> StoreBuilder {
        StoreBuilder::with_capacity(capacity)
    }

    /// Builds a store from an owned packet vector (the interop path; the
    /// borrowed `.nstr` decode and the batch builder push columns directly).
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        let mut builder = StoreBuilder::with_capacity(packets.len());
        for packet in packets {
            builder.push_packet(packet);
        }
        builder.finish()
    }

    /// Number of stored packets.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Returns `true` if the store holds no packets.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Cheap accessor for the packet at `index`.
    ///
    /// # Panics
    ///
    /// Panics (via column indexing) if `index >= len()`.
    pub fn get(&self, index: usize) -> PacketRef<'_> {
        debug_assert!(index < self.len());
        PacketRef { store: self, index }
    }

    /// Iterates over the stored packets in timestamp order.
    pub fn iter(&self) -> Packets<'_> {
        Packets { store: self, range: 0..self.len() }
    }

    /// The timestamp column, ascending, in microseconds.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.ts
    }

    /// The five-tuple column.
    pub fn tuples(&self) -> &[FiveTuple] {
        &self.tuples
    }

    /// The IP-length column.
    pub fn ip_lens(&self) -> &[u32] {
        &self.ip_lens
    }

    /// The TCP-flags column (0 for non-TCP packets).
    pub fn tcp_flag_bytes(&self) -> &[u8] {
        &self.tcp_flags
    }

    /// The serialised 13-byte 5-tuple keys of all packets, built once at
    /// construction.
    ///
    /// Flowwise sampling hashes these through a per-query H3 function; the
    /// serialisation itself is query-independent, so it is shared — and
    /// borrowed, so handing it to `q` queries costs nothing per query.
    pub fn flow_keys(&self) -> &[[u8; 13]] {
        &self.flow_keys
    }

    /// The captured payload of the packet at `index`, if any.
    pub fn payload(&self, index: usize) -> Option<&Bytes> {
        self.payloads.get(index).and_then(Option::as_ref)
    }

    /// Returns `true` if at least one stored packet carries a payload.
    pub fn has_payloads(&self) -> bool {
        !self.payloads.is_empty()
    }

    /// Summary statistics over all stored packets, accumulated at
    /// construction.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// The per-packet aggregate hash side rows for the given base seed.
    ///
    /// Computed in a single pass over the tuple column the first time they
    /// are requested and cached for that seed. All in-tree extractors share
    /// one seed, so in practice every call hits the cache and borrows the
    /// rows for free; a consumer running with a *different* seed gets a typed
    /// [`HashClaim::SeedMismatch`] (counted in
    /// [`PacketStore::hash_seed_misses`]) and should hash only the packets it
    /// actually retains (see `FeatureExtractor::extract_view`) rather than
    /// paying for a full-store array per call.
    pub fn aggregate_hashes(&self, base_seed: u64) -> HashClaim<'_> {
        let (cached_seed, rows) = self.aggregate_hashes.get_or_init(|| {
            let hash_row = |t: &FiveTuple| AggregateHashes::compute(t, base_seed);
            // lint:allow(hot-path-alloc): the once-per-batch hash-row build; every later call borrows it
            let rows = self.tuples.iter().map(hash_row).collect();
            (base_seed, rows)
        });
        if *cached_seed == base_seed {
            HashClaim::Rows(rows)
        } else {
            self.seed_misses.fetch_add(1, Ordering::Relaxed);
            HashClaim::SeedMismatch { cached_seed: *cached_seed }
        }
    }

    /// How often [`PacketStore::aggregate_hashes`] was asked for a seed that
    /// does not own the cache (each such call fell back to per-consumer
    /// hashing).
    pub fn hash_seed_misses(&self) -> u64 {
        self.seed_misses.load(Ordering::Relaxed)
    }

    /// The per-packet shard-routing key column (see [`shard_key`]).
    ///
    /// Computed in one pass over the tuple column on first request and cached
    /// for the life of the store, mirroring the aggregate-hash side array:
    /// the front end routes once, and every shard's view borrows the same
    /// column. Keys use the fixed [`SHARD_KEY_SEED`], so unlike the
    /// aggregate-hash cache there is no per-seed claim to negotiate.
    pub fn shard_keys(&self) -> &[u64] {
        self.shard_keys.get_or_init(|| {
            // lint:allow(hot-path-alloc): the once-per-batch key-column build; every later call borrows it
            self.tuples.iter().map(shard_key).collect()
        })
    }

    /// Copies the columns back into owned [`Packet`]s (interop only; payload
    /// bytes are shared, not copied).
    pub fn to_packets(&self) -> Vec<Packet> {
        // lint:allow(hot-path-alloc): interop path for tests and recording, never per-bin
        self.iter().map(|p| p.to_packet()).collect()
    }
}

/// Cheap, copyable accessor for one packet of a [`PacketStore`].
///
/// Reads resolve into the store's columns, so a consumer that touches one
/// attribute pulls only that column through the cache. `PacketRef` is the
/// iteration item of [`BatchView::packets`] and [`PacketStore::iter`];
/// [`Packet`] remains the owned construction/interop type
/// (see [`PacketRef::to_packet`]).
#[derive(Clone, Copy)]
pub struct PacketRef<'a> {
    store: &'a PacketStore,
    index: usize,
}

impl<'a> PacketRef<'a> {
    /// The packet's index into the store's columns (and side arrays).
    pub fn store_index(&self) -> usize {
        self.index
    }

    /// Capture timestamp in microseconds.
    pub fn ts(&self) -> Timestamp {
        self.store.ts[self.index]
    }

    /// The packet's five-tuple.
    pub fn tuple(&self) -> &'a FiveTuple {
        &self.store.tuples[self.index]
    }

    /// Length of the IP packet in bytes.
    pub fn ip_len(&self) -> u32 {
        self.store.ip_lens[self.index]
    }

    /// The raw TCP flag byte (0 for non-TCP packets).
    pub fn tcp_flags(&self) -> u8 {
        self.store.tcp_flags[self.index]
    }

    /// The IP protocol number.
    pub fn proto(&self) -> u8 {
        self.store.tuples[self.index].proto
    }

    /// The captured payload, if any.
    pub fn payload(&self) -> Option<&'a Bytes> {
        self.store.payload(self.index)
    }

    /// Number of captured payload bytes (0 if no payload was captured).
    pub fn payload_len(&self) -> usize {
        self.payload().map_or(0, Bytes::len)
    }

    /// Returns `true` for a pure TCP SYN (SYN set, ACK clear).
    pub fn is_syn(&self) -> bool {
        self.proto() == 6 && self.tcp_flags() & TCP_SYN != 0 && self.tcp_flags() & TCP_ACK == 0
    }

    /// Returns `true` if the packet carries the given IP protocol.
    pub fn is_proto(&self, proto: u8) -> bool {
        self.proto() == proto
    }

    /// The packet's serialised 13-byte flow key (shared store column).
    pub fn flow_key(&self) -> &'a [u8; 13] {
        &self.store.flow_keys[self.index]
    }

    /// Copies the packet out into an owned [`Packet`] (payload bytes are
    /// shared, not copied).
    pub fn to_packet(&self) -> Packet {
        Packet {
            ts: self.ts(),
            tuple: *self.tuple(),
            ip_len: self.ip_len(),
            tcp_flags: self.tcp_flags(),
            payload: self.payload().cloned(),
        }
    }
}

impl std::fmt::Debug for PacketRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketRef")
            .field("index", &self.index)
            .field("ts", &self.ts())
            .field("tuple", self.tuple())
            .finish_non_exhaustive()
    }
}

/// Iterator over the packets of a [`PacketStore`] (see [`PacketStore::iter`]).
#[derive(Debug)]
pub struct Packets<'a> {
    store: &'a PacketStore,
    range: std::ops::Range<usize>,
}

impl<'a> Iterator for Packets<'a> {
    type Item = PacketRef<'a>;

    #[inline]
    fn next(&mut self) -> Option<PacketRef<'a>> {
        let index = self.range.next()?;
        Some(PacketRef { store: self.store, index })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Packets<'_> {}

impl<'a> IntoIterator for &'a PacketStore {
    type Item = PacketRef<'a>;
    type IntoIter = Packets<'a>;

    fn into_iter(self) -> Packets<'a> {
        self.iter()
    }
}

// The execution plane shares one `PacketStore` (through `Batch` and
// `BatchView` clones) across worker threads; the store is immutable after
// construction, its lazy hash cache is `OnceLock`-guarded and the seed-miss
// counter is atomic, so all three types must stay `Send + Sync`.
// Compile-time proof:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PacketStore>();
    assert_send_sync::<Batch>();
    assert_send_sync::<BatchView>();
    assert_send_sync::<KeepListPool>();
};

impl PartialEq for PacketStore {
    fn eq(&self, other: &Self) -> bool {
        // Packet contents only: caches and telemetry are excluded, and the
        // payload column's empty-means-all-header-only form is canonical.
        self.ts == other.ts
            && self.tuples == other.tuples
            && self.ip_lens == other.ip_lens
            && self.tcp_flags == other.tcp_flags
            && self.payloads == other.payloads
    }
}

impl Eq for PacketStore {}

impl std::fmt::Debug for PacketStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketStore").field("packets", &self.len()).finish_non_exhaustive()
    }
}

/// A set of packets collected during one time bin.
///
/// Batches compare with `==` by bin geometry and packet contents (the
/// shared store's caches are excluded), so replay and format round-trip
/// tests can pin streams directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Index of the time bin this batch belongs to (0-based).
    pub bin_index: u64,
    /// Timestamp of the start of the time bin, in microseconds.
    pub start_ts: Timestamp,
    /// Duration of the time bin in microseconds.
    pub duration_us: u64,
    /// Packets captured during the time bin, in timestamp order. Shared with
    /// every [`BatchView`] derived from this batch (cloning a batch never
    /// copies packets).
    pub packets: Arc<PacketStore>,
}

impl Batch {
    /// Creates a batch from a packet vector.
    pub fn new(
        bin_index: u64,
        start_ts: Timestamp,
        duration_us: u64,
        packets: Vec<Packet>,
    ) -> Self {
        Self::from_store(bin_index, start_ts, duration_us, PacketStore::from_packets(packets))
    }

    /// Creates a batch around an already-built column store (the zero-copy
    /// `.nstr` decode constructs stores directly).
    pub fn from_store(
        bin_index: u64,
        start_ts: Timestamp,
        duration_us: u64,
        store: PacketStore,
    ) -> Self {
        Self { bin_index, start_ts, duration_us, packets: Arc::new(store) }
    }

    /// Creates an empty batch for the given time bin.
    pub fn empty(bin_index: u64, start_ts: Timestamp, duration_us: u64) -> Self {
        // lint:allow(hot-path-alloc): a zero-capacity Vec never touches the heap
        Self::new(bin_index, start_ts, duration_us, Vec::new())
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if the batch contains no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total number of IP bytes carried by the batch.
    pub fn total_bytes(&self) -> u64 {
        self.stats().bytes
    }

    /// Total number of captured payload bytes in the batch.
    pub fn total_payload_bytes(&self) -> u64 {
        self.stats().payload_bytes
    }

    /// End timestamp of the time bin (exclusive).
    pub fn end_ts(&self) -> Timestamp {
        self.start_ts + self.duration_us
    }

    /// Returns the measurement interval index this batch belongs to, given the
    /// measurement interval duration in microseconds.
    pub fn measurement_interval(&self, interval_us: u64) -> u64 {
        debug_assert!(interval_us > 0);
        self.start_ts / interval_us
    }

    /// A zero-copy view over all packets of this batch.
    pub fn view(&self) -> BatchView {
        BatchView {
            bin_index: self.bin_index,
            start_ts: self.start_ts,
            duration_us: self.duration_us,
            store: Arc::clone(&self.packets),
            keep: None,
        }
    }

    /// Returns a new batch containing only the packets for which `keep` is true.
    ///
    /// This is the clone-based sampling path the shedders used before
    /// [`BatchView`] existed; it copies every retained packet into a fresh
    /// store. It is kept as the reference implementation that the
    /// shed-equivalence property tests and the view-vs-clone benchmarks
    /// compare against — hot paths should use [`Batch::view`] +
    /// [`BatchView::filter_indexed`] instead.
    ///
    /// The bin index, start timestamp and duration are preserved so the result
    /// still identifies the same time bin.
    pub fn filtered<F: FnMut(PacketRef<'_>) -> bool>(&self, mut keep: F) -> Batch {
        let mut builder = PacketStore::builder(self.len());
        for packet in self.packets.iter() {
            if keep(packet) {
                builder.push(
                    packet.ts(),
                    *packet.tuple(),
                    packet.ip_len(),
                    packet.tcp_flags(),
                    packet.payload().cloned(),
                );
            }
        }
        Batch::from_store(self.bin_index, self.start_ts, self.duration_us, builder.finish())
    }

    /// Splits the batch into `lanes` per-lane sub-batches by shard-routing
    /// key (`lane = shard_key % lanes`, see [`shard_key`]).
    ///
    /// Every sub-batch keeps this batch's bin geometry (`bin_index`,
    /// `start_ts`, `duration_us`), so each lane's monitor observes the same
    /// bin clock and closes measurement intervals on the same bins; lanes
    /// that receive no packets get an empty batch rather than a gap. Within
    /// a lane the original timestamp order is preserved (the split is a
    /// stable partition). Payload bytes are shared, not copied.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn split_shards(&self, lanes: usize) -> Vec<Batch> {
        assert!(lanes > 0, "split_shards needs at least one lane");
        let keys = self.packets.shard_keys();
        let mut builders: Vec<StoreBuilder> = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            builders.push(PacketStore::builder(self.len() / lanes + 1));
        }
        for (packet, key) in self.packets.iter().zip(keys) {
            let lane = (key % lanes as u64) as usize;
            builders[lane].push(
                packet.ts(),
                *packet.tuple(),
                packet.ip_len(),
                packet.tcp_flags(),
                packet.payload().cloned(),
            );
        }
        builders
            .into_iter()
            .map(|b| Batch::from_store(self.bin_index, self.start_ts, self.duration_us, b.finish()))
            .collect() // lint:allow(hot-path-alloc): one lane-batch vector per global bin, not per packet
    }

    /// Summary statistics for the batch, accumulated at construction.
    pub fn stats(&self) -> BatchStats {
        self.packets.stats()
    }

    /// Average bit rate of the batch over the time bin, in megabits per second.
    pub fn load_mbps(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let bits = self.total_bytes() as f64 * 8.0;
        bits / (self.duration_us as f64 / 1e6) / 1e6
    }
}

/// Recycles the keep-index lists behind sampled [`BatchView`]s.
///
/// A pool slot is an `Arc<Vec<u32>>`. While a view derived through
/// [`BatchView::filter_indexed_with`] is alive it shares the slot's `Arc`;
/// once every such view is dropped the slot's strong count returns to one and
/// the *next* sampling call reclaims it — index buffer capacity and `Arc`
/// control block included. A steady state that derives a bounded number of
/// simultaneous views per bin therefore stops allocating entirely once the
/// pool is warm (the property the allocation-guard bench pins).
///
/// The pool itself is plain mutable state: keep one per thread of control
/// (the monitor keeps one for plan-phase sampling and one per query
/// execution state for worker-side sampling).
#[derive(Debug, Default)]
pub struct KeepListPool {
    slots: Vec<Arc<Vec<u32>>>,
}

impl KeepListPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots the pool has grown to (telemetry for tests: a warm
    /// steady state stops growing).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Claims a free slot (strong count 1), clearing its buffer; grows the
    /// pool only when every slot is still shared with a live view.
    fn claim(&mut self) -> usize {
        if let Some(slot) = self.slots.iter().position(|slot| Arc::strong_count(slot) == 1) {
            // Uniquely owned, so `make_mut` clears in place without cloning.
            Arc::make_mut(&mut self.slots[slot]).clear();
            slot
        } else {
            // lint:allow(hot-path-alloc): pool growth — bounded by the peak number of simultaneous views
            self.slots.push(Arc::new(Vec::new()));
            self.slots.len() - 1
        }
    }
}

/// A zero-copy, possibly-sampled view over a batch's packets.
///
/// A view shares the underlying [`PacketStore`] with the batch it was carved
/// from and records which packets it retains as an index list (`None` meaning
/// "all of them"). Sampling a view therefore never copies a packet, and all
/// store-level data (columns, stats, flow keys, aggregate hashes) remains
/// shared across every view of the same batch.
///
/// Ownership rules: views are cheap to clone (two `Arc` bumps at most) and
/// immutable; deriving a narrower view with [`BatchView::filter_indexed`] (or
/// the pooled [`BatchView::filter_indexed_with`]) composes index lists
/// against the *store*, so a view of a view still resolves packets in one
/// hop.
#[derive(Debug, Clone)]
pub struct BatchView {
    bin_index: u64,
    start_ts: Timestamp,
    duration_us: u64,
    store: Arc<PacketStore>,
    /// Store indices retained by this view, ascending; `None` = all packets.
    keep: Option<Arc<Vec<u32>>>,
}

impl BatchView {
    /// Index of the time bin this view belongs to.
    pub fn bin_index(&self) -> u64 {
        self.bin_index
    }

    /// Timestamp of the start of the time bin, in microseconds.
    pub fn start_ts(&self) -> Timestamp {
        self.start_ts
    }

    /// Duration of the time bin in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.duration_us
    }

    /// End timestamp of the time bin (exclusive).
    pub fn end_ts(&self) -> Timestamp {
        self.start_ts + self.duration_us
    }

    /// Returns the measurement interval index this view belongs to.
    pub fn measurement_interval(&self, interval_us: u64) -> u64 {
        debug_assert!(interval_us > 0);
        self.start_ts / interval_us
    }

    /// Number of packets retained by the view.
    pub fn len(&self) -> usize {
        match &self.keep {
            Some(keep) => keep.len(),
            None => self.store.len(),
        }
    }

    /// Returns `true` if the view retains no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the view retains every packet of its store.
    pub fn is_full(&self) -> bool {
        self.keep.is_none()
    }

    /// The shared packet store behind this view.
    pub fn store(&self) -> &Arc<PacketStore> {
        &self.store
    }

    /// Returns `true` if `other` shares this view's packet store (i.e. the
    /// two views were derived from the same batch without copying).
    pub fn shares_store(&self, other: &BatchView) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Iterates over the retained packets in timestamp order.
    pub fn packets(&self) -> impl Iterator<Item = PacketRef<'_>> + '_ {
        self.indexed_packets().map(|(_, p)| p)
    }

    /// Iterates over `(store index, packet)` pairs for the retained packets.
    ///
    /// The store index addresses per-packet side arrays of the *full* batch —
    /// in particular the [`AggregateHashes`] rows and the flow keys — which
    /// is what lets sampled consumers reuse data computed once for the whole
    /// batch.
    pub fn indexed_packets(&self) -> IndexedPackets<'_> {
        IndexedPackets {
            store: &self.store,
            keep: self.keep.as_ref().map(|k| k.as_slice()),
            position: 0,
        }
    }

    /// Iterates over the retained packets' *store indices* without touching
    /// the packets themselves.
    ///
    /// Consumers that only address per-packet side arrays (the aggregate-hash
    /// rows, the flow keys) should prefer this over
    /// [`BatchView::indexed_packets`]: a full view yields `0..len` and a
    /// sampled view walks its keep-list, so no packet memory is pulled
    /// through the cache just to be ignored.
    pub fn store_indices(&self) -> StoreIndices<'_> {
        StoreIndices(match &self.keep {
            Some(keep) => StoreIndicesInner::Kept(keep.iter()),
            None => StoreIndicesInner::Full(0..self.store.len()),
        })
    }

    /// Summary statistics over the retained packets.
    ///
    /// A full view returns the store's stats; a sampled view accumulates its
    /// stats by streaming the keep-list over the columns.
    pub fn stats(&self) -> BatchStats {
        match &self.keep {
            Some(keep) => {
                let mut stats = BatchStats::default();
                for &index in keep.iter() {
                    let index = index as usize;
                    let payload_len = self.store.payload(index).map_or(0, |p| p.len() as u64);
                    stats.absorb(
                        self.store.tuples[index].proto,
                        self.store.tcp_flags[index],
                        self.store.ip_lens[index],
                        payload_len,
                    );
                }
                stats
            }
            None => self.store.stats(),
        }
    }

    /// Total number of IP bytes retained by the view.
    pub fn total_bytes(&self) -> u64 {
        self.stats().bytes
    }

    /// The per-packet aggregate hash side rows of the full store, indexed by
    /// the store indices yielded by [`BatchView::store_indices`], or a typed
    /// [`HashClaim::SeedMismatch`] if the store's cache is claimed by a
    /// different seed.
    pub fn aggregate_hashes(&self, base_seed: u64) -> HashClaim<'_> {
        self.store.aggregate_hashes(base_seed)
    }

    /// The serialised 13-byte flow keys of the full store, indexed by store
    /// indices.
    pub fn flow_keys(&self) -> &[[u8; 13]] {
        self.store.flow_keys()
    }

    /// Derives a narrower view retaining the packets for which `keep` returns
    /// `true`. The closure receives the store index and the packet, in view
    /// order — no packet is copied.
    ///
    /// Allocates a fresh keep list; steady-state callers should prefer
    /// [`BatchView::filter_indexed_with`], which recycles lists through a
    /// [`KeepListPool`].
    pub fn filter_indexed<F: FnMut(usize, PacketRef<'_>) -> bool>(&self, mut keep: F) -> BatchView {
        let mut kept = Vec::with_capacity(self.len());
        for (index, packet) in self.indexed_packets() {
            if keep(index, packet) {
                kept.push(index as u32);
            }
        }
        self.with_keep_arc(Arc::new(kept))
    }

    /// Pooled variant of [`BatchView::filter_indexed`]: the keep list (buffer
    /// *and* `Arc` control block) is claimed from `pool` and returns to it
    /// once the derived view is dropped, so a warm steady state allocates
    /// nothing.
    pub fn filter_indexed_with<F>(&self, pool: &mut KeepListPool, mut keep: F) -> BatchView
    where
        F: FnMut(usize, PacketRef<'_>) -> bool,
    {
        let slot = pool.claim();
        {
            let list = Arc::make_mut(&mut pool.slots[slot]);
            list.reserve(self.len());
            for (index, packet) in self.indexed_packets() {
                if keep(index, packet) {
                    list.push(index as u32);
                }
            }
        }
        self.with_keep_arc(Arc::clone(&pool.slots[slot]))
    }

    /// A view over the same bin retaining no packets.
    pub fn cleared(&self) -> BatchView {
        // lint:allow(hot-path-alloc): convenience path; the pooled `cleared_with` is the steady-state one
        self.with_keep_arc(Arc::new(Vec::new()))
    }

    /// Pooled variant of [`BatchView::cleared`].
    pub fn cleared_with(&self, pool: &mut KeepListPool) -> BatchView {
        let slot = pool.claim();
        self.with_keep_arc(Arc::clone(&pool.slots[slot]))
    }

    fn with_keep_arc(&self, keep: Arc<Vec<u32>>) -> BatchView {
        BatchView {
            bin_index: self.bin_index,
            start_ts: self.start_ts,
            duration_us: self.duration_us,
            store: Arc::clone(&self.store),
            keep: Some(keep),
        }
    }

    /// Copies the retained packets into an owned [`Batch`].
    ///
    /// Only for interoperability (tests, recording sampled streams); the
    /// monitoring hot path never materialises views.
    pub fn materialize(&self) -> Batch {
        let mut builder = PacketStore::builder(self.len());
        for packet in self.packets() {
            builder.push(
                packet.ts(),
                *packet.tuple(),
                packet.ip_len(),
                packet.tcp_flags(),
                packet.payload().cloned(),
            );
        }
        Batch::from_store(self.bin_index, self.start_ts, self.duration_us, builder.finish())
    }
}

/// Iterator over the retained store indices of a [`BatchView`]
/// (see [`BatchView::store_indices`]).
#[derive(Debug)]
pub struct StoreIndices<'a>(StoreIndicesInner<'a>);

#[derive(Debug)]
enum StoreIndicesInner<'a> {
    Full(std::ops::Range<usize>),
    Kept(std::slice::Iter<'a, u32>),
}

impl Iterator for StoreIndices<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match &mut self.0 {
            StoreIndicesInner::Full(range) => range.next(),
            StoreIndicesInner::Kept(iter) => iter.next().map(|&index| index as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            StoreIndicesInner::Full(range) => range.size_hint(),
            StoreIndicesInner::Kept(iter) => iter.size_hint(),
        }
    }
}

impl ExactSizeIterator for StoreIndices<'_> {}

/// Iterator over `(store index, packet)` pairs of a [`BatchView`].
///
/// Only constructed by [`BatchView::indexed_packets`], which guarantees the
/// retained indices are in bounds for the shared store.
#[derive(Debug)]
pub struct IndexedPackets<'a> {
    store: &'a PacketStore,
    /// Retained store indices; `None` = the full store.
    keep: Option<&'a [u32]>,
    position: usize,
}

impl<'a> Iterator for IndexedPackets<'a> {
    type Item = (usize, PacketRef<'a>);

    fn next(&mut self) -> Option<(usize, PacketRef<'a>)> {
        let index = if let Some(keep) = self.keep {
            *keep.get(self.position)? as usize
        } else {
            if self.position >= self.store.len() {
                return None;
            }
            self.position
        };
        self.position += 1;
        Some((index, PacketRef { store: self.store, index }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.keep {
            Some(keep) => keep.len() - self.position,
            None => self.store.len() - self.position,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for IndexedPackets<'_> {}

/// Summary statistics of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of packets.
    pub packets: u64,
    /// Number of IP bytes.
    pub bytes: u64,
    /// Number of captured payload bytes.
    pub payload_bytes: u64,
    /// Number of pure SYN packets (SYN set, ACK clear).
    pub syn_packets: u64,
    /// Number of TCP packets.
    pub tcp_packets: u64,
    /// Number of UDP packets.
    pub udp_packets: u64,
}

impl BatchStats {
    /// Folds one packet's fields in — the single accumulation rule shared by
    /// the store builder and sampled-view stats.
    #[inline]
    fn absorb(&mut self, proto: u8, tcp_flags: u8, ip_len: u32, payload_len: u64) {
        self.packets += 1;
        self.bytes += u64::from(ip_len);
        self.payload_bytes += payload_len;
        if proto == 6 && tcp_flags & TCP_SYN != 0 && tcp_flags & TCP_ACK == 0 {
            self.syn_packets += 1;
        }
        match proto {
            6 => self.tcp_packets += 1,
            17 => self.udp_packets += 1,
            _ => {}
        }
    }
}

/// Error returned by [`BatchBuilder::push_into`] when a packet's timestamp
/// jumps so far ahead of the current bin that closing the gap would emit an
/// unbounded run of empty batches (corrupt timestamps, not a quiet link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimestampJumpError {
    /// The bin the builder was filling when the jump was detected.
    pub current_bin: u64,
    /// The bin the offending packet's timestamp falls into.
    pub packet_bin: u64,
}

impl std::fmt::Display for TimestampJumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packet timestamp jumps from bin {} to bin {} (more than {} empty bins)",
            self.current_bin, self.packet_bin, MAX_GAP_BINS
        )
    }
}

impl std::error::Error for TimestampJumpError {}

/// Maximum number of empty bins a single push may emit to bridge a timestamp
/// gap. At the paper's 100 ms bins this is about seven minutes of silence —
/// any larger jump is treated as corrupt input rather than a quiet link.
pub const MAX_GAP_BINS: u64 = 4096;

/// Accumulates packets into consecutive fixed-duration batches.
///
/// The builder assumes packets are pushed in non-decreasing timestamp order
/// (as delivered by a capture device). The first packet anchors the builder
/// to its time bin, so absolute timestamps (e.g. epoch microseconds) work
/// without emitting empty batches for the eons before the capture started.
/// Whenever a later packet belongs to a later time bin than the one
/// currently being filled, the current batch is closed and returned; empty
/// bins are emitted as empty batches so downstream consumers see a batch per
/// time bin — up to a gap of [`MAX_GAP_BINS`] bins. A larger jump breaks the
/// contiguous-bin guarantee instead of flooding the consumer with empties:
/// [`BatchBuilder::push_into`] reports it as a [`TimestampJumpError`], while
/// the convenience [`BatchBuilder::push`] re-anchors as if the capture had
/// restarted.
///
/// The pending-packet buffer is *drained*, never replaced, when a batch
/// closes, so its capacity is reused across bins: in the steady state
/// [`BatchBuilder::push_into`] allocates only the closed batch's
/// exactly-sized columns.
#[derive(Debug)]
pub struct BatchBuilder {
    duration_us: u64,
    current_bin: u64,
    /// `false` until the first packet anchors `current_bin`.
    anchored: bool,
    pending: Vec<Packet>,
}

impl BatchBuilder {
    /// Creates a builder producing batches of the given time-bin duration.
    pub fn new(duration_us: u64) -> Self {
        assert!(duration_us > 0, "time bin duration must be positive");
        // lint:allow(hot-path-alloc): once-per-source builder construction
        Self { duration_us, current_bin: 0, anchored: false, pending: Vec::new() }
    }

    /// Pushes a packet, appending any batches completed by this push to
    /// `closed`; returns how many batches were appended.
    ///
    /// A single push can complete several batches if the packet timestamp
    /// jumps over one or more empty bins. The caller owns (and can reuse)
    /// the output buffer, so the common case — the packet lands in the bin
    /// currently being filled — performs no allocation at all.
    ///
    /// # Errors
    ///
    /// If the packet's timestamp lies more than [`MAX_GAP_BINS`] bins ahead
    /// of the bin being filled, the push is rejected with
    /// [`TimestampJumpError`]: the packet is *not* consumed and the builder
    /// state is unchanged, so the caller can decide whether to drop the
    /// packet or reset the builder. The first packet ever pushed cannot
    /// trigger this — it anchors the builder to its own bin instead.
    pub fn push_into(
        &mut self,
        packet: Packet,
        closed: &mut Vec<Batch>,
    ) -> Result<usize, TimestampJumpError> {
        let bin = packet.ts / self.duration_us;
        if !self.anchored {
            self.current_bin = bin;
            self.anchored = true;
        }
        if bin > self.current_bin && bin - self.current_bin > MAX_GAP_BINS {
            return Err(TimestampJumpError { current_bin: self.current_bin, packet_bin: bin });
        }
        let mut count = 0;
        while bin > self.current_bin {
            closed.push(self.close_current());
            count += 1;
        }
        self.pending.push(packet);
        Ok(count)
    }

    /// Pushes a packet; returns all batches that were completed by this push.
    ///
    /// Convenience wrapper over [`BatchBuilder::push_into`] that allocates a
    /// fresh output vector only when batches actually close. A timestamp
    /// jump larger than [`MAX_GAP_BINS`] bins is treated as a capture
    /// restart: the bin being filled is closed and the builder re-anchors at
    /// the packet's bin, instead of emitting thousands of empty batches or
    /// failing. Use [`BatchBuilder::push_into`] to detect such jumps
    /// explicitly.
    pub fn push(&mut self, packet: Packet) -> Vec<Batch> {
        // lint:allow(hot-path-alloc): allocating convenience wrapper; `push_into` is the hot path
        let mut closed = Vec::new();
        let bin = packet.ts / self.duration_us;
        if self.anchored && bin > self.current_bin && bin - self.current_bin > MAX_GAP_BINS {
            closed.push(self.close_current());
            self.current_bin = bin;
            self.pending.push(packet);
        } else {
            // lint:allow(no-unwrap): the else-branch condition just established the packet lands in the current bin range
            self.push_into(packet, &mut closed).expect("in-range push cannot fail");
        }
        closed
    }

    /// Closes the batch currently being filled and advances to the next bin.
    ///
    /// Drains (rather than takes) the pending buffer so its capacity is
    /// recycled for the next bin.
    pub fn close_current(&mut self) -> Batch {
        let mut store = PacketStore::builder(self.pending.len());
        for packet in self.pending.drain(..) {
            store.push_packet(packet);
        }
        let batch = Batch::from_store(
            self.current_bin,
            self.current_bin * self.duration_us,
            self.duration_us,
            store.finish(),
        );
        self.current_bin += 1;
        batch
    }

    /// Flushes the final (possibly partial) batch.
    pub fn finish(mut self) -> Batch {
        self.close_current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FiveTuple;

    fn pkt(ts: Timestamp) -> Packet {
        Packet::header_only(ts, FiveTuple::new(1, 2, 3, 4, 6), 100, 0)
    }

    #[test]
    fn shard_key_is_symmetric_and_port_independent() {
        let forward = shard_key(&FiveTuple::new(10, 20, 1111, 80, 6));
        let reverse = shard_key(&FiveTuple::new(20, 10, 80, 1111, 6));
        let other_flow = shard_key(&FiveTuple::new(10, 20, 2222, 443, 17));
        assert_eq!(forward, reverse, "both directions of a conversation share a key");
        assert_eq!(forward, other_flow, "all flows of a host pair share a key");
        assert_ne!(forward, shard_key(&FiveTuple::new(10, 21, 1111, 80, 6)));
    }

    #[test]
    fn split_shards_partitions_by_key_and_keeps_bin_geometry() {
        let packets: Vec<Packet> = (0..64)
            .map(|i| {
                Packet::header_only(1000 + i as u64, FiveTuple::new(i, 1000 + i, 10, 20, 6), 100, 0)
            })
            .collect();
        let batch = Batch::new(7, 1000, 100_000, packets);
        let lanes = batch.split_shards(4);
        assert_eq!(lanes.len(), 4);
        let total: usize = lanes.iter().map(Batch::len).sum();
        assert_eq!(total, batch.len(), "the split is a partition");
        let mut last_ts = [0_u64; 4];
        for (lane, sub) in lanes.iter().enumerate() {
            assert_eq!(sub.bin_index, 7);
            assert_eq!(sub.start_ts, 1000);
            assert_eq!(sub.duration_us, 100_000);
            for packet in sub.packets.iter() {
                assert_eq!(
                    (shard_key(packet.tuple()) % 4) as usize,
                    lane,
                    "every packet lands on the lane of its key"
                );
                assert!(packet.ts() >= last_ts[lane], "the split is order-preserving");
                last_ts[lane] = packet.ts();
            }
        }
    }

    #[test]
    fn split_shards_emits_empty_batches_for_idle_lanes() {
        // One flow: every packet shares one shard key, so exactly one lane is
        // populated and the others still exist (same bin clock, no packets).
        let batch = Batch::new(3, 0, 100_000, vec![pkt(1), pkt(2), pkt(3)]);
        let lanes = batch.split_shards(8);
        assert_eq!(lanes.len(), 8);
        assert_eq!(lanes.iter().filter(|b| !b.is_empty()).count(), 1);
        for sub in &lanes {
            assert_eq!(sub.bin_index, 3);
        }
    }

    #[test]
    fn builder_groups_packets_by_bin() {
        let mut b = BatchBuilder::new(100);
        assert!(b.push(pkt(10)).is_empty());
        assert!(b.push(pkt(50)).is_empty());
        let closed = b.push(pkt(150));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 2);
        assert_eq!(closed[0].bin_index, 0);
        let last = b.finish();
        assert_eq!(last.bin_index, 1);
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn builder_emits_empty_bins_for_gaps() {
        let mut b = BatchBuilder::new(100);
        b.push(pkt(10));
        let closed = b.push(pkt(350));
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].len(), 1);
        assert!(closed[1].is_empty());
        assert!(closed[2].is_empty());
        assert_eq!(closed[2].bin_index, 2);
    }

    #[test]
    fn push_into_reuses_the_caller_buffer() {
        let mut b = BatchBuilder::new(100);
        let mut closed = Vec::new();
        assert_eq!(b.push_into(pkt(10), &mut closed), Ok(0));
        assert_eq!(b.push_into(pkt(250), &mut closed), Ok(2));
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].len(), 1);
        assert!(closed[1].is_empty());
    }

    #[test]
    fn first_packet_anchors_the_builder_to_absolute_timestamps() {
        // Epoch-microsecond timestamps: the first packet must not be treated
        // as a pathological jump, and no leading empty batches are emitted.
        let epoch_us = 1_700_000_000_000_000u64;
        let mut b = BatchBuilder::new(100_000);
        let mut closed = Vec::new();
        assert_eq!(b.push_into(pkt(epoch_us), &mut closed), Ok(0));
        assert_eq!(b.push_into(pkt(epoch_us + 150_000), &mut closed), Ok(1));
        assert_eq!(closed[0].bin_index, epoch_us / 100_000);
        assert_eq!(closed[0].len(), 1);
        let last = b.finish();
        assert_eq!(last.bin_index, epoch_us / 100_000 + 1);
    }

    #[test]
    fn push_reanchors_across_a_pathological_gap_instead_of_failing() {
        // A quiet link (or clock jump) beyond the gap cap: the convenience
        // `push` closes the bin being filled and re-anchors — no panic, no
        // flood of empty batches.
        let mut b = BatchBuilder::new(100);
        b.push(pkt(10));
        let jump_ts = (MAX_GAP_BINS + 50) * 100;
        let closed = b.push(pkt(jump_ts));
        assert_eq!(closed.len(), 1, "only the pre-gap bin is closed");
        assert_eq!(closed[0].bin_index, 0);
        assert_eq!(closed[0].len(), 1);
        let last = b.finish();
        assert_eq!(last.bin_index, jump_ts / 100);
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn pathological_timestamp_jump_is_rejected_without_state_change() {
        let mut b = BatchBuilder::new(100);
        let mut closed = Vec::new();
        b.push_into(pkt(10), &mut closed).expect("in-bin push");
        let jump = pkt((MAX_GAP_BINS + 2) * 100);
        let err = b.push_into(jump.clone(), &mut closed).expect_err("jump must be rejected");
        assert_eq!(err, TimestampJumpError { current_bin: 0, packet_bin: MAX_GAP_BINS + 2 });
        assert!(closed.is_empty(), "no batches may be emitted for a rejected push");
        // The builder is still on bin 0 and accepts in-range packets.
        assert_eq!(b.push_into(pkt(50), &mut closed), Ok(0));
        let last = b.finish();
        assert_eq!(last.bin_index, 0);
        assert_eq!(last.len(), 2);
    }

    #[test]
    fn stats_and_load() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(0, 0, 100_000, packets);
        let stats = batch.stats();
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.tcp_packets, 3);
        // 300 bytes over 100 ms = 2400 bits / 0.1 s = 24 kbit/s = 0.024 Mbps.
        assert!((batch.load_mbps() - 0.024).abs() < 1e-9);
    }

    #[test]
    fn filtered_preserves_bin_identity() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(7, 700_000, 100_000, packets);
        let half = batch.filtered(|p| p.ts() >= 10);
        assert_eq!(half.bin_index, 7);
        assert_eq!(half.start_ts, 700_000);
        assert_eq!(half.len(), 2);
    }

    #[test]
    fn measurement_interval_indexing() {
        let batch = Batch::empty(13, 1_300_000, 100_000);
        assert_eq!(batch.measurement_interval(1_000_000), 1);
    }

    #[test]
    fn columns_mirror_the_source_packets() {
        let tuple = FiveTuple::new(10, 20, 30, 40, 17);
        let packets = vec![
            Packet::header_only(5, tuple, 60, 0),
            Packet::with_payload(
                9,
                FiveTuple::new(1, 2, 3, 4, 6),
                80,
                TCP_SYN,
                Bytes::from_static(b"abc"),
            ),
        ];
        let batch = Batch::new(0, 0, 100_000, packets.clone());
        let store = batch.packets.as_ref();
        assert_eq!(store.timestamps(), &[5, 9]);
        assert_eq!(store.tuples()[0], tuple);
        assert_eq!(store.ip_lens(), &[60, 80]);
        assert_eq!(store.tcp_flag_bytes(), &[0, TCP_SYN]);
        assert_eq!(store.flow_keys()[0], tuple.as_key());
        assert_eq!(store.payload(0), None);
        assert_eq!(store.payload(1).map(bytes::Bytes::as_slice), Some(&b"abc"[..]));
        assert!(store.has_payloads());
        let p1 = store.get(1);
        assert!(p1.is_syn());
        assert_eq!(p1.payload_len(), 3);
        assert_eq!(p1.to_packet(), packets[1]);
        assert_eq!(store.to_packets(), packets);
    }

    #[test]
    fn header_only_stores_keep_no_payload_column() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(1)]);
        assert!(!batch.packets.has_payloads());
        assert_eq!(batch.packets.payload(0), None);
        assert_eq!(batch.total_payload_bytes(), 0);
    }

    #[test]
    fn store_equality_is_by_contents() {
        let a = PacketStore::from_packets(vec![pkt(0), pkt(10)]);
        let b = PacketStore::from_packets(vec![pkt(0), pkt(10)]);
        let c = PacketStore::from_packets(vec![pkt(0), pkt(11)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Claiming a's hash cache must not affect equality.
        let _ = a.aggregate_hashes(1);
        assert_eq!(a, b);
    }

    #[test]
    fn views_share_the_store_and_never_copy() {
        let batch = Batch::new(3, 300_000, 100_000, vec![pkt(0), pkt(10), pkt(20), pkt(30)]);
        let full = batch.view();
        assert!(full.is_full());
        assert_eq!(full.len(), 4);
        assert_eq!(full.bin_index(), 3);

        let odd = full.filter_indexed(|index, _| index % 2 == 1);
        assert!(odd.shares_store(&full));
        assert!(Arc::ptr_eq(odd.store(), &batch.packets));
        assert_eq!(odd.len(), 2);
        let timestamps: Vec<u64> = odd.packets().map(|p| p.ts()).collect();
        assert_eq!(timestamps, vec![10, 30]);
    }

    #[test]
    fn view_of_view_composes_store_indices() {
        let batch = Batch::new(0, 0, 100_000, (0..10).map(|i| pkt(i * 10)).collect());
        let evens = batch.view().filter_indexed(|index, _| index % 2 == 0);
        // Filter the *view*: keep its 2nd and 4th packets (store indices 2, 6).
        let mut seen = Vec::new();
        let narrowed = evens.filter_indexed(|index, _| {
            seen.push(index);
            index == 2 || index == 6
        });
        assert_eq!(seen, vec![0, 2, 4, 6, 8], "closure sees store indices in view order");
        let kept: Vec<usize> = narrowed.indexed_packets().map(|(index, _)| index).collect();
        assert_eq!(kept, vec![2, 6]);
    }

    #[test]
    fn view_stats_cover_only_retained_packets() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(10), pkt(20)]);
        let view = batch.view().filter_indexed(|_, p| p.ts() >= 10);
        assert_eq!(view.total_bytes(), 200);
        assert_eq!(view.stats().packets, 2);
        assert_eq!(batch.view().total_bytes(), 300);
        assert_eq!(view.cleared().len(), 0);
        assert!(view.cleared().is_empty());
    }

    #[test]
    fn materialize_round_trips_the_retained_packets() {
        let batch = Batch::new(5, 500_000, 100_000, vec![pkt(0), pkt(10), pkt(20)]);
        let owned = batch.view().filter_indexed(|_, p| p.ts() != 10).materialize();
        assert_eq!(owned.bin_index, 5);
        assert_eq!(owned.len(), 2);
        assert_eq!(owned.packets.timestamps(), &[0, 20]);
    }

    #[test]
    fn store_caches_are_shared_between_batch_and_views() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(10)]);
        let store = Arc::clone(&batch.packets);
        let claim_a = store.aggregate_hashes(42);
        let rows_a = claim_a.rows().expect("first seed claims the cache");
        let sampled = batch.view().filter_indexed(|_, _| true);
        let rows_b = sampled.aggregate_hashes(42).rows().expect("cache hit");
        assert!(std::ptr::eq(rows_a.as_ptr(), rows_b.as_ptr()), "same seed must hit the cache");
        assert_eq!(rows_a[0], AggregateHashes::compute(&batch.packets.tuples()[0], 42));
        let keys_a = batch.view().flow_keys().as_ptr();
        let keys_b = batch.view().flow_keys().as_ptr();
        assert!(std::ptr::eq(keys_a, keys_b));
        assert_eq!(batch.packets.flow_keys()[1], batch.packets.tuples()[1].as_key());
    }

    #[test]
    fn second_seed_gets_a_typed_mismatch_and_is_counted() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(10)]);
        assert_eq!(batch.packets.hash_seed_misses(), 0);
        assert!(batch.view().aggregate_hashes(42).rows().is_some());
        // A different seed does not thrash the cache: the caller is handed
        // the owning seed and told to hash the packets it retains itself.
        match batch.view().aggregate_hashes(43) {
            HashClaim::SeedMismatch { cached_seed } => assert_eq!(cached_seed, 42),
            HashClaim::Rows(_) => panic!("a second seed must not steal the cache"),
        }
        assert_eq!(batch.packets.hash_seed_misses(), 1);
        let _ = batch.view().aggregate_hashes(44);
        assert_eq!(batch.packets.hash_seed_misses(), 2);
        // The owning seed still hits.
        assert!(batch.view().aggregate_hashes(42).rows().is_some());
        assert_eq!(batch.packets.hash_seed_misses(), 2);
    }

    #[test]
    fn keep_list_pool_recycles_slots_across_bins() {
        let batch = Batch::new(0, 0, 100_000, (0..100).map(pkt).collect());
        let mut pool = KeepListPool::new();
        for round in 0..50 {
            let view = batch.view().filter_indexed_with(&mut pool, |index, _| index % 3 == 0);
            assert_eq!(view.len(), 34, "round {round}");
            let empty = view.cleared_with(&mut pool);
            assert!(empty.is_empty());
            // Both views drop here, releasing their slots.
        }
        assert!(
            pool.slots() <= 2,
            "a steady two-view cycle must not grow the pool: {}",
            pool.slots()
        );
    }

    #[test]
    fn pooled_filtering_matches_the_allocating_path() {
        let batch = Batch::new(0, 0, 100_000, (0..40).map(pkt).collect());
        let mut pool = KeepListPool::new();
        let plain = batch.view().filter_indexed(|index, _| index % 7 != 0);
        let pooled = batch.view().filter_indexed_with(&mut pool, |index, _| index % 7 != 0);
        assert_eq!(
            plain.store_indices().collect::<Vec<_>>(),
            pooled.store_indices().collect::<Vec<_>>()
        );
        assert_eq!(plain.stats(), pooled.stats());
    }

    #[test]
    fn pool_grows_only_while_views_are_live() {
        let batch = Batch::new(0, 0, 100_000, (0..10).map(pkt).collect());
        let mut pool = KeepListPool::new();
        let a = batch.view().filter_indexed_with(&mut pool, |_, _| true);
        let b = batch.view().filter_indexed_with(&mut pool, |_, _| true);
        assert_eq!(pool.slots(), 2, "live views hold their slots");
        drop(a);
        drop(b);
        let c = batch.view().filter_indexed_with(&mut pool, |_, _| true);
        assert_eq!(pool.slots(), 2, "released slots are reclaimed before growing");
        drop(c);
    }

    #[test]
    fn store_builder_matches_packet_at_a_time_construction() {
        let packets: Vec<Packet> = (0..50)
            .map(|i| {
                let tuple =
                    FiveTuple::new(i, i * 2, (i % 7) as u16, 80, if i % 3 == 0 { 17 } else { 6 });
                if i % 5 == 0 {
                    Packet::with_payload(
                        u64::from(i),
                        tuple,
                        100 + i,
                        TCP_SYN,
                        Bytes::from(vec![i as u8; 3]),
                    )
                } else {
                    Packet::header_only(u64::from(i), tuple, 100 + i, 0)
                }
            })
            .collect();
        let via_vec = PacketStore::from_packets(packets.clone());
        let mut builder = PacketStore::builder(packets.len());
        for p in &packets {
            builder.push(p.ts, p.tuple, p.ip_len, p.tcp_flags, p.payload.clone());
        }
        let via_builder = builder.finish();
        assert_eq!(via_vec, via_builder);
        assert_eq!(via_vec.stats(), via_builder.stats());
        assert_eq!(via_vec.flow_keys(), via_builder.flow_keys());
    }
}
