//! Batches: the unit of work of the monitoring system.
//!
//! The CoMo-based system of the paper groups every 100 ms of traffic into a
//! *batch* and runs the prediction / load-shedding / query-execution cycle
//! once per batch (Section 3.1). A [`Batch`] owns its packets through a
//! shared [`PacketStore`]; the load shedders produce [`BatchView`]s — index
//! lists over the same store — rather than copying packets, so that per-query
//! sampling rates can differ (Chapter 5) without per-query packet clones.
//!
//! The store also memoises the batch-level derived data that the single-pass
//! data plane computes at most once per batch, regardless of how many queries
//! and re-extractions consume it afterwards:
//!
//! * [`BatchStats`] (packet/byte/flag totals),
//! * the serialised 13-byte flow keys used by flowwise sampling,
//! * the per-packet [`AggregateHashes`] side array feeding the fused feature
//!   extractor (the "hash once" invariant).

use crate::aggregate::AggregateHashes;
use crate::packet::{Packet, Timestamp};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// The owning, reference-counted storage behind a [`Batch`].
///
/// All derived per-batch data (stats, flow keys, aggregate hashes) is cached
/// here lazily, so every consumer sharing the store — the batch itself and
/// every [`BatchView`] carved out of it — pays for each computation at most
/// once. The store is immutable after construction; the caches are
/// initialise-once (`OnceLock`) and therefore safe to share across threads.
pub struct PacketStore {
    packets: Vec<Packet>,
    stats: OnceLock<BatchStats>,
    flow_keys: OnceLock<Arc<[[u8; 13]]>>,
    /// Aggregate hash rows together with the base seed they were derived
    /// from. In practice every extractor in a process uses one seed, so the
    /// first seed seen claims the cache; other seeds are told to hash the
    /// packets they retain themselves (see [`PacketStore::aggregate_hashes`]).
    aggregate_hashes: OnceLock<(u64, Arc<[AggregateHashes]>)>,
}

impl PacketStore {
    fn new(packets: Vec<Packet>) -> Self {
        Self {
            packets,
            stats: OnceLock::new(),
            flow_keys: OnceLock::new(),
            aggregate_hashes: OnceLock::new(),
        }
    }

    /// The stored packets, in timestamp order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Summary statistics over all stored packets, computed once and cached.
    pub fn stats(&self) -> BatchStats {
        *self.stats.get_or_init(|| BatchStats::over(self.packets.iter()))
    }

    /// The serialised 13-byte 5-tuple keys of all packets, computed once.
    ///
    /// Flowwise sampling hashes these through a per-query H3 function; the
    /// serialisation itself is query-independent, so it is shared.
    pub fn flow_keys(&self) -> Arc<[[u8; 13]]> {
        self.flow_keys
            .get_or_init(|| self.packets.iter().map(|p| p.tuple.as_key()).collect())
            .clone()
    }

    /// The per-packet aggregate hash side array for the given base seed, or
    /// `None` if the cache was already claimed by a different seed.
    ///
    /// Computed in a single pass over the packets the first time it is
    /// requested and cached for that seed. All in-tree extractors share one
    /// seed, so in practice every call hits the cache; a consumer running
    /// with a *different* seed gets `None` and should hash only the packets
    /// it actually retains (see `FeatureExtractor::extract_view`) rather
    /// than paying for a full-store array per call.
    pub fn aggregate_hashes(&self, base_seed: u64) -> Option<Arc<[AggregateHashes]>> {
        let (cached_seed, rows) = self.aggregate_hashes.get_or_init(|| {
            let rows = self
                .packets
                .iter()
                .map(|p| AggregateHashes::compute(&p.tuple, base_seed))
                .collect();
            (base_seed, rows)
        });
        (*cached_seed == base_seed).then(|| rows.clone())
    }
}

// The execution plane shares one `PacketStore` (through `Batch` and
// `BatchView` clones) across worker threads; the store is immutable after
// construction and its lazy caches are `OnceLock`-guarded, so all three types
// must stay `Send + Sync`. Compile-time proof:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PacketStore>();
    assert_send_sync::<Batch>();
    assert_send_sync::<BatchView>();
};

impl Deref for PacketStore {
    type Target = [Packet];

    fn deref(&self) -> &[Packet] {
        &self.packets
    }
}

impl PartialEq for PacketStore {
    fn eq(&self, other: &Self) -> bool {
        self.packets == other.packets
    }
}

impl Eq for PacketStore {}

impl std::fmt::Debug for PacketStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketStore").field("packets", &self.packets.len()).finish_non_exhaustive()
    }
}

/// A set of packets collected during one time bin.
///
/// Batches compare with `==` by bin geometry and packet contents (the
/// shared store's caches are excluded), so replay and format round-trip
/// tests can pin streams directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Index of the time bin this batch belongs to (0-based).
    pub bin_index: u64,
    /// Timestamp of the start of the time bin, in microseconds.
    pub start_ts: Timestamp,
    /// Duration of the time bin in microseconds.
    pub duration_us: u64,
    /// Packets captured during the time bin, in timestamp order. Shared with
    /// every [`BatchView`] derived from this batch (cloning a batch never
    /// copies packets).
    pub packets: Arc<PacketStore>,
}

impl Batch {
    /// Creates a batch from a packet vector.
    pub fn new(
        bin_index: u64,
        start_ts: Timestamp,
        duration_us: u64,
        packets: Vec<Packet>,
    ) -> Self {
        Self { bin_index, start_ts, duration_us, packets: Arc::new(PacketStore::new(packets)) }
    }

    /// Creates an empty batch for the given time bin.
    pub fn empty(bin_index: u64, start_ts: Timestamp, duration_us: u64) -> Self {
        Self::new(bin_index, start_ts, duration_us, Vec::new())
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if the batch contains no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total number of IP bytes carried by the batch.
    pub fn total_bytes(&self) -> u64 {
        self.stats().bytes
    }

    /// Total number of captured payload bytes in the batch.
    pub fn total_payload_bytes(&self) -> u64 {
        self.stats().payload_bytes
    }

    /// End timestamp of the time bin (exclusive).
    pub fn end_ts(&self) -> Timestamp {
        self.start_ts + self.duration_us
    }

    /// Returns the measurement interval index this batch belongs to, given the
    /// measurement interval duration in microseconds.
    pub fn measurement_interval(&self, interval_us: u64) -> u64 {
        debug_assert!(interval_us > 0);
        self.start_ts / interval_us
    }

    /// A zero-copy view over all packets of this batch.
    pub fn view(&self) -> BatchView {
        BatchView {
            bin_index: self.bin_index,
            start_ts: self.start_ts,
            duration_us: self.duration_us,
            store: Arc::clone(&self.packets),
            keep: None,
        }
    }

    /// Returns a new batch containing only the packets for which `keep` is true.
    ///
    /// This is the clone-based sampling path the shedders used before
    /// [`BatchView`] existed; it copies every retained packet into a fresh
    /// store. It is kept as the reference implementation that the
    /// shed-equivalence property tests and the view-vs-clone benchmarks
    /// compare against — hot paths should use [`Batch::view`] +
    /// [`BatchView::filter_indexed`] instead.
    ///
    /// The bin index, start timestamp and duration are preserved so the result
    /// still identifies the same time bin.
    pub fn filtered<F: FnMut(&Packet) -> bool>(&self, mut keep: F) -> Batch {
        let packets: Vec<Packet> = self.packets.iter().filter(|p| keep(p)).cloned().collect();
        Batch::new(self.bin_index, self.start_ts, self.duration_us, packets)
    }

    /// Summary statistics for the batch, computed once and cached.
    pub fn stats(&self) -> BatchStats {
        self.packets.stats()
    }

    /// Average bit rate of the batch over the time bin, in megabits per second.
    pub fn load_mbps(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let bits = self.total_bytes() as f64 * 8.0;
        bits / (self.duration_us as f64 / 1e6) / 1e6
    }
}

/// A zero-copy, possibly-sampled view over a batch's packets.
///
/// A view shares the underlying [`PacketStore`] with the batch it was carved
/// from and records which packets it retains as an index list (`None` meaning
/// "all of them"). Sampling a view therefore never copies a packet, and all
/// store-level caches (stats, flow keys, aggregate hashes) remain shared
/// across every view of the same batch.
///
/// Ownership rules: views are cheap to clone (two `Arc` bumps at most) and
/// immutable; deriving a narrower view with [`BatchView::filter_indexed`]
/// composes index lists against the *store*, so a view of a view still
/// resolves packets in one hop.
#[derive(Debug, Clone)]
pub struct BatchView {
    bin_index: u64,
    start_ts: Timestamp,
    duration_us: u64,
    store: Arc<PacketStore>,
    /// Store indices retained by this view, ascending; `None` = all packets.
    keep: Option<Arc<Vec<u32>>>,
}

impl BatchView {
    /// Index of the time bin this view belongs to.
    pub fn bin_index(&self) -> u64 {
        self.bin_index
    }

    /// Timestamp of the start of the time bin, in microseconds.
    pub fn start_ts(&self) -> Timestamp {
        self.start_ts
    }

    /// Duration of the time bin in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.duration_us
    }

    /// End timestamp of the time bin (exclusive).
    pub fn end_ts(&self) -> Timestamp {
        self.start_ts + self.duration_us
    }

    /// Returns the measurement interval index this view belongs to.
    pub fn measurement_interval(&self, interval_us: u64) -> u64 {
        debug_assert!(interval_us > 0);
        self.start_ts / interval_us
    }

    /// Number of packets retained by the view.
    pub fn len(&self) -> usize {
        match &self.keep {
            Some(keep) => keep.len(),
            None => self.store.len(),
        }
    }

    /// Returns `true` if the view retains no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the view retains every packet of its store.
    pub fn is_full(&self) -> bool {
        self.keep.is_none()
    }

    /// The shared packet store behind this view.
    pub fn store(&self) -> &Arc<PacketStore> {
        &self.store
    }

    /// Returns `true` if `other` shares this view's packet store (i.e. the
    /// two views were derived from the same batch without copying).
    pub fn shares_store(&self, other: &BatchView) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Iterates over the retained packets in timestamp order.
    pub fn packets(&self) -> impl Iterator<Item = &Packet> + '_ {
        self.indexed_packets().map(|(_, p)| p)
    }

    /// Iterates over `(store index, packet)` pairs for the retained packets.
    ///
    /// The store index addresses per-packet side arrays of the *full* batch —
    /// in particular the [`AggregateHashes`] rows and the flow keys — which
    /// is what lets sampled consumers reuse data computed once for the whole
    /// batch.
    pub fn indexed_packets(&self) -> IndexedPackets<'_> {
        match &self.keep {
            Some(keep) => {
                IndexedPackets(IndexedPacketsInner::Kept { store: &self.store, keep, position: 0 })
            }
            None => IndexedPackets(IndexedPacketsInner::Full(self.store.iter().enumerate())),
        }
    }

    /// Iterates over the retained packets' *store indices* without touching
    /// the packets themselves.
    ///
    /// Consumers that only address per-packet side arrays (the aggregate-hash
    /// rows, the flow keys) should prefer this over
    /// [`BatchView::indexed_packets`]: a full view yields `0..len` and a
    /// sampled view walks its keep-list, so no packet memory is pulled
    /// through the cache just to be ignored.
    pub fn store_indices(&self) -> StoreIndices<'_> {
        StoreIndices(match &self.keep {
            Some(keep) => StoreIndicesInner::Kept(keep.iter()),
            None => StoreIndicesInner::Full(0..self.store.len()),
        })
    }

    /// Summary statistics over the retained packets.
    ///
    /// A full view returns the store's cached stats; a sampled view computes
    /// its stats over the retained packets only.
    pub fn stats(&self) -> BatchStats {
        match &self.keep {
            Some(_) => BatchStats::over(self.packets()),
            None => self.store.stats(),
        }
    }

    /// Total number of IP bytes retained by the view.
    pub fn total_bytes(&self) -> u64 {
        self.stats().bytes
    }

    /// The per-packet aggregate hash side array of the full store, indexed by
    /// the store indices yielded by [`BatchView::indexed_packets`], or `None`
    /// if the store's cache is claimed by a different seed.
    pub fn aggregate_hashes(&self, base_seed: u64) -> Option<Arc<[AggregateHashes]>> {
        self.store.aggregate_hashes(base_seed)
    }

    /// The serialised 13-byte flow keys of the full store, indexed by store
    /// indices.
    pub fn flow_keys(&self) -> Arc<[[u8; 13]]> {
        self.store.flow_keys()
    }

    /// Derives a narrower view retaining the packets for which `keep` returns
    /// `true`. The closure receives the store index and the packet, in view
    /// order — no packet is copied.
    pub fn filter_indexed<F: FnMut(usize, &Packet) -> bool>(&self, mut keep: F) -> BatchView {
        let mut kept = Vec::with_capacity(self.len());
        for (index, packet) in self.indexed_packets() {
            if keep(index, packet) {
                kept.push(index as u32);
            }
        }
        self.with_keep(kept)
    }

    /// A view over the same bin retaining no packets.
    pub fn cleared(&self) -> BatchView {
        self.with_keep(Vec::new())
    }

    fn with_keep(&self, kept: Vec<u32>) -> BatchView {
        BatchView {
            bin_index: self.bin_index,
            start_ts: self.start_ts,
            duration_us: self.duration_us,
            store: Arc::clone(&self.store),
            keep: Some(Arc::new(kept)),
        }
    }

    /// Copies the retained packets into an owned [`Batch`].
    ///
    /// Only for interoperability (tests, recording sampled streams); the
    /// monitoring hot path never materialises views.
    pub fn materialize(&self) -> Batch {
        Batch::new(
            self.bin_index,
            self.start_ts,
            self.duration_us,
            self.packets().cloned().collect(),
        )
    }
}

/// Iterator over the retained store indices of a [`BatchView`]
/// (see [`BatchView::store_indices`]).
#[derive(Debug)]
pub struct StoreIndices<'a>(StoreIndicesInner<'a>);

#[derive(Debug)]
enum StoreIndicesInner<'a> {
    Full(std::ops::Range<usize>),
    Kept(std::slice::Iter<'a, u32>),
}

impl Iterator for StoreIndices<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match &mut self.0 {
            StoreIndicesInner::Full(range) => range.next(),
            StoreIndicesInner::Kept(iter) => iter.next().map(|&index| index as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            StoreIndicesInner::Full(range) => range.size_hint(),
            StoreIndicesInner::Kept(iter) => iter.size_hint(),
        }
    }
}

impl ExactSizeIterator for StoreIndices<'_> {}

/// Iterator over `(store index, packet)` pairs of a [`BatchView`].
///
/// Only constructed by [`BatchView::indexed_packets`], which guarantees the
/// retained indices are in bounds for the shared store.
#[derive(Debug)]
pub struct IndexedPackets<'a>(IndexedPacketsInner<'a>);

#[derive(Debug)]
enum IndexedPacketsInner<'a> {
    /// Full view: every packet of the store, in order.
    Full(std::iter::Enumerate<std::slice::Iter<'a, Packet>>),
    /// Sampled view: the retained store indices, in order.
    Kept { store: &'a PacketStore, keep: &'a [u32], position: usize },
}

impl<'a> Iterator for IndexedPackets<'a> {
    type Item = (usize, &'a Packet);

    fn next(&mut self) -> Option<(usize, &'a Packet)> {
        match &mut self.0 {
            IndexedPacketsInner::Full(iter) => iter.next(),
            IndexedPacketsInner::Kept { store, keep, position } => {
                let index = *keep.get(*position)? as usize;
                *position += 1;
                Some((index, &store.packets()[index]))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            IndexedPacketsInner::Full(iter) => iter.size_hint(),
            IndexedPacketsInner::Kept { keep, position, .. } => {
                let remaining = keep.len() - *position;
                (remaining, Some(remaining))
            }
        }
    }
}

impl ExactSizeIterator for IndexedPackets<'_> {}

/// Summary statistics of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of packets.
    pub packets: u64,
    /// Number of IP bytes.
    pub bytes: u64,
    /// Number of captured payload bytes.
    pub payload_bytes: u64,
    /// Number of pure SYN packets (SYN set, ACK clear).
    pub syn_packets: u64,
    /// Number of TCP packets.
    pub tcp_packets: u64,
    /// Number of UDP packets.
    pub udp_packets: u64,
}

impl BatchStats {
    /// Accumulates statistics over a packet iterator.
    fn over<'a, I: Iterator<Item = &'a Packet>>(packets: I) -> BatchStats {
        let mut stats = BatchStats::default();
        for p in packets {
            stats.packets += 1;
            stats.bytes += u64::from(p.ip_len);
            stats.payload_bytes += p.payload_len() as u64;
            if p.is_syn() {
                stats.syn_packets += 1;
            }
            match p.tuple.proto {
                6 => stats.tcp_packets += 1,
                17 => stats.udp_packets += 1,
                _ => {}
            }
        }
        stats
    }
}

/// Error returned by [`BatchBuilder::push_into`] when a packet's timestamp
/// jumps so far ahead of the current bin that closing the gap would emit an
/// unbounded run of empty batches (corrupt timestamps, not a quiet link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimestampJumpError {
    /// The bin the builder was filling when the jump was detected.
    pub current_bin: u64,
    /// The bin the offending packet's timestamp falls into.
    pub packet_bin: u64,
}

impl std::fmt::Display for TimestampJumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packet timestamp jumps from bin {} to bin {} (more than {} empty bins)",
            self.current_bin, self.packet_bin, MAX_GAP_BINS
        )
    }
}

impl std::error::Error for TimestampJumpError {}

/// Maximum number of empty bins a single push may emit to bridge a timestamp
/// gap. At the paper's 100 ms bins this is about seven minutes of silence —
/// any larger jump is treated as corrupt input rather than a quiet link.
pub const MAX_GAP_BINS: u64 = 4096;

/// Accumulates packets into consecutive fixed-duration batches.
///
/// The builder assumes packets are pushed in non-decreasing timestamp order
/// (as delivered by a capture device). The first packet anchors the builder
/// to its time bin, so absolute timestamps (e.g. epoch microseconds) work
/// without emitting empty batches for the eons before the capture started.
/// Whenever a later packet belongs to a later time bin than the one
/// currently being filled, the current batch is closed and returned; empty
/// bins are emitted as empty batches so downstream consumers see a batch per
/// time bin — up to a gap of [`MAX_GAP_BINS`] bins. A larger jump breaks the
/// contiguous-bin guarantee instead of flooding the consumer with empties:
/// [`BatchBuilder::push_into`] reports it as a [`TimestampJumpError`], while
/// the convenience [`BatchBuilder::push`] re-anchors as if the capture had
/// restarted.
#[derive(Debug)]
pub struct BatchBuilder {
    duration_us: u64,
    current_bin: u64,
    /// `false` until the first packet anchors `current_bin`.
    anchored: bool,
    pending: Vec<Packet>,
}

impl BatchBuilder {
    /// Creates a builder producing batches of the given time-bin duration.
    pub fn new(duration_us: u64) -> Self {
        assert!(duration_us > 0, "time bin duration must be positive");
        Self { duration_us, current_bin: 0, anchored: false, pending: Vec::new() }
    }

    /// Pushes a packet, appending any batches completed by this push to
    /// `closed`; returns how many batches were appended.
    ///
    /// A single push can complete several batches if the packet timestamp
    /// jumps over one or more empty bins. The caller owns (and can reuse)
    /// the output buffer, so the common case — the packet lands in the bin
    /// currently being filled — performs no allocation at all.
    ///
    /// # Errors
    ///
    /// If the packet's timestamp lies more than [`MAX_GAP_BINS`] bins ahead
    /// of the bin being filled, the push is rejected with
    /// [`TimestampJumpError`]: the packet is *not* consumed and the builder
    /// state is unchanged, so the caller can decide whether to drop the
    /// packet or reset the builder. The first packet ever pushed cannot
    /// trigger this — it anchors the builder to its own bin instead.
    pub fn push_into(
        &mut self,
        packet: Packet,
        closed: &mut Vec<Batch>,
    ) -> Result<usize, TimestampJumpError> {
        let bin = packet.ts / self.duration_us;
        if !self.anchored {
            self.current_bin = bin;
            self.anchored = true;
        }
        if bin > self.current_bin && bin - self.current_bin > MAX_GAP_BINS {
            return Err(TimestampJumpError { current_bin: self.current_bin, packet_bin: bin });
        }
        let mut count = 0;
        while bin > self.current_bin {
            closed.push(self.close_current());
            count += 1;
        }
        self.pending.push(packet);
        Ok(count)
    }

    /// Pushes a packet; returns all batches that were completed by this push.
    ///
    /// Convenience wrapper over [`BatchBuilder::push_into`] that allocates a
    /// fresh output vector only when batches actually close. A timestamp
    /// jump larger than [`MAX_GAP_BINS`] bins is treated as a capture
    /// restart: the bin being filled is closed and the builder re-anchors at
    /// the packet's bin, instead of emitting thousands of empty batches or
    /// failing. Use [`BatchBuilder::push_into`] to detect such jumps
    /// explicitly.
    pub fn push(&mut self, packet: Packet) -> Vec<Batch> {
        let mut closed = Vec::new();
        let bin = packet.ts / self.duration_us;
        if self.anchored && bin > self.current_bin && bin - self.current_bin > MAX_GAP_BINS {
            closed.push(self.close_current());
            self.current_bin = bin;
            self.pending.push(packet);
        } else {
            // lint:allow(no-unwrap): the else-branch condition just established the packet lands in the current bin range
            self.push_into(packet, &mut closed).expect("in-range push cannot fail");
        }
        closed
    }

    /// Closes the batch currently being filled and advances to the next bin.
    pub fn close_current(&mut self) -> Batch {
        let packets = std::mem::take(&mut self.pending);
        let batch = Batch::new(
            self.current_bin,
            self.current_bin * self.duration_us,
            self.duration_us,
            packets,
        );
        self.current_bin += 1;
        batch
    }

    /// Flushes the final (possibly partial) batch.
    pub fn finish(mut self) -> Batch {
        self.close_current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FiveTuple;

    fn pkt(ts: Timestamp) -> Packet {
        Packet::header_only(ts, FiveTuple::new(1, 2, 3, 4, 6), 100, 0)
    }

    #[test]
    fn builder_groups_packets_by_bin() {
        let mut b = BatchBuilder::new(100);
        assert!(b.push(pkt(10)).is_empty());
        assert!(b.push(pkt(50)).is_empty());
        let closed = b.push(pkt(150));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 2);
        assert_eq!(closed[0].bin_index, 0);
        let last = b.finish();
        assert_eq!(last.bin_index, 1);
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn builder_emits_empty_bins_for_gaps() {
        let mut b = BatchBuilder::new(100);
        b.push(pkt(10));
        let closed = b.push(pkt(350));
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].len(), 1);
        assert!(closed[1].is_empty());
        assert!(closed[2].is_empty());
        assert_eq!(closed[2].bin_index, 2);
    }

    #[test]
    fn push_into_reuses_the_caller_buffer() {
        let mut b = BatchBuilder::new(100);
        let mut closed = Vec::new();
        assert_eq!(b.push_into(pkt(10), &mut closed), Ok(0));
        assert_eq!(b.push_into(pkt(250), &mut closed), Ok(2));
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].len(), 1);
        assert!(closed[1].is_empty());
    }

    #[test]
    fn first_packet_anchors_the_builder_to_absolute_timestamps() {
        // Epoch-microsecond timestamps: the first packet must not be treated
        // as a pathological jump, and no leading empty batches are emitted.
        let epoch_us = 1_700_000_000_000_000u64;
        let mut b = BatchBuilder::new(100_000);
        let mut closed = Vec::new();
        assert_eq!(b.push_into(pkt(epoch_us), &mut closed), Ok(0));
        assert_eq!(b.push_into(pkt(epoch_us + 150_000), &mut closed), Ok(1));
        assert_eq!(closed[0].bin_index, epoch_us / 100_000);
        assert_eq!(closed[0].len(), 1);
        let last = b.finish();
        assert_eq!(last.bin_index, epoch_us / 100_000 + 1);
    }

    #[test]
    fn push_reanchors_across_a_pathological_gap_instead_of_failing() {
        // A quiet link (or clock jump) beyond the gap cap: the convenience
        // `push` closes the bin being filled and re-anchors — no panic, no
        // flood of empty batches.
        let mut b = BatchBuilder::new(100);
        b.push(pkt(10));
        let jump_ts = (MAX_GAP_BINS + 50) * 100;
        let closed = b.push(pkt(jump_ts));
        assert_eq!(closed.len(), 1, "only the pre-gap bin is closed");
        assert_eq!(closed[0].bin_index, 0);
        assert_eq!(closed[0].len(), 1);
        let last = b.finish();
        assert_eq!(last.bin_index, jump_ts / 100);
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn pathological_timestamp_jump_is_rejected_without_state_change() {
        let mut b = BatchBuilder::new(100);
        let mut closed = Vec::new();
        b.push_into(pkt(10), &mut closed).expect("in-bin push");
        let jump = pkt((MAX_GAP_BINS + 2) * 100);
        let err = b.push_into(jump.clone(), &mut closed).expect_err("jump must be rejected");
        assert_eq!(err, TimestampJumpError { current_bin: 0, packet_bin: MAX_GAP_BINS + 2 });
        assert!(closed.is_empty(), "no batches may be emitted for a rejected push");
        // The builder is still on bin 0 and accepts in-range packets.
        assert_eq!(b.push_into(pkt(50), &mut closed), Ok(0));
        let last = b.finish();
        assert_eq!(last.bin_index, 0);
        assert_eq!(last.len(), 2);
    }

    #[test]
    fn stats_and_load() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(0, 0, 100_000, packets);
        let stats = batch.stats();
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.tcp_packets, 3);
        // 300 bytes over 100 ms = 2400 bits / 0.1 s = 24 kbit/s = 0.024 Mbps.
        assert!((batch.load_mbps() - 0.024).abs() < 1e-9);
    }

    #[test]
    fn filtered_preserves_bin_identity() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(7, 700_000, 100_000, packets);
        let half = batch.filtered(|p| p.ts >= 10);
        assert_eq!(half.bin_index, 7);
        assert_eq!(half.start_ts, 700_000);
        assert_eq!(half.len(), 2);
    }

    #[test]
    fn measurement_interval_indexing() {
        let batch = Batch::empty(13, 1_300_000, 100_000);
        assert_eq!(batch.measurement_interval(1_000_000), 1);
    }

    #[test]
    fn views_share_the_store_and_never_copy() {
        let batch = Batch::new(3, 300_000, 100_000, vec![pkt(0), pkt(10), pkt(20), pkt(30)]);
        let full = batch.view();
        assert!(full.is_full());
        assert_eq!(full.len(), 4);
        assert_eq!(full.bin_index(), 3);

        let odd = full.filter_indexed(|index, _| index % 2 == 1);
        assert!(odd.shares_store(&full));
        assert!(Arc::ptr_eq(odd.store(), &batch.packets));
        assert_eq!(odd.len(), 2);
        let timestamps: Vec<u64> = odd.packets().map(|p| p.ts).collect();
        assert_eq!(timestamps, vec![10, 30]);
    }

    #[test]
    fn view_of_view_composes_store_indices() {
        let batch = Batch::new(0, 0, 100_000, (0..10).map(|i| pkt(i * 10)).collect());
        let evens = batch.view().filter_indexed(|index, _| index % 2 == 0);
        // Filter the *view*: keep its 2nd and 4th packets (store indices 2, 6).
        let mut seen = Vec::new();
        let narrowed = evens.filter_indexed(|index, _| {
            seen.push(index);
            index == 2 || index == 6
        });
        assert_eq!(seen, vec![0, 2, 4, 6, 8], "closure sees store indices in view order");
        let kept: Vec<usize> = narrowed.indexed_packets().map(|(index, _)| index).collect();
        assert_eq!(kept, vec![2, 6]);
    }

    #[test]
    fn view_stats_cover_only_retained_packets() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(10), pkt(20)]);
        let view = batch.view().filter_indexed(|_, p| p.ts >= 10);
        assert_eq!(view.total_bytes(), 200);
        assert_eq!(view.stats().packets, 2);
        assert_eq!(batch.view().total_bytes(), 300);
        assert_eq!(view.cleared().len(), 0);
        assert!(view.cleared().is_empty());
    }

    #[test]
    fn materialize_round_trips_the_retained_packets() {
        let batch = Batch::new(5, 500_000, 100_000, vec![pkt(0), pkt(10), pkt(20)]);
        let owned = batch.view().filter_indexed(|_, p| p.ts != 10).materialize();
        assert_eq!(owned.bin_index, 5);
        assert_eq!(owned.len(), 2);
        assert_eq!(owned.packets[0].ts, 0);
        assert_eq!(owned.packets[1].ts, 20);
    }

    #[test]
    fn store_caches_are_shared_between_batch_and_views() {
        let batch = Batch::new(0, 0, 100_000, vec![pkt(0), pkt(10)]);
        let hashes_a = batch.view().aggregate_hashes(42).expect("first seed claims the cache");
        let hashes_b =
            batch.view().filter_indexed(|_, _| true).aggregate_hashes(42).expect("cache hit");
        assert!(Arc::ptr_eq(&hashes_a, &hashes_b), "same seed must hit the cache");
        // A different seed does not thrash the cache: the caller is told to
        // hash the packets it retains itself.
        assert!(batch.view().aggregate_hashes(43).is_none());
        assert_eq!(hashes_a[0], AggregateHashes::compute(&batch.packets[0].tuple, 42));
        let keys_a = batch.view().flow_keys();
        let keys_b = batch.view().flow_keys();
        assert!(Arc::ptr_eq(&keys_a, &keys_b));
        assert_eq!(keys_a[1], batch.packets[1].tuple.as_key());
    }
}
