//! Batches: the unit of work of the monitoring system.
//!
//! The CoMo-based system of the paper groups every 100 ms of traffic into a
//! *batch* and runs the prediction / load-shedding / query-execution cycle
//! once per batch (Section 3.1). A [`Batch`] owns its packets; the load
//! shedders produce new (sampled) batches rather than mutating in place so
//! that per-query sampling rates can differ (Chapter 5).

use crate::packet::{Packet, Timestamp};
use std::sync::Arc;

/// A set of packets collected during one time bin.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Index of the time bin this batch belongs to (0-based).
    pub bin_index: u64,
    /// Timestamp of the start of the time bin, in microseconds.
    pub start_ts: Timestamp,
    /// Duration of the time bin in microseconds.
    pub duration_us: u64,
    /// Packets captured during the time bin, in timestamp order.
    pub packets: Arc<Vec<Packet>>,
}

impl Batch {
    /// Creates a batch from a packet vector.
    pub fn new(
        bin_index: u64,
        start_ts: Timestamp,
        duration_us: u64,
        packets: Vec<Packet>,
    ) -> Self {
        Self { bin_index, start_ts, duration_us, packets: Arc::new(packets) }
    }

    /// Creates an empty batch for the given time bin.
    pub fn empty(bin_index: u64, start_ts: Timestamp, duration_us: u64) -> Self {
        Self::new(bin_index, start_ts, duration_us, Vec::new())
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if the batch contains no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total number of IP bytes carried by the batch.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.ip_len)).sum()
    }

    /// Total number of captured payload bytes in the batch.
    pub fn total_payload_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.payload_len() as u64).sum()
    }

    /// End timestamp of the time bin (exclusive).
    pub fn end_ts(&self) -> Timestamp {
        self.start_ts + self.duration_us
    }

    /// Returns the measurement interval index this batch belongs to, given the
    /// measurement interval duration in microseconds.
    pub fn measurement_interval(&self, interval_us: u64) -> u64 {
        debug_assert!(interval_us > 0);
        self.start_ts / interval_us
    }

    /// Returns a new batch containing only the packets for which `keep` is true.
    ///
    /// The bin index, start timestamp and duration are preserved so the result
    /// still identifies the same time bin.
    pub fn filtered<F: FnMut(&Packet) -> bool>(&self, mut keep: F) -> Batch {
        let packets: Vec<Packet> = self.packets.iter().filter(|p| keep(p)).cloned().collect();
        Batch::new(self.bin_index, self.start_ts, self.duration_us, packets)
    }

    /// Computes summary statistics for the batch.
    pub fn stats(&self) -> BatchStats {
        let mut stats = BatchStats {
            packets: self.packets.len() as u64,
            bytes: 0,
            payload_bytes: 0,
            syn_packets: 0,
            tcp_packets: 0,
            udp_packets: 0,
        };
        for p in self.packets.iter() {
            stats.bytes += u64::from(p.ip_len);
            stats.payload_bytes += p.payload_len() as u64;
            if p.is_syn() {
                stats.syn_packets += 1;
            }
            match p.tuple.proto {
                6 => stats.tcp_packets += 1,
                17 => stats.udp_packets += 1,
                _ => {}
            }
        }
        stats
    }

    /// Average bit rate of the batch over the time bin, in megabits per second.
    pub fn load_mbps(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let bits = self.total_bytes() as f64 * 8.0;
        bits / (self.duration_us as f64 / 1e6) / 1e6
    }
}

/// Summary statistics of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of packets.
    pub packets: u64,
    /// Number of IP bytes.
    pub bytes: u64,
    /// Number of captured payload bytes.
    pub payload_bytes: u64,
    /// Number of pure SYN packets (SYN set, ACK clear).
    pub syn_packets: u64,
    /// Number of TCP packets.
    pub tcp_packets: u64,
    /// Number of UDP packets.
    pub udp_packets: u64,
}

/// Accumulates packets into consecutive fixed-duration batches.
///
/// The builder assumes packets are pushed in non-decreasing timestamp order
/// (as delivered by a capture device). Whenever a packet belongs to a later
/// time bin than the one currently being filled, the current batch is closed
/// and returned; empty bins are emitted as empty batches so downstream
/// consumers see a batch per time bin.
#[derive(Debug)]
pub struct BatchBuilder {
    duration_us: u64,
    current_bin: u64,
    pending: Vec<Packet>,
}

impl BatchBuilder {
    /// Creates a builder producing batches of the given time-bin duration.
    pub fn new(duration_us: u64) -> Self {
        assert!(duration_us > 0, "time bin duration must be positive");
        Self { duration_us, current_bin: 0, pending: Vec::new() }
    }

    /// Pushes a packet; returns all batches that were completed by this push.
    ///
    /// A single push can complete several batches if the packet timestamp
    /// jumps over one or more empty bins.
    pub fn push(&mut self, packet: Packet) -> Vec<Batch> {
        let bin = packet.ts / self.duration_us;
        let mut closed = Vec::new();
        while bin > self.current_bin {
            closed.push(self.close_current());
        }
        self.pending.push(packet);
        closed
    }

    /// Closes the batch currently being filled and advances to the next bin.
    pub fn close_current(&mut self) -> Batch {
        let packets = std::mem::take(&mut self.pending);
        let batch = Batch::new(
            self.current_bin,
            self.current_bin * self.duration_us,
            self.duration_us,
            packets,
        );
        self.current_bin += 1;
        batch
    }

    /// Flushes the final (possibly partial) batch.
    pub fn finish(mut self) -> Batch {
        self.close_current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FiveTuple;

    fn pkt(ts: Timestamp) -> Packet {
        Packet::header_only(ts, FiveTuple::new(1, 2, 3, 4, 6), 100, 0)
    }

    #[test]
    fn builder_groups_packets_by_bin() {
        let mut b = BatchBuilder::new(100);
        assert!(b.push(pkt(10)).is_empty());
        assert!(b.push(pkt(50)).is_empty());
        let closed = b.push(pkt(150));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 2);
        assert_eq!(closed[0].bin_index, 0);
        let last = b.finish();
        assert_eq!(last.bin_index, 1);
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn builder_emits_empty_bins_for_gaps() {
        let mut b = BatchBuilder::new(100);
        b.push(pkt(10));
        let closed = b.push(pkt(350));
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].len(), 1);
        assert!(closed[1].is_empty());
        assert!(closed[2].is_empty());
        assert_eq!(closed[2].bin_index, 2);
    }

    #[test]
    fn stats_and_load() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(0, 0, 100_000, packets);
        let stats = batch.stats();
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.tcp_packets, 3);
        // 300 bytes over 100 ms = 2400 bits / 0.1 s = 24 kbit/s = 0.024 Mbps.
        assert!((batch.load_mbps() - 0.024).abs() < 1e-9);
    }

    #[test]
    fn filtered_preserves_bin_identity() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let batch = Batch::new(7, 700_000, 100_000, packets);
        let half = batch.filtered(|p| p.ts >= 10);
        assert_eq!(half.bin_index, 7);
        assert_eq!(half.start_ts, 700_000);
        assert_eq!(half.len(), 2);
    }

    #[test]
    fn measurement_interval_indexing() {
        let batch = Batch::empty(13, 1_300_000, 100_000);
        assert_eq!(batch.measurement_interval(1_000_000), 1);
    }
}
