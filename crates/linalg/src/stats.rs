//! Statistics helpers shared by the predictors and the experiment harness.

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice (0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn stdev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Pearson linear correlation coefficient between two equally long slices.
///
/// Returns 0 when either series has zero variance (a constant predictor
/// carries no linear information), which is the convention the FCBF feature
/// selection relies on.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Returns the `p`-th percentile (0..=100) of the values using linear
/// interpolation between order statistics. Returns 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Maximum of a slice (0 for an empty slice).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(0.0)
}

/// An exponentially weighted moving average with weight `alpha` given to the
/// newest observation, as used throughout the load shedding algorithm
/// (prediction error and shedding-overhead smoothing) and as the EWMA
/// baseline predictor.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given weight for new observations.
    pub fn new(alpha: f64) -> Self {
        Self { alpha: alpha.clamp(0.0, 1.0), value: None }
    }

    /// Current smoothed value (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Returns `true` if at least one observation has been folded in.
    pub fn is_initialised(&self) -> bool {
        self.value.is_some()
    }

    /// Folds in a new observation and returns the updated value.
    pub fn update(&mut self, observation: f64) -> f64 {
        let next = match self.value {
            None => observation,
            Some(previous) => self.alpha * observation + (1.0 - self.alpha) * previous,
        };
        self.value = Some(next);
        next
    }

    /// Resets the average to the uninitialised state.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// The raw smoothed value, `None` before any observation. Used for
    /// checkpointing; pair with [`Ewma::restore`].
    pub fn state(&self) -> Option<f64> {
        self.value
    }

    /// Restores a value captured by [`Ewma::state`]; the weight is kept.
    pub fn restore(&mut self, value: Option<f64>) {
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&values) - 5.0).abs() < 1e-12);
        assert!((variance(&values) - 4.0).abs() < 1e-12);
        assert!((stdev(&values) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn pearson_detects_perfect_and_no_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        let y_const = [5.0, 5.0, 5.0, 5.0];
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &y_const), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 50.0), 3.0);
        assert_eq!(percentile(&values, 100.0), 5.0);
        assert!((percentile(&values, 95.0) - 4.8).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        assert!(!e.is_initialised());
        for _ in 0..100 {
            e.update(10.0);
        }
        assert!((e.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_initialises_directly() {
        let mut e = Ewma::new(0.1);
        e.update(4.0);
        assert_eq!(e.value(), 4.0);
        e.reset();
        assert_eq!(e.value(), 0.0);
    }
}
