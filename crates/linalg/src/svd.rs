//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The prediction subsystem solves its least-squares problems through the
//! SVD, "able to obtain the best approximation, in the least-squares sense,
//! in the case of an over- or under-determined system" (Section 3.2.2). The
//! matrices involved are tiny (at most a few hundred rows and a few dozen
//! columns), so the one-sided Jacobi method — simple, numerically robust and
//! free of external dependencies — is a good fit.

use crate::matrix::{dot, Matrix};

/// Result of a thin singular value decomposition `A = U * diag(s) * V^T`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `rows x k` where `k = min(rows, cols)`.
    pub u: Matrix,
    /// Singular values in non-increasing order, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols x k`.
    pub v: Matrix,
}

impl Svd {
    /// Effective numerical rank with respect to a relative tolerance.
    pub fn rank(&self, relative_tolerance: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max <= 0.0 {
            return 0;
        }
        self.singular_values.iter().filter(|&&s| s > max * relative_tolerance).count()
    }

    /// Reconstructs the original matrix (used by the tests).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut scaled = self.u.clone();
        for j in 0..k {
            let s = self.singular_values[j];
            for value in scaled.column_mut(j) {
                *value *= s;
            }
        }
        scaled.mul(&self.v.transpose())
    }
}

/// Computes the thin SVD of `a` using the one-sided Jacobi method.
///
/// For matrices with more columns than rows the decomposition is computed on
/// the transpose and the factors are swapped, so callers may pass any shape.
pub fn svd(a: &Matrix) -> Svd {
    if a.cols() > a.rows() {
        let t = svd(&a.transpose());
        return Svd { u: t.v, singular_values: t.singular_values, v: t.u };
    }

    let rows = a.rows();
    let cols = a.cols();
    // Work on a copy whose columns are rotated until mutually orthogonal.
    let mut w = a.clone();
    let mut v = Matrix::identity(cols);

    let eps = 1e-12;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off_diagonal = 0.0f64;
        for p in 0..cols {
            for q in (p + 1)..cols {
                let (alpha, beta, gamma) = {
                    let cp = w.column(p);
                    let cq = w.column(q);
                    (dot(cp, cp), dot(cq, cq), dot(cp, cq))
                };
                if alpha * beta > 0.0 {
                    off_diagonal = off_diagonal.max(gamma.abs() / (alpha * beta).sqrt());
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                // Jacobi rotation that zeroes the (p, q) entry of W^T W.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_columns(&mut w, p, q, c, s, rows);
                rotate_columns(&mut v, p, q, c, s, cols);
            }
        }
        if off_diagonal < eps {
            break;
        }
    }

    // Singular values are the column norms of the rotated matrix.
    let mut order: Vec<usize> = (0..cols).collect();
    let norms: Vec<f64> = (0..cols).map(|j| dot(w.column(j), w.column(j)).sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut u = Matrix::zeros(rows, cols);
    let mut v_sorted = Matrix::zeros(cols, cols);
    let mut singular_values = Vec::with_capacity(cols);
    for (dst, &src) in order.iter().enumerate() {
        let norm = norms[src];
        singular_values.push(norm);
        if norm > 0.0 {
            let col = w.column(src).to_vec();
            for (i, value) in col.iter().enumerate() {
                u[(i, dst)] = value / norm;
            }
        }
        let vcol = v.column(src).to_vec();
        v_sorted.column_mut(dst).copy_from_slice(&vcol);
    }

    Svd { u, singular_values, v: v_sorted }
}

/// Applies the plane rotation `[c, s; -s, c]` to columns `p` and `q`.
fn rotate_columns(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64, rows: usize) {
    for i in 0..rows {
        let vp = m[(i, p)];
        let vq = m[(i, q)];
        m[(i, p)] = c * vp - s * vq;
        m[(i, q)] = s * vp + c * vq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn reconstruction_of_small_matrix() {
        let a = Matrix::from_rows(&[
            vec![3.0, 2.0, 2.0],
            vec![2.0, 3.0, -2.0],
            vec![1.0, 0.0, 4.0],
            vec![0.0, 1.0, 1.0],
        ]);
        let decomposition = svd(&a);
        assert_close(&decomposition.reconstruct(), &a, 1e-8);
        // Singular values sorted in non-increasing order.
        let s = &decomposition.singular_values;
        assert!(s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn wide_matrix_is_handled_by_transposition() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]);
        let decomposition = svd(&a);
        assert_close(&decomposition.reconstruct(), &a, 1e-8);
    }

    #[test]
    fn rank_deficient_matrix_has_small_trailing_singular_values() {
        // Third column is the sum of the first two: rank 2.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 2.0],
            vec![2.0, 1.0, 3.0],
        ]);
        let decomposition = svd(&a);
        assert_eq!(decomposition.rank(1e-9), 2);
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let decomposition = svd(&Matrix::identity(5));
        for s in &decomposition.singular_values {
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![2.0, 3.0], vec![0.0, 5.0]]);
        let d = svd(&a);
        let vtv = d.v.transpose().mul(&d.v);
        assert_close(&vtv, &Matrix::identity(2), 1e-9);
        let utu = d.u.transpose().mul(&d.u);
        assert_close(&utu, &Matrix::identity(2), 1e-9);
    }
}
