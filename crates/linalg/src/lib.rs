//! Small dense linear algebra and statistics toolkit.
//!
//! The prediction subsystem of the paper estimates the coefficients of a
//! multiple linear regression with ordinary least squares, computed through a
//! singular value decomposition so that over- and under-determined systems
//! and collinear predictors are handled gracefully (Section 3.2.2). The
//! regression involves at most a few dozen predictors and a few hundred
//! observations, so a simple, dependency-free implementation is more than
//! adequate; this crate provides exactly that:
//!
//! * [`Matrix`] — a column-major dense `f64` matrix,
//! * [`svd`] — one-sided Jacobi singular value decomposition,
//! * [`ols_solve`] — least-squares solve through the SVD pseudo-inverse,
//! * [`stats`] — mean / variance / correlation / percentile helpers shared by
//!   the predictors and the experiment harness.

#![forbid(unsafe_code)]

pub mod matrix;
pub mod ols;
pub mod stats;
pub mod svd;

pub use matrix::Matrix;
pub use ols::{ols_solve, OlsFit};
pub use svd::{svd, Svd};
