//! A minimal column-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, column-major `f64` matrix.
///
/// Column-major storage matches the access pattern of the Jacobi SVD (which
/// orthogonalises column pairs) and of least-squares design matrices where
/// each column is one predictor's history.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of the given size.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Resizes the matrix in place to `rows x cols`, reusing the backing
    /// allocation when it is large enough, and fills it with zeros.
    ///
    /// This is the allocation-reusing sibling of [`Matrix::zeros`] for hot
    /// paths that rebuild a matrix of similar shape every iteration (e.g. a
    /// sliding-window regression design matrix).
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Creates a matrix from a row-major nested slice (convenient in tests).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a matrix column by column.
    ///
    /// # Panics
    ///
    /// Panics if the columns have inconsistent lengths.
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        let ncols = columns.len();
        let nrows = columns.first().map_or(0, Vec::len);
        let mut m = Self::zeros(nrows, ncols);
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), nrows, "inconsistent column lengths");
            m.column_mut(j).copy_from_slice(col);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the column `j` as a slice.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Returns the column `j` as a mutable slice.
    pub fn column_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let col = self.column(j);
            for (o, &c) in out.iter_mut().zip(col) {
                *o += c * xj;
            }
        }
        out
    }

    /// Transposed matrix-vector product `self^T * y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn tr_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        (0..self.cols).map(|j| dot(self.column(j), y)).collect()
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            let col = self.mul_vec(other.column(j));
            out.column_mut(j).copy_from_slice(&col);
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equally long slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let m = Matrix::identity(3);
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.column(0), &[1.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matrix_product_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn tr_mul_vec_matches_transpose_mul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = vec![1.0, 1.0, 1.0];
        assert_eq!(a.tr_mul_vec(&y), a.transpose().mul_vec(&y));
    }
}
