//! Ordinary least squares through the SVD pseudo-inverse.

use crate::matrix::Matrix;
use crate::svd::svd;

/// Result of a least-squares fit `y ≈ X b`.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients, one per column of the design matrix.
    pub coefficients: Vec<f64>,
    /// Residual sum of squares.
    pub residual_sum_of_squares: f64,
    /// Coefficient of determination (R²); 1.0 when the response is constant
    /// and perfectly fitted.
    pub r_squared: f64,
    /// Effective rank of the design matrix.
    pub rank: usize,
}

impl OlsFit {
    /// Predicts the response for one observation (row of predictor values).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of coefficients.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "predictor count mismatch");
        x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum()
    }
}

/// Solves `min_b ||y - X b||²` using the SVD pseudo-inverse.
///
/// Singular values below `rcond * max_singular_value` are treated as zero, so
/// collinear predictors (which violate the paper's no-multicollinearity
/// assumption but do occur under anomalous traffic, e.g. packets ≈ flows
/// during a SYN flood) yield the minimum-norm solution instead of blowing up.
///
/// # Panics
///
/// Panics if `y.len()` differs from the number of rows of `x`.
pub fn ols_solve(x: &Matrix, y: &[f64], rcond: f64) -> OlsFit {
    assert_eq!(x.rows(), y.len(), "observation count mismatch");
    let decomposition = svd(x);
    let k = decomposition.singular_values.len();
    let max_sv = decomposition.singular_values.first().copied().unwrap_or(0.0);
    let threshold = max_sv * rcond.max(f64::EPSILON);

    // b = V * diag(1/s) * U^T * y, zeroing the small singular values.
    let uty = decomposition.u.tr_mul_vec(y);
    let mut scaled = vec![0.0; k];
    let mut rank = 0usize;
    for i in 0..k {
        let s = decomposition.singular_values[i];
        if s > threshold && s > 0.0 {
            scaled[i] = uty[i] / s;
            rank += 1;
        }
    }
    let coefficients = decomposition.v.mul_vec(&scaled);

    let predictions = x.mul_vec(&coefficients);
    let rss: f64 = predictions.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
    let mean_y = y.iter().sum::<f64>() / y.len().max(1) as f64;
    let tss: f64 = y.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    OlsFit { coefficients, residual_sum_of_squares: rss, r_squared, rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 + 3*x1 - 0.5*x2 with an intercept column of ones.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x1: f64 = rng.gen_range(0.0..10.0);
            let x2: f64 = rng.gen_range(0.0..10.0);
            rows.push(vec![1.0, x1, x2]);
            y.push(2.0 + 3.0 * x1 - 0.5 * x2);
        }
        let x = Matrix::from_rows(&rows);
        let fit = ols_solve(&x, &y, 1e-10);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-8);
        assert!((fit.coefficients[2] + 0.5).abs() < 1e-8);
        assert!(fit.r_squared > 0.999_999);
        assert_eq!(fit.rank, 3);
    }

    #[test]
    fn noisy_fit_has_reasonable_r_squared() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let x1: f64 = rng.gen_range(0.0..100.0);
            rows.push(vec![1.0, x1]);
            y.push(5.0 + 2.0 * x1 + rng.gen_range(-1.0..1.0));
        }
        let fit = ols_solve(&Matrix::from_rows(&rows), &y, 1e-10);
        assert!((fit.coefficients[1] - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn collinear_predictors_do_not_explode() {
        // Second and third columns are identical: the pseudo-inverse should
        // spread the weight rather than produce huge opposite coefficients.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let x = i as f64;
            rows.push(vec![1.0, x, x]);
            y.push(1.0 + 4.0 * x);
        }
        let fit = ols_solve(&Matrix::from_rows(&rows), &y, 1e-9);
        assert_eq!(fit.rank, 2);
        for c in &fit.coefficients {
            assert!(c.abs() < 10.0, "coefficient blew up: {c}");
        }
        // Predictions must still be accurate.
        assert!((fit.predict(&[1.0, 10.0, 10.0]) - 41.0).abs() < 1e-6);
    }

    #[test]
    fn underdetermined_system_yields_minimum_norm_solution() {
        // Two observations, three predictors.
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let y = vec![14.0, 32.0];
        let fit = ols_solve(&x, &y, 1e-12);
        // The system is consistent; residuals should be ~0.
        assert!(fit.residual_sum_of_squares < 1e-16);
    }

    #[test]
    fn constant_response_gives_unit_r_squared() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![5.0, 5.0, 5.0];
        let fit = ols_solve(&x, &y, 1e-12);
        assert!((fit.coefficients[0] - 5.0).abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
    }
}
