//! The resource allocation game and its Nash equilibrium (Section 5.3).
//!
//! Each query is a player whose action is its declared minimum cycle demand
//! `a_q = m_q × d̂_q`. The system satisfies all minimum demands it can —
//! disabling the largest demands first when they do not fit — and then shares
//! any spare cycles max-min fairly among the active queries (Equation 5.7).
//! Theorem 5.1 shows the game has a single Nash equilibrium where every
//! player demands exactly `C / |Q|`; this module lets the experiments verify
//! that claim numerically.

/// Which max-min fair share flavour distributes the spare cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairnessMode {
    /// Spare cycles split max-min fairly in CPU terms (equal split here,
    /// since the game model places no upper bound on what a query can use).
    Cpu,
    /// Spare cycles split in proportion to demand (equal sampling-rate
    /// increase), the packet-access flavour.
    Packet,
}

/// The strategic game played by non-cooperative queries.
#[derive(Debug, Clone, Copy)]
pub struct AllocationGame {
    /// System capacity `C` in cycles.
    pub capacity: f64,
    /// Number of players `|Q|`.
    pub players: usize,
    /// How spare cycles are shared.
    pub mode: FairnessMode,
}

impl AllocationGame {
    /// Creates a game.
    pub fn new(capacity: f64, players: usize, mode: FairnessMode) -> Self {
        assert!(players > 0, "the game needs at least one player");
        Self { capacity, players, mode }
    }

    /// The symmetric action profile of Theorem 5.1: every player demands
    /// `C / |Q|`.
    pub fn equilibrium_action(&self) -> f64 {
        self.capacity / self.players as f64
    }

    /// Computes every player's payoff (allocated cycles) for an action
    /// profile, following Equation 5.7.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != self.players`.
    pub fn payoffs(&self, actions: &[f64]) -> Vec<f64> {
        assert_eq!(actions.len(), self.players, "one action per player");

        // Determine which players' minimum demands can be satisfied: sort by
        // demand ascending and accumulate while the running total fits.
        let mut order: Vec<usize> = (0..self.players).collect();
        order.sort_by(|&a, &b| actions[a].total_cmp(&actions[b]));
        let mut active = vec![false; self.players];
        let mut used = 0.0;
        for &player in &order {
            // Equation 5.7: player q is served if the sum of all demands not
            // larger than a_q (including ties and itself) fits in C.
            let not_larger: f64 = actions.iter().filter(|&&a| a <= actions[player]).sum();
            if not_larger <= self.capacity && used + actions[player] <= self.capacity {
                active[player] = true;
                used += actions[player];
            }
        }

        let active_count = active.iter().filter(|&&a| a).count();
        let spare = (self.capacity - used).max(0.0);
        let active_demand: f64 = (0..self.players).filter(|&i| active[i]).map(|i| actions[i]).sum();

        (0..self.players)
            .map(|player| {
                if !active[player] {
                    return 0.0;
                }
                let share = match self.mode {
                    FairnessMode::Cpu => {
                        if active_count > 0 {
                            spare / active_count as f64
                        } else {
                            0.0
                        }
                    }
                    FairnessMode::Packet => {
                        if active_demand > 0.0 {
                            spare * actions[player] / active_demand
                        } else if active_count > 0 {
                            spare / active_count as f64
                        } else {
                            0.0
                        }
                    }
                };
                actions[player] + share
            })
            .collect()
    }

    /// Returns the best payoff player `player` can obtain by unilaterally
    /// deviating to any action on a grid of `grid` points over `[0, C]`,
    /// keeping the other actions fixed.
    pub fn best_unilateral_payoff(&self, actions: &[f64], player: usize, grid: usize) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut candidate = actions.to_vec();
        for step in 0..=grid {
            let action = self.capacity * step as f64 / grid as f64;
            candidate[player] = action;
            let payoff = self.payoffs(&candidate)[player];
            if payoff > best {
                best = payoff;
            }
        }
        best
    }

    /// Checks whether an action profile is an (approximate) Nash equilibrium:
    /// no player can improve its payoff by more than `tolerance` by deviating
    /// to any action on the search grid.
    pub fn is_nash_equilibrium(&self, actions: &[f64], grid: usize, tolerance: f64) -> bool {
        let payoffs = self.payoffs(actions);
        (0..self.players).all(|player| {
            let best = self.best_unilateral_payoff(actions, player, grid);
            best <= payoffs[player] + tolerance
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_profile_is_a_nash_equilibrium() {
        for mode in [FairnessMode::Cpu, FairnessMode::Packet] {
            let game = AllocationGame::new(1000.0, 5, mode);
            let actions = vec![game.equilibrium_action(); 5];
            assert!(
                game.is_nash_equilibrium(&actions, 200, 1e-6),
                "C/|Q| should be a Nash equilibrium ({mode:?})"
            );
        }
    }

    #[test]
    fn underbidding_profile_is_not_an_equilibrium() {
        let game = AllocationGame::new(1000.0, 4, FairnessMode::Cpu);
        // Everyone demands far less than C/|Q|: any player can grab more.
        let actions = vec![50.0; 4];
        assert!(!game.is_nash_equilibrium(&actions, 200, 1e-6));
    }

    #[test]
    fn overbidding_is_punished_with_zero_payoff() {
        let game = AllocationGame::new(1000.0, 4, FairnessMode::Cpu);
        // One player asks for more than its fair share while others ask C/|Q|.
        let mut actions = vec![250.0; 4];
        actions[0] = 400.0;
        let payoffs = game.payoffs(&actions);
        assert_eq!(payoffs[0], 0.0, "the greedy player should be disabled");
        assert!(payoffs[1] > 250.0, "others should pick up the spare cycles");
    }

    #[test]
    fn payoffs_never_exceed_capacity() {
        let game = AllocationGame::new(500.0, 3, FairnessMode::Packet);
        for profile in [[100.0, 200.0, 300.0], [400.0, 400.0, 400.0], [0.0, 0.0, 0.0]] {
            let total: f64 = game.payoffs(&profile).iter().sum();
            assert!(total <= 500.0 + 1e-9, "total payoff {total} exceeds capacity");
        }
    }

    #[test]
    fn equal_profile_splits_capacity_evenly() {
        let game = AllocationGame::new(900.0, 3, FairnessMode::Cpu);
        let payoffs = game.payoffs(&[100.0, 100.0, 100.0]);
        for p in payoffs {
            assert!((p - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "one action per player")]
    fn wrong_action_count_panics() {
        let game = AllocationGame::new(100.0, 2, FairnessMode::Cpu);
        let _ = game.payoffs(&[1.0]);
    }
}
