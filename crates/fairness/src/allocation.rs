//! Sampling-rate allocation strategies (Section 5.2).
//!
//! Each strategy answers one question: given per-query demands (predicted
//! cycles plus a minimum sampling rate) and a cycle budget, what sampling
//! rate does every query get? The three schemes of the paper ship as free
//! functions ([`eq_srates`], [`mmfs_cpu`], [`mmfs_pkt`]) and, for callers
//! that need to choose a scheme at runtime or plug in their own, as unit
//! structs ([`EqualRates`], [`MmfsCpu`], [`MmfsPkt`]) implementing the
//! object-safe [`AllocationStrategy`] trait.

/// A pluggable sampling-rate allocation scheme.
///
/// Implementations are pure functions of their inputs: the same demands and
/// capacity must always produce the same allocations (the monitor's
/// replay-equivalence guarantees depend on it). Stateful schemes belong at
/// the control-policy layer, which owns the per-bin feedback loop.
pub trait AllocationStrategy: Send + Sync {
    /// Computes one [`Allocation`] per demand under the given cycle budget.
    fn allocate(&self, demands: &[QueryDemand], capacity: f64) -> Vec<Allocation>;

    /// Short name used in reports and composed strategy names.
    fn name(&self) -> &'static str;
}

/// [`eq_srates`] as a pluggable strategy: one common sampling rate for every
/// query (Chapter 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualRates;

impl AllocationStrategy for EqualRates {
    fn allocate(&self, demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
        eq_srates(demands, capacity)
    }

    fn name(&self) -> &'static str {
        "eq_srates"
    }
}

/// [`mmfs_cpu`] as a pluggable strategy: max-min fairness in allocated CPU
/// cycles (Section 5.2.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MmfsCpu;

impl AllocationStrategy for MmfsCpu {
    fn allocate(&self, demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
        mmfs_cpu(demands, capacity)
    }

    fn name(&self) -> &'static str {
        "mmfs_cpu"
    }
}

/// [`mmfs_pkt`] as a pluggable strategy: max-min fairness in access to the
/// packet stream (Section 5.2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct MmfsPkt;

impl AllocationStrategy for MmfsPkt {
    fn allocate(&self, demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
        mmfs_pkt(demands, capacity)
    }

    fn name(&self) -> &'static str {
        "mmfs_pkt"
    }
}

impl AllocationStrategy for Box<dyn AllocationStrategy> {
    fn allocate(&self, demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
        self.as_ref().allocate(demands, capacity)
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
}

/// A query's resource demand for the next batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDemand {
    /// Predicted cycles needed to process the full batch (`d̂_q`).
    pub predicted_cycles: f64,
    /// Minimum sampling rate the query tolerates (`m_q`, in `[0, 1]`).
    pub min_rate: f64,
}

impl QueryDemand {
    /// Creates a demand.
    pub fn new(predicted_cycles: f64, min_rate: f64) -> Self {
        Self { predicted_cycles: predicted_cycles.max(0.0), min_rate: min_rate.clamp(0.0, 1.0) }
    }

    /// The query's minimum cycle demand (`m_q × d̂_q`).
    pub fn min_cycles(&self) -> f64 {
        self.min_rate * self.predicted_cycles
    }
}

/// The allocation decided for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Allocation {
    /// The query is disabled for this batch (gets no packets).
    Disabled,
    /// The query runs with the given sampling rate in `(0, 1]`.
    Rate(f64),
}

impl Allocation {
    /// The sampling rate of the allocation (0 when disabled).
    pub fn rate(&self) -> f64 {
        match self {
            Allocation::Disabled => 0.0,
            Allocation::Rate(rate) => *rate,
        }
    }

    /// Returns `true` if the query was disabled.
    pub fn is_disabled(&self) -> bool {
        matches!(self, Allocation::Disabled)
    }
}

/// Phase 1 of the online algorithm (Section 5.2.3), common to both
/// strategies: disable the queries with the largest minimum demands until the
/// remaining minimum demands fit in the capacity. Returns the indices of the
/// queries that stay enabled.
fn enabled_after_phase1(demands: &[QueryDemand], capacity: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..demands.len()).collect();
    // Sort ascending by minimum demand; we keep a prefix of this order.
    order.sort_by(|&a, &b| demands[a].min_cycles().total_cmp(&demands[b].min_cycles()));
    let mut enabled: Vec<usize> = order;
    loop {
        let total: f64 = enabled.iter().map(|&i| demands[i].min_cycles()).sum();
        if total <= capacity || enabled.is_empty() {
            break;
        }
        // Disable the query with the largest minimum demand.
        enabled.pop();
    }
    enabled.sort_unstable();
    enabled
}

/// Max-min fair share in terms of CPU cycles (Section 5.2.1).
///
/// Returns one [`Allocation`] per input demand. The allocation maximises the
/// minimum number of cycles allocated to any enabled query, subject to
/// `m_q d̂_q ≤ c_q ≤ d̂_q` and `Σ c_q ≤ capacity`.
pub fn mmfs_cpu(demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
    let enabled = enabled_after_phase1(demands, capacity);
    let mut allocations = vec![Allocation::Disabled; demands.len()];
    if enabled.is_empty() {
        return allocations;
    }

    // Water-filling with lower bounds (min cycles) and upper bounds (full
    // demand): every enabled query gets clamp(level, lower, upper); find the
    // level that exactly exhausts the capacity by bisection.
    let lowers: Vec<f64> = enabled.iter().map(|&i| demands[i].min_cycles()).collect();
    let uppers: Vec<f64> = enabled.iter().map(|&i| demands[i].predicted_cycles).collect();
    let total_at = |level: f64| -> f64 {
        lowers.iter().zip(&uppers).map(|(&lo, &up)| level.clamp(lo, up.max(lo))).sum()
    };
    let max_upper = uppers.iter().copied().fold(0.0f64, f64::max);
    let (mut lo, mut hi) = (0.0f64, max_upper);
    // If even the full demands fit, everyone gets their full demand.
    let level = if total_at(max_upper) <= capacity {
        max_upper
    } else {
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if total_at(mid) > capacity {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    };

    for (slot, &query) in enabled.iter().enumerate() {
        let demand = demands[query];
        if demand.predicted_cycles <= 0.0 {
            allocations[query] = Allocation::Rate(1.0);
            continue;
        }
        let cycles = level.clamp(lowers[slot], uppers[slot].max(lowers[slot]));
        let rate = (cycles / demand.predicted_cycles).clamp(0.0, 1.0);
        allocations[query] = Allocation::Rate(rate.max(demand.min_rate).min(1.0));
    }
    allocations
}

/// Max-min fair share in terms of access to the packet stream (Section 5.2.2).
///
/// Maximises the minimum sampling rate across enabled queries, subject to
/// `m_q ≤ p_q ≤ 1` and `Σ p_q d̂_q ≤ capacity`.
pub fn mmfs_pkt(demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
    let enabled = enabled_after_phase1(demands, capacity);
    let mut allocations = vec![Allocation::Disabled; demands.len()];
    if enabled.is_empty() {
        return allocations;
    }

    // Iterative algorithm of Section 5.2.3: give everyone the common rate
    // r = remaining capacity / remaining demand; queries whose minimum rate
    // exceeds r are pinned at their minimum and removed, then r is
    // recomputed.
    let mut remaining: Vec<usize> = enabled.clone();
    let mut remaining_capacity = capacity;
    let mut rates = vec![0.0f64; demands.len()];
    loop {
        let total_demand: f64 = remaining.iter().map(|&i| demands[i].predicted_cycles).sum();
        let r = if total_demand > 0.0 { (remaining_capacity / total_demand).min(1.0) } else { 1.0 };
        let mut pinned = Vec::new();
        for &i in &remaining {
            if demands[i].min_rate > r {
                pinned.push(i);
            }
        }
        if pinned.is_empty() {
            for &i in &remaining {
                rates[i] = r.max(demands[i].min_rate);
            }
            break;
        }
        for &i in &pinned {
            rates[i] = demands[i].min_rate;
            remaining_capacity -= demands[i].min_cycles();
            remaining.retain(|&j| j != i);
        }
        if remaining.is_empty() {
            break;
        }
        remaining_capacity = remaining_capacity.max(0.0);
    }

    for &i in &enabled {
        allocations[i] =
            Allocation::Rate(rates[i].clamp(0.0, 1.0).max(demands[i].min_rate).min(1.0));
    }
    allocations
}

/// The equal-sampling-rate strategy used by the Chapter 4 load shedder and as
/// the `eq_srates` baseline of Chapter 5: one common rate for every query;
/// queries whose minimum rate cannot be met are disabled for the batch and
/// the rate is recomputed for the remaining ones.
pub fn eq_srates(demands: &[QueryDemand], capacity: f64) -> Vec<Allocation> {
    let mut allocations = vec![Allocation::Disabled; demands.len()];
    let mut active: Vec<usize> = (0..demands.len()).collect();
    loop {
        let total: f64 = active.iter().map(|&i| demands[i].predicted_cycles).sum();
        let rate = if total > 0.0 { (capacity / total).min(1.0) } else { 1.0 };
        // Disable the query with the largest minimum rate above the common rate.
        let violator = active
            .iter()
            .copied()
            .filter(|&i| demands[i].min_rate > rate)
            .max_by(|&a, &b| demands[a].min_cycles().total_cmp(&demands[b].min_cycles()));
        if let Some(i) = violator {
            active.retain(|&j| j != i);
            if active.is_empty() {
                return allocations;
            }
        } else {
            for &i in &active {
                allocations[i] = Allocation::Rate(rate);
            }
            return allocations;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_cycles(demands: &[QueryDemand], allocations: &[Allocation]) -> f64 {
        demands.iter().zip(allocations).map(|(d, a)| d.predicted_cycles * a.rate()).sum()
    }

    #[test]
    fn no_overload_gives_full_rates() {
        let demands = vec![QueryDemand::new(100.0, 0.1), QueryDemand::new(200.0, 0.5)];
        for strategy in [mmfs_cpu, mmfs_pkt, eq_srates] {
            let allocations = strategy(&demands, 1000.0);
            assert!(allocations.iter().all(|a| (a.rate() - 1.0).abs() < 1e-9), "{allocations:?}");
        }
    }

    #[test]
    fn allocations_respect_capacity() {
        let demands = vec![
            QueryDemand::new(1000.0, 0.1),
            QueryDemand::new(500.0, 0.2),
            QueryDemand::new(2000.0, 0.05),
        ];
        let capacity = 1200.0;
        for strategy in [mmfs_cpu, mmfs_pkt, eq_srates] {
            let allocations = strategy(&demands, capacity);
            let used = total_cycles(&demands, &allocations);
            assert!(used <= capacity * 1.001, "used {used} exceeds capacity {capacity}");
        }
    }

    #[test]
    fn minimum_rates_are_honoured_for_enabled_queries() {
        let demands = vec![
            QueryDemand::new(1000.0, 0.3),
            QueryDemand::new(1000.0, 0.6),
            QueryDemand::new(1000.0, 0.05),
        ];
        for strategy in [mmfs_cpu, mmfs_pkt] {
            let allocations = strategy(&demands, 1500.0);
            for (demand, allocation) in demands.iter().zip(&allocations) {
                if let Allocation::Rate(rate) = allocation {
                    assert!(
                        *rate >= demand.min_rate - 1e-9,
                        "rate {rate} below minimum {}",
                        demand.min_rate
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_minimums_disable_largest_min_demand_first() {
        // Total minimum demand = 0.9*1000 + 0.5*1000 + 0.1*1000 = 1500 > 800.
        let demands = vec![
            QueryDemand::new(1000.0, 0.9),
            QueryDemand::new(1000.0, 0.5),
            QueryDemand::new(1000.0, 0.1),
        ];
        let allocations = mmfs_pkt(&demands, 800.0);
        assert!(allocations[0].is_disabled(), "largest minimum demand should be disabled");
        assert!(!allocations[2].is_disabled(), "smallest minimum demand should survive");
    }

    #[test]
    fn mmfs_pkt_equalises_rates_not_cycles() {
        // One heavy query (10x cost) and one light query, no minimum rates.
        let demands = vec![QueryDemand::new(10_000.0, 0.0), QueryDemand::new(1000.0, 0.0)];
        let capacity = 5500.0;
        let pkt = mmfs_pkt(&demands, capacity);
        // Common rate = 5500 / 11000 = 0.5 for both.
        assert!((pkt[0].rate() - 0.5).abs() < 1e-6);
        assert!((pkt[1].rate() - 0.5).abs() < 1e-6);

        let cpu = mmfs_cpu(&demands, capacity);
        // CPU fairness gives both queries ~2750 cycles: the light query gets
        // rate 1.0 and the heavy one ~0.45.
        assert!((cpu[1].rate() - 1.0).abs() < 1e-6, "light query should be unsampled: {cpu:?}");
        assert!(cpu[0].rate() < 0.5, "heavy query should be sampled harder: {cpu:?}");
    }

    #[test]
    fn mmfs_cpu_maximises_the_minimum_allocation() {
        let demands = vec![
            QueryDemand::new(4000.0, 0.0),
            QueryDemand::new(3000.0, 0.0),
            QueryDemand::new(500.0, 0.0),
        ];
        let allocations = mmfs_cpu(&demands, 4500.0);
        let cycles: Vec<f64> =
            demands.iter().zip(&allocations).map(|(d, a)| d.predicted_cycles * a.rate()).collect();
        // The small query is fully satisfied; the two big ones split the rest
        // evenly (2000 each).
        assert!((cycles[2] - 500.0).abs() < 1.0);
        assert!((cycles[0] - 2000.0).abs() < 5.0, "{cycles:?}");
        assert!((cycles[1] - 2000.0).abs() < 5.0, "{cycles:?}");
    }

    #[test]
    fn eq_srates_disables_queries_with_unmeetable_minimums() {
        let demands = vec![QueryDemand::new(1000.0, 0.9), QueryDemand::new(1000.0, 0.1)];
        let allocations = eq_srates(&demands, 600.0);
        // Common rate would be 0.3 < 0.9, so the first query is disabled and
        // the second gets min(1, 600/1000) = 0.6.
        assert!(allocations[0].is_disabled());
        assert!((allocations[1].rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_disables_or_zeroes_everything() {
        let demands = vec![QueryDemand::new(1000.0, 0.2), QueryDemand::new(100.0, 0.0)];
        for strategy in [mmfs_cpu, mmfs_pkt, eq_srates] {
            let allocations = strategy(&demands, 0.0);
            let used = total_cycles(&demands, &allocations);
            assert!(used < 1e-6, "capacity zero must not allocate cycles: {allocations:?}");
        }
    }

    #[test]
    fn empty_demand_list_is_fine() {
        assert!(mmfs_cpu(&[], 100.0).is_empty());
        assert!(mmfs_pkt(&[], 100.0).is_empty());
        assert!(eq_srates(&[], 100.0).is_empty());
    }

    #[test]
    fn trait_objects_match_the_free_functions() {
        let demands = vec![
            QueryDemand::new(1000.0, 0.1),
            QueryDemand::new(500.0, 0.2),
            QueryDemand::new(2000.0, 0.05),
        ];
        let capacity = 1200.0;
        type FreeFn = fn(&[QueryDemand], f64) -> Vec<Allocation>;
        let pairs: [(Box<dyn AllocationStrategy>, FreeFn); 3] = [
            (Box::new(EqualRates), eq_srates),
            (Box::new(MmfsCpu), mmfs_cpu),
            (Box::new(MmfsPkt), mmfs_pkt),
        ];
        for (strategy, free_fn) in pairs {
            assert_eq!(strategy.allocate(&demands, capacity), free_fn(&demands, capacity));
        }
    }

    #[test]
    fn strategy_names_match_the_report_names() {
        assert_eq!(EqualRates.name(), "eq_srates");
        assert_eq!(MmfsCpu.name(), "mmfs_cpu");
        assert_eq!(MmfsPkt.name(), "mmfs_pkt");
    }
}
