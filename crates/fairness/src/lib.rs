//! Fair allocation of computing resources among competing queries.
//!
//! Chapter 5 of the paper replaces the single global sampling rate of the
//! basic load shedder by a per-query allocation computed with a *max-min
//! fair share* policy under per-query minimum sampling-rate constraints
//! (`m_q`). Two flavours exist:
//!
//! * [`mmfs_cpu`] — max-min fairness in terms of allocated CPU cycles,
//! * [`mmfs_pkt`] — max-min fairness in terms of access to the packet stream
//!   (the sampling rates themselves), which the paper shows to be fairer in
//!   terms of resulting accuracy because the number of processed packets
//!   correlates with accuracy better than raw cycles do.
//!
//! When even the minimum demands do not fit, the queries with the largest
//! minimum demands (`m_q × d̂_q`) are disabled first — the rule that gives
//! the allocation game its unique Nash equilibrium at demand `C/|Q|`
//! (Section 5.3), modelled in the [`game`] module.

//!
//! All three schemes are also available behind the object-safe
//! [`AllocationStrategy`] trait ([`EqualRates`], [`MmfsCpu`], [`MmfsPkt`]),
//! so the control plane can swap allocators at runtime and users can plug in
//! their own.

#![forbid(unsafe_code)]

pub mod allocation;
pub mod game;

pub use allocation::{
    eq_srates, mmfs_cpu, mmfs_pkt, Allocation, AllocationStrategy, EqualRates, MmfsCpu, MmfsPkt,
    QueryDemand,
};
pub use game::{AllocationGame, FairnessMode};
