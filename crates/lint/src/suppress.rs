//! Inline suppression comments: `// lint:allow(<rule>[, <rule>]): <why>`.
//!
//! A suppression must name known rules *and* carry a non-empty justification
//! — the contract is "fixed or justified", never silently waived. A trailing
//! comment suppresses its own line; a standalone comment suppresses the next
//! line that contains code (so a long justification can sit on its own line,
//! or several suppressions can stack above one statement). Malformed or
//! unused suppressions are themselves diagnostics (`bad-suppression`), and
//! `bad-suppression` cannot be suppressed.

use crate::lexer::{Token, TokenKind};
use crate::report::Diagnostic;
use crate::rules::{is_rule, BAD_SUPPRESSION};

/// One parsed, well-formed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rules it waives.
    pub rules: Vec<String>,
    /// The mandatory justification text.
    pub justification: String,
    /// The code line it applies to (`None` when no code follows).
    pub target_line: Option<u32>,
    /// Set by the engine when a diagnostic actually matched.
    pub used: bool,
}

/// Extracts suppressions from the token stream. `code_lines` is the sorted,
/// deduplicated list of lines that contain at least one non-comment token.
/// Malformed comments come back as ready-made `bad-suppression` diagnostics.
pub fn parse_suppressions(
    path: &str,
    tokens: &[Token],
    code_lines: &[u32],
) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut suppressions = Vec::new();
    let mut diagnostics = Vec::new();
    for token in tokens {
        let TokenKind::LineComment(text) = &token.kind else { continue };
        // Doc comments (`///`, `//!`) are documentation, not directives.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let trimmed = text.trim();
        let Some(rest) = trimmed.strip_prefix("lint:allow") else { continue };
        match parse_body(rest) {
            Ok((rules, justification)) => {
                let target_line = if code_lines.binary_search(&token.line).is_ok() {
                    Some(token.line)
                } else {
                    code_lines.iter().copied().find(|l| *l > token.line)
                };
                suppressions.push(Suppression {
                    line: token.line,
                    rules,
                    justification,
                    target_line,
                    used: false,
                });
            }
            Err(why) => diagnostics.push(Diagnostic {
                file: path.to_owned(),
                line: token.line,
                rule: BAD_SUPPRESSION.to_owned(),
                message: why,
                suppressed: false,
                justification: None,
            }),
        }
    }
    (suppressions, diagnostics)
}

/// Parses `(<rules>): <justification>` (everything after `lint:allow`).
fn parse_body(rest: &str) -> Result<(Vec<String>, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err("malformed suppression: expected `(` after lint:allow".to_owned());
    };
    let Some(close) = inner.find(')') else {
        return Err("malformed suppression: unclosed rule list".to_owned());
    };
    let mut rules = Vec::new();
    for name in inner[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err("malformed suppression: empty rule name".to_owned());
        }
        if !is_rule(name) {
            return Err(format!("unknown rule `{name}` in suppression"));
        }
        rules.push(name.to_owned());
    }
    let tail = inner[close + 1..].trim_start();
    let Some(justification) = tail.strip_prefix(':') else {
        return Err(format!(
            "suppression for {} is missing its justification (`lint:allow(rule): why`)",
            rules.join(", ")
        ));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err(format!(
            "suppression for {} has an empty justification — say why the contract holds",
            rules.join(", ")
        ));
    }
    Ok((rules, justification.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
        let tokens = lex(src);
        let mut code_lines: Vec<u32> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment(_)))
            .map(|t| t.line)
            .collect();
        code_lines.dedup();
        parse_suppressions("f.rs", &tokens, &code_lines)
    }

    #[test]
    fn trailing_comment_targets_its_own_line() {
        let (sup, bad) = parse("let x = 1; // lint:allow(no-unwrap): invariant documented\n");
        assert!(bad.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, Some(1));
        assert_eq!(sup[0].rules, ["no-unwrap"]);
    }

    #[test]
    fn standalone_comment_targets_next_code_line() {
        let (sup, _) =
            parse("// lint:allow(det-map): reason spans\n// a second comment line\n\nlet x = 1;\n");
        assert_eq!(sup[0].target_line, Some(4));
    }

    #[test]
    fn multiple_rules_share_one_justification() {
        let (sup, bad) = parse("// lint:allow(det-map, no-unwrap): both fine here\nlet x = 1;\n");
        assert!(bad.is_empty());
        assert_eq!(sup[0].rules, ["det-map", "no-unwrap"]);
    }

    #[test]
    fn missing_justification_is_rejected() {
        let (sup, bad) = parse("let x = 1; // lint:allow(det-map)\n");
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("missing its justification"));
    }

    #[test]
    fn empty_justification_is_rejected() {
        let (sup, bad) = parse("let x = 1; // lint:allow(det-map):   \n");
        assert!(sup.is_empty());
        assert!(bad[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (sup, bad) = parse("let x = 1; // lint:allow(det-mpa): typo\n");
        assert!(sup.is_empty());
        assert!(bad[0].message.contains("unknown rule `det-mpa`"));
    }

    #[test]
    fn doc_comments_never_parse_as_suppressions() {
        let (sup, bad) = parse("/// lint:allow(det-map): doc text\nlet x = 1;\n");
        assert!(sup.is_empty());
        assert!(bad.is_empty());
    }
}
