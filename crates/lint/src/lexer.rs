//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The rules in [`crate::rules`] only need a faithful stream of identifiers
//! and punctuation with line numbers, with comments, string/char literals and
//! numbers correctly skipped so that a `HashMap` inside a doc comment or a
//! `".unwrap()"` inside a string literal never fires a diagnostic. The tricky
//! parts of Rust's lexical grammar that matter for that goal are all handled:
//! nested block comments, raw strings with arbitrary `#` fences, byte and
//! raw-byte strings, raw identifiers, char literals versus lifetimes, and
//! numeric literals with exponents and type suffixes.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token payloads. Literal payloads are dropped — no rule looks inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `#`, ...).
    Punct(char),
    /// String, byte-string, char or numeric literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A `//` line comment; the payload is the text after `//`, untrimmed.
    /// Doc comments (`///`, `//!`) are included — the suppression parser
    /// rejects them by inspecting the leading character.
    LineComment(String),
}

/// Lexes `source` into tokens. Never fails: unexpected bytes become `Punct`.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_literal();
                    self.push(TokenKind::Literal, line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Literal, line);
                }
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment(text), line);
    }

    /// Block comments nest in Rust: `/* /* */ */` is one comment.
    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, EOF ends it
            }
        }
    }

    /// Consumes a normal (escaped) string body; the opening quote is gone.
    fn string_literal(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including `\"` and `\\`
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw string body starting at the `#`s or the quote:
    /// `r##"..."##` with any fence width, no escapes inside.
    fn raw_string_literal(&mut self) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            fence += 1;
        }
        if self.peek(0) != Some('"') {
            return; // not actually a raw string; caller guarded against this
        }
        self.bump();
        loop {
            match self.bump() {
                None => return, // unterminated: tolerate
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < fence && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == fence {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// `'a` is a lifetime, `'a'` (and `'\n'`, `'\u{1F600}'`) a char literal.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: `'\x'`, `'\u{...}'`. Consume the
                // backslash AND the escaped character before looking for the
                // closing quote, so `'\''` terminates on the right quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, line);
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek(1) != Some('\'') => {
                // A lifetime: identifier chars not closed by a quote.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, line);
            }
            Some(_) => {
                // Plain char literal `'x'` (including `'''` is invalid Rust;
                // consume up to the closing quote regardless).
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, line);
            }
            None => self.push(TokenKind::Punct('\''), line),
        }
    }

    /// Numeric literal: integers, floats, exponents, suffixes, radix prefixes.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    let at_exponent = (c == 'e' || c == 'E')
                        && matches!(self.peek(1), Some('+' | '-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                    self.bump();
                    if at_exponent {
                        self.bump(); // the sign; digits follow in the loop
                    }
                }
                // A dot continues the literal only when a digit follows
                // (`1.5`), so `1..n` and `1.max(2)` lex as separate tokens.
                '.' if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    /// Identifiers, plus the prefixed literal forms that *start* like one:
    /// `r"raw"`, `r#"raw"#`, `b"bytes"`, `br#"raw bytes"#`, `b'x'`, `r#ident`.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or(' ');
        // Raw / byte string lookahead before committing to an identifier.
        let (skip, is_string) = match c {
            'r' | 'b' => {
                let mut ahead = 1;
                if c == 'b' && self.peek(1) == Some('r') {
                    ahead = 2;
                }
                let mut fence = ahead;
                while self.peek(fence) == Some('#') {
                    fence += 1;
                }
                match self.peek(fence) {
                    Some('"') if c == 'r' || ahead == 2 || fence == 1 => (ahead, true),
                    _ => (0, false),
                }
            }
            _ => (0, false),
        };
        if is_string {
            for _ in 0..skip {
                self.bump(); // `r`, `b` or `br`
            }
            self.raw_string_literal();
            self.push(TokenKind::Literal, line);
            return;
        }
        if c == 'b' && self.peek(1) == Some('\'') {
            self.bump(); // byte char literal `b'x'`
            self.char_or_lifetime(line);
            return;
        }
        if c == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
            self.bump();
            self.bump(); // raw identifier `r#type`: strip the prefix
        }
        let mut ident = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                ident.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(ident), line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r##"let x = r#"HashMap inside"#; let y = "unwrap()"; use std::z;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y", "use", "std", "z"]);
    }

    #[test]
    fn raw_string_fence_widths_match_exactly() {
        // The body contains `"#` which must not close an `##` fence.
        let src = "let s = r##\"a \"# b\"##; next";
        assert_eq!(idents(src), ["let", "s", "next"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_literals() {
        let src = "let a = b\"HashMap\"; let c = br#\"HashSet\"#; let d = b'x';";
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "before /* outer /* HashMap */ still comment */ after";
        assert_eq!(idents(src), ["before", "after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        assert_eq!(idents(src), ["fn", "f", "x", "str", "char"]);
        let lifetimes = lex(src).iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn escaped_char_literals_do_not_derail() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; after";
        assert_eq!(idents(src), ["let", "q", "let", "n", "let", "u", "after"]);
    }

    #[test]
    fn numbers_with_exponents_and_suffixes_are_single_literals() {
        let src = "let x = 1.5e-3_f64 + 0xFF_u32 + 2.0f32; let r = 1..10; m.max(1.0)";
        assert_eq!(idents(src), ["let", "x", "let", "r", "m", "max"]);
    }

    #[test]
    fn raw_identifiers_lose_the_prefix() {
        assert_eq!(idents("let r#type = r#match;"), ["let", "type", "match"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "line1\n/* two\nlines */ here\n\"str\nstr\" tail";
        let toks = lex(src);
        let here = toks.iter().find(|t| t.kind == TokenKind::Ident("here".into())).unwrap();
        assert_eq!(here.line, 3);
        let tail = toks.iter().find(|t| t.kind == TokenKind::Ident("tail".into())).unwrap();
        assert_eq!(tail.line, 5);
    }

    #[test]
    fn line_comments_capture_text() {
        let toks = lex("code // lint:allow(det-map): reason\nmore");
        let comment = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::LineComment(text) => Some(text.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(comment, " lint:allow(det-map): reason");
    }
}
