//! Diagnostics, the aggregated report, and its text / JSON renderings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finding: a rule hit (possibly suppressed) or a `bad-suppression`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`crate::rules::RULE_NAMES`] or `bad-suppression`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// True when an inline `lint:allow` waived it.
    pub suppressed: bool,
    /// The suppression's justification, when suppressed.
    pub justification: Option<String>,
}

/// The whole-workspace lint result.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, in walk (sorted-path) order.
    pub files_scanned: Vec<String>,
    /// Every diagnostic, suppressed ones included, in file-then-line order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Diagnostics that fail the run: unsuppressed hits and bad suppressions.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed)
    }

    /// True when the tree conforms (exit status 0).
    pub fn clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Per-rule `(violations, suppressed)` counts, rule-name ordered.
    pub fn rule_counts(&self) -> BTreeMap<&str, (usize, usize)> {
        let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for d in &self.diagnostics {
            let entry = counts.entry(d.rule.as_str()).or_default();
            if d.suppressed {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        counts
    }

    /// The `file:line rule message` listing plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in self.violations() {
            let _ = writeln!(out, "{}:{} {} {}", d.file, d.line, d.rule, d.message);
        }
        let suppressed = self.diagnostics.iter().filter(|d| d.suppressed).count();
        let _ = writeln!(
            out,
            "netshed-lint: {} files scanned, {} violation(s), {} suppressed",
            self.files_scanned.len(),
            self.violations().count(),
            suppressed
        );
        out
    }

    /// The machine-readable summary (stable field order, hand-emitted JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned.len());
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        out.push_str("  \"rules\": {");
        let counts = self.rule_counts();
        for (i, (rule, (violations, suppressed))) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"violations\": {violations}, \"suppressed\": {suppressed}}}",
                json_string(rule)
            );
        }
        out.push_str(if counts.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"suppressed\": {}",
                json_string(&d.file),
                d.line,
                json_string(&d.rule),
                json_string(&d.message),
                d.suppressed
            );
            if let Some(justification) = &d.justification {
                let _ = write!(out, ", \"justification\": {}", json_string(justification));
            }
            out.push('}');
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping: quotes, backslashes, control characters.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: vec!["a.rs".into(), "b.rs".into()],
            diagnostics: vec![
                Diagnostic {
                    file: "a.rs".into(),
                    line: 3,
                    rule: "det-map".into(),
                    message: "std map".into(),
                    suppressed: false,
                    justification: None,
                },
                Diagnostic {
                    file: "b.rs".into(),
                    line: 9,
                    rule: "no-unwrap".into(),
                    message: "say \"why\"".into(),
                    suppressed: true,
                    justification: Some("documented".into()),
                },
            ],
        }
    }

    #[test]
    fn text_lists_only_violations_with_file_line_rule() {
        let text = sample().render_text();
        assert!(text.contains("a.rs:3 det-map std map"));
        assert!(!text.contains("b.rs:9"));
        assert!(text.contains("2 files scanned, 1 violation(s), 1 suppressed"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"det-map\": {\"violations\": 1, \"suppressed\": 0}"));
        assert!(json.contains("say \\\"why\\\""));
        assert!(json.contains("\"justification\": \"documented\""));
    }

    #[test]
    fn empty_report_is_clean_valid_json() {
        let report = Report::default();
        assert!(report.clean());
        let json = report.to_json();
        assert!(json.contains("\"rules\": {},"));
        assert!(json.contains("\"diagnostics\": []"));
    }
}
