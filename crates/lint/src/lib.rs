//! netshed-lint: machine-checks the workspace determinism contract.
//!
//! The whole load-shedding pipeline promises that worker count is a pure
//! wall-clock knob: replaying the same trace must produce bit-identical
//! output at any parallelism. That only holds while three conventions do —
//! RNG draws happen in the sequential plan phase, floating-point merges fold
//! in registration order, and iterated state lives in order-stable maps.
//! This crate turns those conventions (plus the typed-error contract) into
//! named, suppressible static-analysis rules over a hand-rolled lexer:
//!
//! | rule | contract clause |
//! |------|-----------------|
//! | `det-map` | iterated state uses `DetHashMap`/`DetHashSet`/BTree maps |
//! | `plan-phase-rng` | RNG lives in the plan phase / trace generation |
//! | `telemetry-clock` | wall clocks feed telemetry only |
//! | `merge-order` | f64 folds never run over hash-map iteration order |
//! | `no-unwrap` | library code returns `NetshedError`, never panics |
//! | `hot-path-alloc` | designated hot-path modules never allocate per bin |
//!
//! Violations are suppressed inline with
//! `// lint:allow(<rule>): <justification>` — the justification is
//! mandatory. See DESIGN.md "Determinism contract" for the full mapping
//! from each rule to the golden-corpus failure mode it prevents.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use report::{Diagnostic, Report};
pub use rules::{lint_source, Config, BAD_SUPPRESSION, RULE_NAMES};

use std::io;
use std::path::Path;

/// Lints every first-party source file under `root` with the given policy.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    for file in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(&file.absolute)?;
        report.diagnostics.extend(lint_source(&file.relative, &source, config));
        report.files_scanned.push(file.relative);
    }
    Ok(report)
}
