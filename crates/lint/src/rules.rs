//! The determinism-contract rules and the token-stream engine that runs them.
//!
//! Each rule is a named, suppressible check over the lexed token stream of a
//! single file. Rules never look inside comments or literals (the lexer
//! already dropped them) and never fire inside test code: `#[cfg(test)]` /
//! `#[test]` items are masked out by [`test_regions`], and integration-test /
//! bench / example trees are excluded by the walker before a file gets here.

use crate::lexer::{lex, Token, TokenKind};
use crate::report::Diagnostic;
use crate::suppress::{parse_suppressions, Suppression};

/// The six contract rules, in reporting order.
pub const RULE_NAMES: [&str; 6] =
    ["det-map", "plan-phase-rng", "telemetry-clock", "merge-order", "no-unwrap", "hot-path-alloc"];

/// Pseudo-rule reported for malformed suppression comments (unknown rule
/// name, missing `:` or empty justification). It cannot itself be
/// suppressed: a suppression must always carry a justification.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Returns true when `name` is one of the six suppressible contract rules.
pub fn is_rule(name: &str) -> bool {
    RULE_NAMES.contains(&name)
}

/// Per-file rule activation policy.
///
/// The determinism contract is not uniform across the tree: RNG *belongs* in
/// the plan phase and the trace generator, and wall-clock reads *belong* in
/// the execution-plane telemetry. Those sanctioned homes are path allowlists
/// here; everywhere else a hit needs an inline
/// `// lint:allow(<rule>): <justification>`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes (workspace-relative, `/`-separated) where RNG is legal:
    /// the plan phase and trace generation.
    pub rng_allowed: Vec<String>,
    /// Path prefixes where `Instant`/`SystemTime` are legal: telemetry.
    pub clock_allowed: Vec<String>,
    /// Path prefixes where map-iterator folds are legal: the
    /// registration-order merge helpers (empty today — the merge plane folds
    /// over `Vec`s, which this rule never flags).
    pub fold_allowed: Vec<String>,
    /// When true, `no-unwrap` skips binary sources (`src/bin/`, `main.rs`):
    /// a CLI's top level may panic; library code must return typed errors.
    pub unwrap_skips_binaries: bool,
    /// Path prefixes of the *designated hot-path modules*, where
    /// `hot-path-alloc` flags per-packet/per-bin heap allocation
    /// (`.collect()`, `.to_vec()`, `Vec::new`). Inverted polarity: the rule
    /// is active only *inside* these prefixes — everywhere else allocation
    /// is unremarkable. `Vec::with_capacity` is always fine (setup code
    /// sizes its buffers once).
    pub hot_path: Vec<String>,
}

impl Config {
    /// The netshed workspace policy (see DESIGN.md "Determinism contract").
    pub fn workspace() -> Self {
        let owned = |paths: &[&str]| paths.iter().map(|p| (*p).to_owned()).collect();
        Self {
            rng_allowed: owned(&[
                // Trace generation: synthetic traffic is *made of* seeded draws.
                "crates/trace/src/",
                // The plan phase: packet-sampling draws and noise pre-draws
                // happen here, sequentially, before any dispatch.
                "crates/monitor/src/monitor.rs",
                "crates/monitor/src/shedder.rs",
                // The seeded measurement-noise / cost-jitter model; draws are
                // pre-planned per bin with a config-fixed draw count.
                "crates/queries/src/cost.rs",
                // The experiment harness is a consumer, not library code.
                "crates/bench/src/",
            ]),
            clock_allowed: owned(&[
                // ExecStats telemetry: wall-clock feeds reporting only, never
                // an observable output.
                "crates/monitor/src/exec.rs",
                "crates/bench/src/",
            ]),
            fold_allowed: Vec::new(),
            unwrap_skips_binaries: true,
            hot_path: owned(&[
                // The steady-state data plane: the column store, the fused
                // extractor, the keep-list shedders and the task dispatcher
                // must not allocate per bin (see the `alloc_per_bin` bench
                // guard in BENCH_pipeline.json).
                "crates/trace/src/batch.rs",
                "crates/features/src/extractor.rs",
                "crates/monitor/src/shedder.rs",
                "crates/monitor/src/exec.rs",
            ]),
        }
    }

    /// Every rule active everywhere — the fixture-corpus configuration.
    /// (`hot-path-alloc` has inverted polarity, so "everywhere" means the
    /// empty prefix, which every path starts with.)
    pub fn strict() -> Self {
        Self {
            rng_allowed: Vec::new(),
            clock_allowed: Vec::new(),
            fold_allowed: Vec::new(),
            unwrap_skips_binaries: false,
            hot_path: vec![String::new()],
        }
    }

    fn rule_active(&self, rule: &str, path: &str) -> bool {
        let allowed = |prefixes: &[String]| prefixes.iter().any(|p| path.starts_with(p.as_str()));
        match rule {
            "plan-phase-rng" => !allowed(&self.rng_allowed),
            "telemetry-clock" => !allowed(&self.clock_allowed),
            "merge-order" => !allowed(&self.fold_allowed),
            "no-unwrap" => {
                !(self.unwrap_skips_binaries
                    && (path.contains("/bin/") || path.ends_with("main.rs")))
            }
            // Inverted: active only inside the designated hot-path modules.
            "hot-path-alloc" => allowed(&self.hot_path),
            _ => true,
        }
    }
}

/// Lints one file's source. `path` is the workspace-relative path used both
/// for allowlist matching and in emitted diagnostics.
pub fn lint_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let tokens = lex(source);
    let in_test = test_regions(&tokens);
    let code_lines: Vec<u32> = {
        let mut lines: Vec<u32> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment(_)))
            .map(|t| t.line)
            .collect();
        lines.dedup();
        lines
    };
    let (mut suppressions, mut diagnostics) = parse_suppressions(path, &tokens, &code_lines);

    let mut raw = Vec::new();
    scan(&tokens, &in_test, |rule, line, message| {
        if config.rule_active(rule, path) && !raw.iter().any(|(r, l, _)| *r == rule && *l == line) {
            raw.push((rule, line, message));
        }
    });

    for (rule, line, message) in raw {
        let suppression = suppressions
            .iter_mut()
            .find(|s| s.target_line == Some(line) && s.rules.iter().any(|r| r == rule));
        let (suppressed, justification) = match suppression {
            Some(s) => {
                s.used = true;
                (true, Some(s.justification.clone()))
            }
            None => (false, None),
        };
        diagnostics.push(Diagnostic {
            file: path.to_owned(),
            line,
            rule: rule.to_owned(),
            message,
            suppressed,
            justification,
        });
    }

    for s in &suppressions {
        if !s.used {
            diagnostics.push(unused_suppression(path, s));
        }
    }

    diagnostics.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    diagnostics
}

fn unused_suppression(path: &str, s: &Suppression) -> Diagnostic {
    Diagnostic {
        file: path.to_owned(),
        line: s.line,
        rule: BAD_SUPPRESSION.to_owned(),
        message: format!(
            "unused suppression for {}: no matching diagnostic on the suppressed line",
            s.rules.join(", ")
        ),
        suppressed: false,
        justification: None,
    }
}

/// Map/set iterator methods whose order reflects hashing, not registration.
const MAP_ITERS: [&str; 5] = ["values", "keys", "values_mut", "into_values", "into_keys"];
/// Order-sensitive folds.
const FOLDS: [&str; 3] = ["sum", "fold", "product"];
/// RNG vocabulary: the compat `rand` crate's public surface.
const RNG_IDENTS: [&str; 8] =
    ["rand", "Rng", "SeedableRng", "StdRng", "SmallRng", "ThreadRng", "thread_rng", "random"];

/// Runs every rule matcher over the token stream, reporting hits through
/// `emit(rule, line, message)`. Tokens inside test regions never fire.
fn scan(tokens: &[Token], in_test: &[bool], mut emit: impl FnMut(&'static str, u32, String)) {
    // Code view: comments and lifetimes removed so adjacency checks (`.`
    // before `unwrap`) see the tokens the compiler would.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_) | TokenKind::Lifetime))
        .collect();

    let punct = |i: usize| -> Option<char> {
        match code.get(i)?.1.kind {
            TokenKind::Punct(c) => Some(c),
            _ => None,
        }
    };
    let ident_is = |i: usize, name: &str| -> bool {
        matches!(code.get(i), Some((_, t)) if matches!(&t.kind, TokenKind::Ident(n) if n == name))
    };

    // merge-order is stateful: a map-iterator call arms the rule until the
    // statement ends; a fold while armed fires.
    let mut armed = false;

    for (i, &(orig, token)) in code.iter().enumerate() {
        if in_test[orig] {
            armed = false;
            continue;
        }
        let line = token.line;
        match &token.kind {
            TokenKind::Punct(';' | '{' | '}') => armed = false,
            TokenKind::Ident(name) => {
                let name = name.as_str();
                let after_dot = i > 0 && punct(i - 1) == Some('.');
                let after_path = i > 0 && punct(i - 1) == Some(':');
                match name {
                    "HashMap" | "HashSet" => emit(
                        "det-map",
                        line,
                        format!(
                            "std::collections::{name} iterates in randomized order; \
                             use Det{name} (netshed-sketch) or the BTree equivalent"
                        ),
                    ),
                    _ if RNG_IDENTS.contains(&name) && !after_dot => emit(
                        "plan-phase-rng",
                        line,
                        format!(
                            "RNG symbol `{name}` outside the plan phase / trace generation; \
                             draws must happen sequentially before dispatch"
                        ),
                    ),
                    "Instant" | "SystemTime" => emit(
                        "telemetry-clock",
                        line,
                        format!(
                            "wall-clock read `{name}` outside the telemetry allowlist; \
                             clock values must never influence observable output"
                        ),
                    ),
                    "unwrap" | "expect" if after_dot || after_path => emit(
                        "no-unwrap",
                        line,
                        format!(
                            "`{name}` in library code; return a typed error or document \
                             the invariant and suppress"
                        ),
                    ),
                    "collect" | "to_vec" if after_dot && punct(i + 1) == Some('(') => emit(
                        "hot-path-alloc",
                        line,
                        format!(
                            "`.{name}()` allocates in a designated hot-path module; stream \
                             into caller-provided scratch or justify the allocation"
                        ),
                    ),
                    "new"
                        if after_path
                            && punct(i.wrapping_sub(2)) == Some(':')
                            && i >= 3
                            && ident_is(i - 3, "Vec") =>
                    {
                        emit(
                            "hot-path-alloc",
                            line,
                            "`Vec::new` in a designated hot-path module; use a pooled or \
                         caller-provided buffer (`Vec::with_capacity` at setup is fine) \
                         or justify the allocation"
                                .to_owned(),
                        );
                    }
                    _ if MAP_ITERS.contains(&name) && after_dot && punct(i + 1) == Some('(') => {
                        armed = true;
                    }
                    _ if FOLDS.contains(&name) && after_dot && armed => emit(
                        "merge-order",
                        line,
                        format!(
                            "f64 `{name}` over a map/set iterator; fold in registration \
                             order (or justify why the iteration order is stable)"
                        ),
                    ),
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// Marks every token index that belongs to a `#[cfg(test)]` or `#[test]`
/// item (the attribute itself through the end of the item it gates).
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .collect();
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !is_punct(&code, i, '#') || !is_punct(&code, i + 1, '[') {
            i += 1;
            continue;
        }
        // Collect the attribute body up to its matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut body: Vec<&TokenKind> = Vec::new();
        while j < code.len() {
            match code[j].1.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ref kind => body.push(kind),
            }
            j += 1;
        }
        if j >= code.len() {
            break; // unterminated attribute; nothing more to mask
        }
        if !attr_gates_test(&body) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then consume the gated item: either a
        // braced body (`mod tests { ... }`, `fn t() { ... }`) or a `;` item.
        let mut k = j + 1;
        let mut braces = 0usize;
        while k < code.len() {
            match code[k].1.kind {
                TokenKind::Punct('{') => braces += 1,
                TokenKind::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if braces == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let end = code.get(k).map_or(tokens.len() - 1, |(orig, _)| *orig);
        for slot in &mut mask[code[attr_start].0..=end] {
            *slot = true;
        }
        i = k + 1;
    }
    mask
}

fn is_punct(code: &[(usize, &Token)], i: usize, c: char) -> bool {
    matches!(code.get(i), Some((_, t)) if t.kind == TokenKind::Punct(c))
}

/// Does this attribute body gate its item to test builds only?
///
/// `test` → yes. `cfg(test)` → yes. `cfg(all(test, unix))` → yes (test is
/// required). `cfg(any(test, unix))` → no (enabled outside tests too).
/// `cfg(not(test))` → no. Everything unrecognized → no, conservatively.
fn attr_gates_test(body: &[&TokenKind]) -> bool {
    let idents: Vec<&str> = body
        .iter()
        .filter_map(|k| match k {
            TokenKind::Ident(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    match idents.as_slice() {
        ["test"] => true,
        ["cfg", rest @ ..] => cfg_requires_test(rest),
        _ => false,
    }
}

/// Approximates "does this cfg predicate require `test`?" from the flat
/// identifier sequence of the predicate. `not(...)` poisons everything it
/// precedes, so any predicate mentioning `not` is conservatively non-test;
/// `any(...)` requires test only if every alternative does, which the flat
/// view cannot see, so `any` is also conservatively non-test.
fn cfg_requires_test(idents: &[&str]) -> bool {
    if idents.iter().any(|i| *i == "not" || *i == "any") {
        return false;
    }
    idents.contains(&"test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsuppressed(path: &str, src: &str) -> Vec<(String, u32)> {
        lint_source(path, src, &Config::strict())
            .into_iter()
            .filter(|d| !d.suppressed)
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn det_map_fires_on_std_maps_only() {
        let src = "use std::collections::HashMap;\nlet m: DetHashMap<u64, f64> = x;\n";
        assert_eq!(unsuppressed("f.rs", src), [("det-map".into(), 1)]);
    }

    #[test]
    fn diagnostics_dedup_per_line() {
        let src = "use std::collections::{HashMap, HashSet};\n";
        assert_eq!(unsuppressed("f.rs", src).len(), 1);
    }

    #[test]
    fn rng_allowlist_masks_plan_phase_files() {
        let src = "use rand::rngs::StdRng;\n";
        assert_eq!(unsuppressed("crates/app/src/lib.rs", src).len(), 1);
        let policy = Config::workspace();
        let hits = lint_source("crates/monitor/src/monitor.rs", src, &policy);
        assert!(hits.is_empty());
    }

    #[test]
    fn workspace_policy_grants_the_service_plane_no_exemptions() {
        // The daemon and snapshot modules are library code on the output
        // path: RNG, wall-clock reads, map-order folds and unwraps all
        // fire there under the workspace policy.
        let policy = Config::workspace();
        for path in ["crates/service/src/daemon.rs", "crates/service/src/snapshot.rs"] {
            let rng = lint_source(path, "use rand::rngs::StdRng;\n", &policy);
            assert_eq!(rng.len(), 1, "{path}: plan-phase-rng must be active");
            let clock = lint_source(path, "let t = std::time::Instant::now();\n", &policy);
            assert_eq!(clock.len(), 1, "{path}: telemetry-clock must be active");
            let unwrap = lint_source(path, "let x = y.unwrap();\n", &policy);
            assert_eq!(unwrap.len(), 1, "{path}: no-unwrap must be active");
        }
    }

    #[test]
    fn unwrap_needs_receiver_or_path() {
        let src = "fn unwrap() {}\nlet x = y.unwrap();\nlet z = Option::unwrap(w);\n";
        assert_eq!(unsuppressed("f.rs", src), [("no-unwrap".into(), 2), ("no-unwrap".into(), 3)]);
    }

    #[test]
    fn merge_order_arms_within_one_statement() {
        let src = "let a: f64 = m.values().sum();\nlet b: f64 = v.iter().sum();\n\
                   let c = m.values();\nlet d: f64 = c.map(f).fold(0.0, g);\n";
        // Line 1 fires; line 2 is a slice iterator (never flagged); lines 3-4
        // split the chain across statements, which disarms the rule — a
        // documented false negative, kept for near-zero false positives.
        assert_eq!(unsuppressed("f.rs", src), [("merge-order".into(), 1)]);
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                   #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(unsuppressed("f.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod real {\n    use std::collections::HashMap;\n}\n";
        assert_eq!(unsuppressed("f.rs", src), [("det-map".into(), 3)]);
    }

    #[test]
    fn cfg_all_with_test_is_masked() {
        let src = "#[cfg(all(test, unix))]\nmod t {\n    use std::collections::HashMap;\n}\n";
        assert!(unsuppressed("f.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_fires_on_alloc_vocabulary_only() {
        let src = "let a: Vec<u32> = xs.iter().copied().collect();\nlet b = xs.to_vec();\n\
                   let c: Vec<u32> = Vec::new();\nlet d: Vec<u32> = Vec::with_capacity(8);\n\
                   let e = KeepListPool::new();\n";
        assert_eq!(
            unsuppressed("f.rs", src),
            [
                ("hot-path-alloc".into(), 1),
                ("hot-path-alloc".into(), 2),
                ("hot-path-alloc".into(), 3),
            ]
        );
    }

    #[test]
    fn hot_path_alloc_only_applies_inside_designated_modules() {
        let src = "let a: Vec<u32> = xs.iter().copied().collect();\n";
        let policy = Config::workspace();
        assert!(lint_source("crates/monitor/src/monitor.rs", src, &policy).is_empty());
        let hits = lint_source("crates/monitor/src/shedder.rs", src, &policy);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "hot-path-alloc");
    }

    #[test]
    fn suppression_with_justification_downgrades() {
        let src = "use std::collections::HashMap; // lint:allow(det-map): alias definition\n";
        let all = lint_source("f.rs", src, &Config::strict());
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed);
        assert_eq!(all[0].justification.as_deref(), Some("alias definition"));
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// lint:allow(det-map): nothing here\nlet x = 1;\n";
        let all = lint_source("f.rs", src, &Config::strict());
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].rule, BAD_SUPPRESSION);
    }
}
