//! Workspace discovery: which files the contract applies to.
//!
//! The lint walks the *library* source of every first-party crate — each
//! `crates/<name>/src/**/*.rs` plus the root facade `src/` — in sorted path
//! order so diagnostics and the JSON report are byte-stable run to run.
//!
//! Excluded by construction:
//! - `crates/compat/**`: vendored offline stand-ins for third-party crates
//!   (rand, criterion, ...). They implement the nondeterminism the contract
//!   bans — that is their job — and are not netshed library code.
//! - integration `tests/`, `benches/`, `examples/` trees: not library code;
//!   inline `#[cfg(test)]` modules are masked by the rule engine instead.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered source file: workspace-relative path (`/`-separated) plus
/// its absolute location on disk.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub relative: String,
    pub absolute: PathBuf,
}

/// Lists the lintable sources under `root` (the workspace root), sorted by
/// relative path.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "compat"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut files)?;
    }
    files.sort_by(|a, b| a.relative.cmp(&b.relative));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine).
fn collect_rs(dir: &Path, root: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let relative = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile { relative, absolute: path });
        }
    }
    Ok(())
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares the
/// workspace. Errors out rather than guessing when none is found.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace Cargo.toml above {}", start.display()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint/ -> crates/ -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
    }

    #[test]
    fn walk_finds_the_first_party_crates_only() {
        let files = workspace_sources(&repo_root()).expect("walk");
        assert!(files.iter().any(|f| f.relative == "src/lib.rs"));
        assert!(files.iter().any(|f| f.relative == "crates/monitor/src/monitor.rs"));
        assert!(files.iter().any(|f| f.relative == "crates/lint/src/walk.rs"));
        // The service plane is first-party library code: its daemon and
        // snapshot modules fall under the full determinism policy (no path
        // allowlist exempts crates/service).
        assert!(files.iter().any(|f| f.relative == "crates/service/src/daemon.rs"));
        assert!(files.iter().any(|f| f.relative == "crates/service/src/snapshot.rs"));
        assert!(files.iter().all(|f| !f.relative.starts_with("crates/compat/")));
        assert!(files
            .iter()
            .all(|f| std::path::Path::new(&f.relative).extension().is_some_and(|e| e == "rs")));
        let mut sorted = files.iter().map(|f| f.relative.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, files.iter().map(|f| f.relative.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn find_root_from_nested_dir() {
        let nested = repo_root().join("crates/lint/src");
        assert_eq!(find_workspace_root(&nested).expect("root"), repo_root());
    }
}
