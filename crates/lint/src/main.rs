//! CLI: `cargo run -p netshed-lint -- --workspace [--json <path>]`.
//!
//! Prints `file:line rule message` for every unsuppressed diagnostic and
//! exits 1 when any exist, 0 on a conforming tree. `--json` additionally
//! writes the machine-readable summary (CI uploads it as an artifact).

#![forbid(unsafe_code)]

use netshed_lint::{lint_workspace, walk::find_workspace_root, Config};
use std::process::ExitCode;

const USAGE: &str = "usage: netshed-lint --workspace [--json <path>] [--root <dir>]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut json_path: Option<String> = None;
    let mut root_override: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => return fail("--json requires a path"),
            },
            "--root" => match args.next() {
                Some(dir) => root_override = Some(dir),
                None => return fail("--root requires a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unrecognized argument `{other}`")),
        }
    }
    if !workspace {
        return fail("pass --workspace to lint the workspace");
    }

    let root = if let Some(dir) = root_override {
        std::path::PathBuf::from(dir)
    } else {
        let cwd = match std::env::current_dir() {
            Ok(cwd) => cwd,
            Err(error) => return fail(&format!("cannot read current dir: {error}")),
        };
        match find_workspace_root(&cwd) {
            Ok(root) => root,
            Err(error) => return fail(&error.to_string()),
        }
    };

    let report = match lint_workspace(&root, &Config::workspace()) {
        Ok(report) => report,
        Err(error) => return fail(&format!("lint walk failed: {error}")),
    };

    print!("{}", report.render_text());
    if let Some(path) = json_path {
        if let Err(error) = std::fs::write(&path, report.to_json()) {
            return fail(&format!("cannot write {path}: {error}"));
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("netshed-lint: {message}\n{USAGE}");
    ExitCode::FAILURE
}
