//! The committed fixture corpus: every rule proves it fires, proves its
//! suppression works, and proves its clean variant stays silent — with
//! exact `(rule, line, suppressed)` expectations so any drift in the lexer
//! or the rule engine shows up as a readable diff.

use netshed_lint::{lint_source, Config, Diagnostic};

/// Lints a fixture under the strict (no-allowlist) policy and flattens the
/// result to comparable tuples.
fn run(name: &str) -> Vec<(String, u32, bool)> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).expect("fixture must be readable");
    brief(&lint_source(&format!("fixtures/{name}"), &source, &Config::strict()))
}

fn brief(diagnostics: &[Diagnostic]) -> Vec<(String, u32, bool)> {
    diagnostics.iter().map(|d| (d.rule.clone(), d.line, d.suppressed)).collect()
}

fn expected(spec: &[(&str, u32, bool)]) -> Vec<(String, u32, bool)> {
    spec.iter().map(|(rule, line, suppressed)| ((*rule).to_owned(), *line, *suppressed)).collect()
}

#[test]
fn det_map_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("det_map.rs"),
        expected(&[
            ("det-map", 5, false), // use std::collections::HashMap
            ("det-map", 8, false), // HashMap field
            ("det-map", 9, false), // qualified HashSet field
            ("det-map", 13, true), // alias definition, justified
        ])
    );
}

#[test]
fn plan_phase_rng_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("plan_phase_rng.rs"),
        expected(&[
            ("plan-phase-rng", 4, false), // use rand::rngs::StdRng
            ("plan-phase-rng", 5, false), // Rng + SeedableRng, deduped to one
            ("plan-phase-rng", 8, false), // StdRng field
            ("plan-phase-rng", 14, true), // seed-derived constants, justified
        ])
    );
}

#[test]
fn telemetry_clock_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("telemetry_clock.rs"),
        expected(&[
            ("telemetry-clock", 4, false),  // use std::time::Instant
            ("telemetry-clock", 7, false),  // Instant::now in library code
            ("telemetry-clock", 13, false), // SystemTime::now
            ("telemetry-clock", 18, true),  // telemetry-only read, justified
        ])
    );
}

#[test]
fn merge_order_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("merge_order.rs"),
        expected(&[
            ("merge-order", 5, false),  // .values().sum()
            ("merge-order", 9, false),  // .values().copied().fold(...)
            ("merge-order", 13, false), // .keys().map(...).product()
            ("merge-order", 18, true),  // key-sorted BTreeMap, justified
        ])
    );
}

#[test]
fn no_unwrap_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("no_unwrap.rs"),
        expected(&[
            ("no-unwrap", 5, false),  // .unwrap()
            ("no-unwrap", 9, false),  // .expect("boom")
            ("no-unwrap", 13, false), // Option::unwrap(x) path form
            ("no-unwrap", 19, true),  // documented invariant, justified
        ])
    );
}

#[test]
fn hot_path_alloc_fires_suppresses_and_stays_clean() {
    assert_eq!(
        run("hot_path_alloc.rs"),
        expected(&[
            ("hot-path-alloc", 5, false),  // .collect()
            ("hot-path-alloc", 9, false),  // .to_vec()
            ("hot-path-alloc", 13, false), // Vec::new
            ("hot-path-alloc", 23, true),  // once-per-run setup, justified
        ])
    );
}

#[test]
fn lexer_edges_raw_strings_comments_and_char_literals_stay_silent() {
    // Raw strings (any fence width), byte strings, nested block comments,
    // lifetimes and escaped char literals all hide rule-triggering tokens;
    // only the real violation at the end fires.
    assert_eq!(run("lexer_edges.rs"), expected(&[("no-unwrap", 28, false)]));
}

#[test]
fn cfg_test_boundaries_mask_gated_items_exactly() {
    assert_eq!(
        run("cfg_test_boundary.rs"),
        expected(&[
            ("no-unwrap", 5, false),  // before the test module
            ("no-unwrap", 31, false), // cfg(not(test)) is NOT masked
            ("no-unwrap", 35, false), // after the masked items
        ])
    );
}

#[test]
fn suppression_placement_trailing_standalone_stacked_and_malformed() {
    assert_eq!(
        run("suppression_placement.rs"),
        expected(&[
            ("no-unwrap", 5, true),  // trailing comment, same line
            ("no-unwrap", 10, true), // standalone, next code line
            ("det-map", 16, true),   // stacked suppressions, same target
            ("no-unwrap", 16, true),
            ("no-unwrap", 22, true), // justification continued by comments
            ("bad-suppression", 28, false), // missing `:` justification
            ("no-unwrap", 28, false), // ...and the hit stays unsuppressed
            ("bad-suppression", 32, false), // empty justification
            ("no-unwrap", 32, false),
            ("bad-suppression", 36, false), // unknown rule name
            ("no-unwrap", 36, false),
            ("bad-suppression", 39, false), // unused suppression
        ])
    );
}

#[test]
fn workspace_policy_allowlists_mask_sanctioned_homes() {
    let rng = "use rand::rngs::StdRng;\n";
    let clock = "use std::time::Instant;\n";
    let policy = Config::workspace();
    // Sanctioned homes: silent.
    assert!(lint_source("crates/trace/src/generator.rs", rng, &policy).is_empty());
    assert!(lint_source("crates/monitor/src/shedder.rs", rng, &policy).is_empty());
    assert!(lint_source("crates/monitor/src/exec.rs", clock, &policy).is_empty());
    // Everywhere else: a violation.
    assert_eq!(lint_source("crates/predict/src/predictor.rs", rng, &policy).len(), 1);
    assert_eq!(lint_source("crates/queries/src/query.rs", clock, &policy).len(), 1);
    // Binaries may panic at top level; libraries may not.
    let unwrap = "fn main() { run().unwrap(); }\n";
    assert!(lint_source("crates/bench/src/bin/experiments.rs", unwrap, &policy).is_empty());
    assert_eq!(lint_source("crates/bench/src/lib.rs", unwrap, &policy).len(), 1);
    // hot-path-alloc is inverted: active only in the designated hot modules.
    let alloc = "pub fn f(xs: &[u32]) -> Vec<u32> { xs.to_vec() }\n";
    assert!(lint_source("crates/monitor/src/monitor.rs", alloc, &policy).is_empty());
    assert_eq!(lint_source("crates/trace/src/batch.rs", alloc, &policy).len(), 1);
}

#[test]
fn the_workspace_itself_conforms() {
    // The acceptance gate, as a test: every first-party source file passes
    // the workspace policy with zero unsuppressed diagnostics.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = netshed_lint::lint_workspace(root, &Config::workspace()).expect("workspace walk");
    let violations: Vec<String> = report
        .violations()
        .map(|d| format!("{}:{} {} {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(violations.is_empty(), "determinism contract violations:\n{}", violations.join("\n"));
    assert!(report.files_scanned.len() > 50, "the walk must cover the whole workspace");
}
