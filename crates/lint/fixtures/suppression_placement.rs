// Fixture: suppression placement. Trailing, standalone-above, stacked and
// comment-interleaved suppressions, plus the malformed variants.

pub fn trailing(x: Option<u64>) -> u64 {
    x.unwrap() // lint:allow(no-unwrap): checked two lines up by the caller
}

pub fn standalone(x: Option<u64>) -> u64 {
    // lint:allow(no-unwrap): standalone suppression covers the next code line
    x.unwrap()
}

pub fn stacked() -> u64 {
    // lint:allow(no-unwrap): the key 1 is inserted on the same line
    // lint:allow(det-map): scratch map local to one call, never iterated
    *HashMap::from([(1u64, 2u64)]).get(&1).unwrap()
}

pub fn interleaved(x: Option<u64>) -> u64 {
    // lint:allow(no-unwrap): a justification may be followed by
    // ordinary commentary lines before the code it suppresses
    x.unwrap()
}

// -- malformed variants: each is a bad-suppression violation ----------------

pub fn missing_colon(x: Option<u64>) -> u64 {
    x.unwrap() // lint:allow(no-unwrap)
}

pub fn empty_reason(x: Option<u64>) -> u64 {
    x.unwrap() // lint:allow(no-unwrap):
}

pub fn unknown_rule(x: Option<u64>) -> u64 {
    x.unwrap() // lint:allow(no-unrwap): typo in the rule name
}

// lint:allow(no-unwrap): this suppression matches nothing and is unused
pub fn unused() -> u64 {
    7
}
