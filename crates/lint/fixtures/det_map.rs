// Fixture: det-map. Three sections — bad, suppressed, clean — exercised by
// tests/fixtures.rs with exact expected diagnostics.

// -- bad: std maps in library code ------------------------------------------
use std::collections::HashMap;

pub struct BadState {
    pub table: HashMap<u64, f64>,
    pub seen: std::collections::HashSet<u64>,
}

// -- suppressed: the deterministic alias definition pattern -----------------
pub type MyDetMap<K, V> = HashMap<K, V, DetBuildHasher>; // lint:allow(det-map): defining the deterministic alias itself

// -- clean: deterministic containers and test code never fire ---------------
pub struct CleanState {
    pub table: DetHashMap<u64, f64>,
    pub ordered: std::collections::BTreeMap<u64, f64>,
}

/// Doc comments mentioning HashMap are fine, as are strings: "HashMap".
pub fn doc_mention() -> &'static str {
    "std::collections::HashMap"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_std_maps() {
        let _ = HashMap::<u64, u64>::new();
    }
}
