// Fixture: #[cfg(test)] module boundaries. Violations inside test-gated
// items are masked; code after the module's closing brace is checked again.

pub fn before(x: Option<u64>) -> u64 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    // Nested braces must not end the masked region early.
    #[test]
    fn nested() {
        let m = HashMap::from([(1, 2)]);
        for (_k, _v) in &m {
            let _ = Instant::now();
        }
        let _ = Some(1u64).unwrap();
    }
}

#[cfg(test)]
fn test_helper() -> u64 {
    Some(7u64).unwrap()
}

#[cfg(not(test))]
pub fn not_test_gated(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn after(x: Option<u64>) -> u64 {
    x.unwrap()
}
