// Fixture: merge-order. Bad, suppressed and clean sections.

// -- bad: f64 folds over hash-map iteration order ---------------------------
pub fn bad_sum(map: &DetHashMap<u64, f64>) -> f64 {
    map.values().sum()
}

pub fn bad_fold(map: &DetHashMap<u64, f64>) -> f64 {
    map.values().copied().fold(f64::INFINITY, f64::min)
}

pub fn bad_keyed(map: &DetHashMap<u64, f64>) -> f64 {
    map.keys().map(|k| *k as f64).product()
}

// -- suppressed: a justified stable-order fold ------------------------------
pub fn suppressed_sum(map: &std::collections::BTreeMap<u64, f64>) -> f64 {
    map.values().sum() // lint:allow(merge-order): BTreeMap iterates key-sorted, replay-stable
}

// -- clean: slice/vec iterators and registration-order folds ----------------
pub fn clean_slice_sum(values: &[f64]) -> f64 {
    values.iter().sum()
}

pub fn clean_registration_fold(per_query: &[(u64, f64)]) -> f64 {
    per_query.iter().map(|(_, v)| v).fold(0.0, |acc, v| acc + v)
}
