// Fixture: no-unwrap. Bad, suppressed and clean sections.

// -- bad: panicking extraction in library code ------------------------------
pub fn bad_unwrap(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn bad_expect(x: Result<u64, String>) -> u64 {
    x.expect("boom")
}

pub fn bad_path_form(x: Option<u64>) -> u64 {
    Option::unwrap(x)
}

// -- suppressed: a documented invariant -------------------------------------
pub fn suppressed(x: Option<u64>) -> u64 {
    // lint:allow(no-unwrap): populated for every registered query at build time
    x.expect("registration invariant")
}

// -- clean: combinators, ? and idents merely named unwrap -------------------
pub fn clean_combinators(x: Option<u64>) -> u64 {
    x.unwrap_or_default().max(x.unwrap_or(0))
}

pub fn unwrap(x: Option<u64>) -> Option<u64> {
    // A function *named* unwrap is not a call to Option::unwrap.
    x
}

pub fn clean_question(x: Option<u64>) -> Option<u64> {
    Some(x? + 1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = Some(1u64).unwrap();
    }
}
