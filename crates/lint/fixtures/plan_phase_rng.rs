// Fixture: plan-phase-rng. Bad, suppressed and clean sections.

// -- bad: RNG machinery outside the plan phase ------------------------------
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct BadSampler {
    rng: StdRng,
}

// -- suppressed: seed-derived constants, no per-packet draws ----------------
pub fn derive_constants(seed: u64) -> [u64; 2] {
    // lint:allow(plan-phase-rng): seed-expanded constants fixed at construction
    let mut rng = StdRng::seed_from_u64(seed);
    [rng.next(), rng.next()]
}

// -- clean: plain arithmetic; `rng`-named locals alone never fire -----------
pub fn mix(rng_state: u64) -> u64 {
    rng_state.wrapping_mul(0x9E3779B97F4A7C15)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tests_may_seed_rngs() {
        let _ = StdRng::seed_from_u64(1);
    }
}
