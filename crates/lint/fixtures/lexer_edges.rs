// Fixture: lexer edge cases. Rule-triggering tokens hidden inside raw
// strings, nested block comments and char literals must never fire; the
// real violation at the end must fire at exactly its line.

pub fn raw_strings() -> &'static str {
    r#"use std::collections::HashMap; x.unwrap(); Instant::now()"#
}

pub fn raw_string_wide_fence() -> &'static str {
    r##"rand::rngs::StdRng inside a "# fence"##
}

pub fn byte_strings() -> (&'static [u8], u8) {
    (br#"HashSet::new().values().sum()"#, b'\'')
}

/* Nested block comments hide everything:
   /* use std::collections::HashMap; let x = y.unwrap(); */
   still inside the outer comment: SystemTime::now()
*/

pub fn lifetimes_not_chars<'a>(x: &'a str) -> (&'a str, char, char) {
    (x, 'x', '\'')
}

// The one real violation in this file; everything above must stay silent.
pub fn real_violation(x: Option<u64>) -> u64 {
    x.unwrap()
}
