//! hot-path-alloc: per-bin heap allocation inside a designated hot-path
//! module (the strict fixture policy treats every path as hot).

pub fn collects(xs: &[u32]) -> Vec<u32> {
    xs.iter().copied().collect()
}

pub fn copies(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}

pub fn fresh() -> Vec<u32> {
    Vec::new()
}

// Sizing a buffer once at setup is the sanctioned pattern: never flagged.
pub fn preallocated(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}

pub fn justified() -> Vec<u32> {
    // lint:allow(hot-path-alloc): once-per-run construction, not per-bin work
    Vec::new()
}

#[cfg(test)]
mod tests {
    // Test code allocates freely; the rule is masked here.
    #[test]
    fn scratch() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.to_vec().len(), 4);
    }
}
