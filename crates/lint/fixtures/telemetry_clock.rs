// Fixture: telemetry-clock. Bad, suppressed and clean sections.

// -- bad: wall-clock reads in library code ----------------------------------
use std::time::Instant;

pub fn bad_elapsed() -> f64 {
    let start = Instant::now();
    work();
    start.elapsed().as_secs_f64()
}

pub fn bad_epoch() -> u64 {
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()
}

// -- suppressed: telemetry that never feeds observable output ---------------
pub fn timed_telemetry() -> f64 {
    let start = Instant::now(); // lint:allow(telemetry-clock): feeds ExecStats telemetry only, never query output
    work();
    start.elapsed().as_secs_f64()
}

// -- clean: Duration values carry no ambient clock --------------------------
pub fn budget() -> std::time::Duration {
    std::time::Duration::from_micros(100)
}
