//! The per-batch feature extractor.
//!
//! The extractor is *fused*: instead of one pass over the batch per aggregate
//! (ten passes, each re-serialising and re-hashing a 13-byte key per packet),
//! it walks the batch once and feeds the ten precomputed per-packet
//! [`AggregateHashes`](netshed_trace::AggregateHashes) into the ten bitmap
//! pairs. The hashes themselves are computed at most once per batch and
//! cached on the shared packet store, so a query's sampled re-extraction
//! reuses the rows the full-batch extraction already paid for.

use crate::aggregate::{Aggregate, AggregateHashes, AGGREGATE_COUNT};
use crate::vector::{CounterKind, FeatureId, FeatureVector};
use netshed_sketch::{MultiResolutionBitmap, StateError, StateReader, StateWriter};
use netshed_trace::{Batch, BatchView, HashClaim};

/// Configuration of the feature extractor.
#[derive(Debug, Clone)]
pub struct ExtractorConfig {
    /// Duration of the measurement interval in microseconds; the "new items"
    /// bitmaps are reset at every interval boundary.
    pub measurement_interval_us: u64,
    /// Maximum cardinality the bitmaps are dimensioned for.
    pub max_cardinality: usize,
    /// Seed mixed into the aggregate hash functions.
    pub hash_seed: u64,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        Self {
            measurement_interval_us: netshed_trace::DEFAULT_MEASUREMENT_INTERVAL_US,
            max_cardinality: 200_000,
            hash_seed: 0x5eed_f00d,
        }
    }
}

/// Per-aggregate bitmap state.
struct AggregateState {
    /// Distinct items observed in the current batch; cleared per batch.
    batch_unique: MultiResolutionBitmap,
    /// Distinct items observed in the current measurement interval.
    interval_seen: MultiResolutionBitmap,
}

impl AggregateState {
    /// Folds the filled per-batch bitmap into the interval state and returns
    /// the four counters, in vector order: unique, new (derived from the
    /// interval-estimate difference around a single merge per batch, as in
    /// the paper), repeated and batch-repeated.
    fn interval_counters(&mut self, packets: f64) -> [f64; 4] {
        let unique = self.batch_unique.estimate().min(packets).round();
        let before = self.interval_seen.estimate();
        self.interval_seen.merge(&self.batch_unique);
        let after = self.interval_seen.estimate();
        let new = (after - before).clamp(0.0, unique).round();
        let repeated = (packets - unique).max(0.0);
        let batch_repeated = (packets - new).max(0.0);
        [unique, new, repeated, batch_repeated]
    }
}

/// Extracts the 42-feature vector from every batch.
///
/// The extractor is stateful: the "new items" counters compare each batch
/// against everything seen since the start of the current measurement
/// interval, so batches must be fed in order.
pub struct FeatureExtractor {
    config: ExtractorConfig,
    aggregates: [AggregateState; AGGREGATE_COUNT],
    current_interval: Option<u64>,
    batches_processed: u64,
}

// Per-query extractors are handed to execution-plane workers (`&mut` moves
// across the scoped-thread boundary), so the extractor — owned bitmap state
// only — must stay `Send`, and the vectors it produces `Send + Sync`.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<FeatureExtractor>();
    assert_send_sync::<FeatureVector>();
};

impl std::fmt::Debug for FeatureExtractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureExtractor")
            .field("batches_processed", &self.batches_processed)
            .field("current_interval", &self.current_interval)
            .finish_non_exhaustive()
    }
}

impl FeatureExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: ExtractorConfig) -> Self {
        let aggregates = std::array::from_fn(|_| AggregateState {
            batch_unique: MultiResolutionBitmap::for_cardinality(config.max_cardinality),
            interval_seen: MultiResolutionBitmap::for_cardinality(config.max_cardinality),
        });
        Self { config, aggregates, current_interval: None, batches_processed: 0 }
    }

    /// Creates an extractor with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ExtractorConfig::default())
    }

    /// Number of batches processed so far.
    pub fn batches_processed(&self) -> u64 {
        self.batches_processed
    }

    /// Approximate memory footprint of the bitmap state in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.aggregates
            .iter()
            .map(|a| a.batch_unique.memory_bytes() + a.interval_seen.memory_bytes())
            .sum()
    }

    /// Serializes the extractor's interval state for a checkpoint: the
    /// current interval marker, the batch count, and every aggregate's bitmap
    /// pair. The "new items" counters compare each batch against everything
    /// seen since the interval began, so this state is essential — it cannot
    /// be rebuilt without replaying the whole interval.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.opt_u64(self.current_interval);
        writer.u64(self.batches_processed);
        for state in &self.aggregates {
            state.batch_unique.save_state(writer);
            state.interval_seen.save_state(writer);
        }
    }

    /// Restores state captured by [`FeatureExtractor::save_state`] into an
    /// extractor built from the same configuration.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.current_interval = reader.opt_u64()?;
        self.batches_processed = reader.u64()?;
        for state in &mut self.aggregates {
            state.batch_unique.load_state(reader)?;
            state.interval_seen.load_state(reader)?;
        }
        Ok(())
    }

    /// Extracts the feature vector for a batch.
    ///
    /// The estimated number of elementary operations performed (one hash +
    /// bitmap update per aggregate per packet) is returned alongside the
    /// vector so the caller can account for the extraction overhead
    /// (Table 3.4 of the paper).
    pub fn extract(&mut self, batch: &Batch) -> (FeatureVector, u64) {
        self.extract_view(&batch.view())
    }

    /// Extracts the feature vector for a (possibly sampled) batch view.
    ///
    /// Identical to [`FeatureExtractor::extract`] but operates on the
    /// zero-copy [`BatchView`] the shedders produce; the per-packet aggregate
    /// hashes are shared with every other consumer of the same batch.
    pub fn extract_view(&mut self, view: &BatchView) -> (FeatureVector, u64) {
        // Fused single pass, packet-major: each packet's ten precomputed
        // hashes update the ten per-batch bitmaps before the next packet is
        // touched — the cache-friendly shape for a single thread. The
        // sharded path ([`FeatureExtractor::shard`]) trades that row locality
        // for per-aggregate independence; both produce identical vectors.
        let interval = view.measurement_interval(self.config.measurement_interval_us);
        if self.current_interval != Some(interval) {
            for state in &mut self.aggregates {
                state.interval_seen.clear();
            }
            self.current_interval = Some(interval);
        }
        self.batches_processed += 1;

        let packets = view.len() as f64;
        for state in &mut self.aggregates {
            state.batch_unique.clear();
        }
        match view.aggregate_hashes(self.config.hash_seed) {
            HashClaim::Rows(hashes) => {
                // Walk the hash side array by store index only: no packet
                // memory is touched on the cached path.
                for store_index in view.store_indices() {
                    let row = hashes[store_index].as_array();
                    for (state, &hash) in self.aggregates.iter_mut().zip(row) {
                        state.batch_unique.insert_hash(hash);
                    }
                }
            }
            HashClaim::SeedMismatch { .. } => {
                // A foreign seed owns the batch's cache (counted on the
                // store): hash only the tuples this view retains.
                let tuples = view.store().tuples();
                for store_index in view.store_indices() {
                    let row = AggregateHashes::compute(&tuples[store_index], self.config.hash_seed);
                    for (state, &hash) in self.aggregates.iter_mut().zip(row.as_array()) {
                        state.batch_unique.insert_hash(hash);
                    }
                }
            }
        }

        let mut vector = FeatureVector::zeros();
        vector.set(FeatureId::Packets, packets);
        vector.set(FeatureId::Bytes, view.total_bytes() as f64);
        for (agg_idx, aggregate) in Aggregate::ALL.iter().enumerate() {
            let [unique, new, repeated, batch_repeated] =
                self.aggregates[agg_idx].interval_counters(packets);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::Unique), unique);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::New), new);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::Repeated), repeated);
            vector.set(FeatureId::Counter(*aggregate, CounterKind::BatchRepeated), batch_repeated);
        }
        let operations = view.len() as u64 * Aggregate::ALL.len() as u64;
        (vector, operations)
    }

    /// Starts a sharded extraction: performs the order-sensitive interval
    /// bookkeeping on the calling thread and returns one [`ExtractorShard`]
    /// per aggregate. Each shard touches only its own aggregate's bitmaps,
    /// so the shards may be processed concurrently on different threads;
    /// assemble the result with [`FeatureExtractor::finish_shards`]. The
    /// outcome is bit-identical to [`FeatureExtractor::extract_view`] — set
    /// semantics make per-bitmap insert order irrelevant, and every other
    /// operation is confined to one shard.
    pub fn shard(&mut self, view: &BatchView) -> [ExtractorShard<'_>; AGGREGATE_COUNT] {
        // Reset the per-interval state when the batch crosses into a new
        // measurement interval.
        let interval = view.measurement_interval(self.config.measurement_interval_us);
        if self.current_interval != Some(interval) {
            for state in &mut self.aggregates {
                state.interval_seen.clear();
            }
            self.current_interval = Some(interval);
        }
        self.batches_processed += 1;

        let hash_seed = self.config.hash_seed;
        // Pair states with their aggregate index through the enumerate so
        // the mapping is immune to `from_fn`'s evaluation order; the array
        // is returned by value — no per-bin allocation.
        let mut states = self.aggregates.iter_mut().enumerate();
        std::array::from_fn(|_| {
            // lint:allow(no-unwrap): the iterator yields exactly AGGREGATE_COUNT states by construction
            let (aggregate_index, state) = states.next().expect("one state per aggregate");
            ExtractorShard { state, aggregate_index, hash_seed, counters: [0.0; 4] }
        })
    }

    /// Assembles the feature vector from processed shards, together with the
    /// estimated elementary-operation count (one hash + one bitmap update per
    /// aggregate per packet, exactly as the fused path accounts it).
    pub fn finish_shards(view: &BatchView, shards: &[ExtractorShard<'_>]) -> (FeatureVector, u64) {
        let mut vector = FeatureVector::zeros();
        vector.set(FeatureId::Packets, view.len() as f64);
        vector.set(FeatureId::Bytes, view.total_bytes() as f64);
        for shard in shards {
            let aggregate = Aggregate::ALL[shard.aggregate_index];
            let [unique, new, repeated, batch_repeated] = shard.counters;
            vector.set(FeatureId::Counter(aggregate, CounterKind::Unique), unique);
            vector.set(FeatureId::Counter(aggregate, CounterKind::New), new);
            vector.set(FeatureId::Counter(aggregate, CounterKind::Repeated), repeated);
            vector.set(FeatureId::Counter(aggregate, CounterKind::BatchRepeated), batch_repeated);
        }
        let operations = view.len() as u64 * Aggregate::ALL.len() as u64;
        (vector, operations)
    }
}

/// One aggregate's independently processable slice of a feature extraction
/// (see [`FeatureExtractor::shard`]).
pub struct ExtractorShard<'a> {
    state: &'a mut AggregateState,
    aggregate_index: usize,
    hash_seed: u64,
    /// Unique / new / repeated / batch-repeated, in vector order.
    counters: [f64; 4],
}

impl ExtractorShard<'_> {
    /// Processes the view for this shard's aggregate: per-packet bitmap
    /// inserts (from the batch's cached hash rows when this extractor's seed
    /// owns them), the per-interval merge, and the four counter features.
    pub fn process(&mut self, view: &BatchView) {
        let packets = view.len() as f64;
        self.state.batch_unique.clear();
        match view.aggregate_hashes(self.hash_seed) {
            HashClaim::Rows(hashes) => {
                for store_index in view.store_indices() {
                    self.state
                        .batch_unique
                        .insert_hash(hashes[store_index].as_array()[self.aggregate_index]);
                }
            }
            HashClaim::SeedMismatch { .. } => {
                // A foreign seed owns the batch's cache: hash the retained
                // tuples for this aggregate only.
                let tuples = view.store().tuples();
                for store_index in view.store_indices() {
                    let row = AggregateHashes::compute(&tuples[store_index], self.hash_seed);
                    self.state.batch_unique.insert_hash(row.as_array()[self.aggregate_index]);
                }
            }
        }

        self.counters = self.state.interval_counters(packets);
    }
}

// Shards cross the scoped-thread boundary; their only state is a `&mut` into
// this extractor's bitmaps.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ExtractorShard<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_trace::{FiveTuple, Packet};

    fn batch_of(tuples: &[FiveTuple], bin: u64) -> Batch {
        let packets: Vec<Packet> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Packet::header_only(bin * 100_000 + i as u64, *t, 100, 0))
            .collect();
        Batch::new(bin, bin * 100_000, 100_000, packets)
    }

    #[test]
    fn packets_and_bytes_are_exact() {
        let tuples = vec![FiveTuple::new(1, 2, 3, 4, 6); 10];
        let mut extractor = FeatureExtractor::with_defaults();
        let (features, ops) = extractor.extract(&batch_of(&tuples, 0));
        assert_eq!(features.packets(), 10.0);
        assert_eq!(features.bytes(), 1000.0);
        assert_eq!(ops, 10 * Aggregate::ALL.len() as u64);
    }

    #[test]
    fn unique_counts_distinct_tuples() {
        let tuples: Vec<FiveTuple> = (0..100).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
        let mut extractor = FeatureExtractor::with_defaults();
        let (features, _) = extractor.extract(&batch_of(&tuples, 0));
        let unique_src = features.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::Unique));
        assert!((unique_src - 100.0).abs() <= 10.0, "unique src-ip estimate {unique_src}");
        // All packets share the destination IP, so unique dst-ip is ~1.
        let unique_dst = features.get(FeatureId::Counter(Aggregate::DstIp, CounterKind::Unique));
        assert!(unique_dst <= 3.0, "unique dst-ip estimate {unique_dst}");
    }

    #[test]
    fn repeated_is_packets_minus_unique() {
        let tuples: Vec<FiveTuple> = (0..50).map(|i| FiveTuple::new(i % 10, 2, 3, 4, 6)).collect();
        let mut extractor = FeatureExtractor::with_defaults();
        let (features, _) = extractor.extract(&batch_of(&tuples, 0));
        let unique = features.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::Unique));
        let repeated = features.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::Repeated));
        assert!((unique + repeated - 50.0).abs() < 1e-9);
    }

    #[test]
    fn new_items_shrink_within_a_measurement_interval() {
        let tuples: Vec<FiveTuple> = (0..200).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
        let mut extractor = FeatureExtractor::with_defaults();
        // Bin 0 and bin 1 fall into the same 1 s measurement interval.
        let (first, _) = extractor.extract(&batch_of(&tuples, 0));
        let (second, _) = extractor.extract(&batch_of(&tuples, 1));
        let new_first = first.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::New));
        let new_second = second.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::New));
        assert!(new_first > 150.0, "first batch should be mostly new: {new_first}");
        assert!(
            new_second < new_first * 0.3,
            "second identical batch should have few new items: {new_second}"
        );
    }

    #[test]
    fn new_items_reset_at_interval_boundaries() {
        let tuples: Vec<FiveTuple> = (0..200).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
        let mut extractor = FeatureExtractor::with_defaults();
        let (_, _) = extractor.extract(&batch_of(&tuples, 0));
        // Bin 10 starts a new 1 s measurement interval (10 * 100 ms).
        let (third, _) = extractor.extract(&batch_of(&tuples, 10));
        let new_third = third.get(FeatureId::Counter(Aggregate::SrcIp, CounterKind::New));
        assert!(new_third > 150.0, "items should count as new again: {new_third}");
    }

    /// Reference ten-pass extractor replicating the pre-fusion loop nest:
    /// aggregate-major, re-keying and re-hashing every packet per aggregate.
    fn ten_pass_reference(config: &ExtractorConfig, batch: &Batch) -> Vec<f64> {
        use netshed_sketch::hash_bytes;
        use netshed_trace::aggregate_hash_seed;
        let packets = batch.len() as f64;
        let mut uniques = Vec::new();
        for (agg_idx, aggregate) in Aggregate::ALL.iter().enumerate() {
            let mut bitmap = MultiResolutionBitmap::for_cardinality(config.max_cardinality);
            let seed = aggregate_hash_seed(config.hash_seed, agg_idx);
            for packet in batch.packets.iter() {
                bitmap.insert_hash(hash_bytes(&aggregate.key(packet.tuple()), seed));
            }
            uniques.push(bitmap.estimate().min(packets).round());
        }
        uniques
    }

    #[test]
    fn fused_extraction_is_bit_identical_to_the_ten_pass_reference() {
        let tuples: Vec<FiveTuple> =
            (0..500).map(|i| FiveTuple::new(i % 97, i % 13, (i % 31) as u16, 80, 6)).collect();
        let batch = batch_of(&tuples, 0);
        let config = ExtractorConfig::default();
        let mut extractor = FeatureExtractor::new(config.clone());
        let (features, _) = extractor.extract(&batch);
        for (unique, aggregate) in ten_pass_reference(&config, &batch).iter().zip(Aggregate::ALL) {
            let fused = features.get(FeatureId::Counter(aggregate, CounterKind::Unique));
            assert_eq!(
                fused,
                *unique,
                "aggregate {} diverged from the reference",
                aggregate.name()
            );
        }
    }

    #[test]
    fn extractor_with_a_non_cached_seed_matches_the_cached_path() {
        // Claim the batch's hash cache with the default seed, then extract
        // with a different seed: the fallback (hash retained packets only)
        // must produce the same features as a fresh batch whose cache that
        // seed owns.
        let tuples: Vec<FiveTuple> = (0..200).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
        let batch = batch_of(&tuples, 0);
        let _ = batch.view().aggregate_hashes(ExtractorConfig::default().hash_seed);

        let other_seed = ExtractorConfig { hash_seed: 0xd1ff_5eed, ..ExtractorConfig::default() };
        let mut on_contended = FeatureExtractor::new(other_seed.clone());
        let mut on_fresh = FeatureExtractor::new(other_seed);
        let (a, ops_a) = on_contended.extract(&batch);
        let (b, ops_b) = on_fresh.extract(&batch_of(&tuples, 0));
        assert_eq!(ops_a, ops_b);
        for id in FeatureId::all() {
            assert_eq!(a.get(id), b.get(id), "feature {} differs on the fallback path", id.name());
        }
    }

    #[test]
    fn sharded_extraction_is_bit_identical_to_the_fused_pass() {
        let tuples: Vec<FiveTuple> =
            (0..400).map(|i| FiveTuple::new(i % 53, i % 11, (i % 29) as u16, 80, 6)).collect();
        // Two bins in the same interval plus one in a fresh interval, so the
        // interval bookkeeping is exercised on both paths.
        for bins in [[0u64, 1, 10], [0, 10, 20]] {
            let mut fused = FeatureExtractor::with_defaults();
            let mut sharded = FeatureExtractor::with_defaults();
            for bin in bins {
                let batch = batch_of(&tuples, bin);
                let (expected, expected_ops) = fused.extract(&batch);
                let view = batch_of(&tuples, bin).view();
                let mut shards = sharded.shard(&view);
                for shard in shards.iter_mut().rev() {
                    // Reverse order: shard processing order must not matter.
                    shard.process(&view);
                }
                let (actual, actual_ops) = FeatureExtractor::finish_shards(&view, &shards);
                assert_eq!(expected_ops, actual_ops);
                for id in FeatureId::all() {
                    assert_eq!(
                        expected.get(id),
                        actual.get(id),
                        "feature {} diverged on bin {bin}",
                        id.name()
                    );
                }
            }
        }
    }

    #[test]
    fn view_extraction_matches_materialized_extraction() {
        let tuples: Vec<FiveTuple> = (0..300).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
        let batch = batch_of(&tuples, 0);
        let view = batch.view().filter_indexed(|index, _| index % 3 != 0);

        let mut on_view = FeatureExtractor::with_defaults();
        let mut on_copy = FeatureExtractor::with_defaults();
        let (from_view, ops_view) = on_view.extract_view(&view);
        let (from_copy, ops_copy) = on_copy.extract(&view.materialize());
        assert_eq!(ops_view, ops_copy);
        for id in FeatureId::all() {
            assert_eq!(
                from_view.get(id),
                from_copy.get(id),
                "feature {} differs between view and materialized batch",
                id.name()
            );
        }
    }

    #[test]
    fn empty_batch_yields_zero_vector() {
        let mut extractor = FeatureExtractor::with_defaults();
        let (features, ops) = extractor.extract(&Batch::empty(0, 0, 100_000));
        assert_eq!(features.packets(), 0.0);
        assert_eq!(ops, 0);
        for id in FeatureId::all() {
            assert_eq!(features.get(id), 0.0, "feature {} non-zero", id.name());
        }
    }
}
