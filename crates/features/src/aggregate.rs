//! The ten traffic aggregates of Table 3.1.
//!
//! The aggregate definitions (and the per-packet [`AggregateHashes`] side
//! array derived from them) moved into `netshed-trace` so that the batch data
//! plane can cache one hash per aggregate per packet on the shared packet
//! store. This module re-exports them to keep `netshed_features::Aggregate`
//! working.

pub use netshed_trace::{aggregate_hash_seed, Aggregate, AggregateHashes, AGGREGATE_COUNT};
