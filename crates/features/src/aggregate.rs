//! The ten traffic aggregates of Table 3.1.

use netshed_trace::FiveTuple;

/// A traffic aggregate: a combination of TCP/IP header fields whose distinct
/// values are counted by the feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Source IP address.
    SrcIp,
    /// Destination IP address.
    DstIp,
    /// IP protocol number.
    Protocol,
    /// (source IP, destination IP) pair.
    SrcDstIp,
    /// (source port, protocol) pair.
    SrcPortProto,
    /// (destination port, protocol) pair.
    DstPortProto,
    /// (source IP, source port, protocol) triple.
    SrcIpPortProto,
    /// (destination IP, destination port, protocol) triple.
    DstIpPortProto,
    /// (source port, destination port, protocol) triple.
    SrcDstPortProto,
    /// The full 5-tuple.
    FiveTuple,
}

impl Aggregate {
    /// The ten aggregates in the order of Table 3.1.
    pub const ALL: [Aggregate; 10] = [
        Aggregate::SrcIp,
        Aggregate::DstIp,
        Aggregate::Protocol,
        Aggregate::SrcDstIp,
        Aggregate::SrcPortProto,
        Aggregate::DstPortProto,
        Aggregate::SrcIpPortProto,
        Aggregate::DstIpPortProto,
        Aggregate::SrcDstPortProto,
        Aggregate::FiveTuple,
    ];

    /// Short name used when reporting selected features (e.g. Table 3.2).
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::SrcIp => "src-ip",
            Aggregate::DstIp => "dst-ip",
            Aggregate::Protocol => "proto",
            Aggregate::SrcDstIp => "src-dst-ip",
            Aggregate::SrcPortProto => "src-port-proto",
            Aggregate::DstPortProto => "dst-port-proto",
            Aggregate::SrcIpPortProto => "src-ip-port-proto",
            Aggregate::DstIpPortProto => "dst-ip-port-proto",
            Aggregate::SrcDstPortProto => "src-dst-port-proto",
            Aggregate::FiveTuple => "5tuple",
        }
    }

    /// Index of the aggregate in [`Aggregate::ALL`].
    pub fn index(self) -> usize {
        Aggregate::ALL.iter().position(|a| *a == self).expect("aggregate is in ALL")
    }

    /// Serialises the aggregate's fields of a 5-tuple into a compact key.
    ///
    /// The key length differs per aggregate, which is fine because the key is
    /// only ever hashed together with the aggregate index as a seed.
    pub fn key(self, tuple: &FiveTuple) -> [u8; 13] {
        let mut key = [0u8; 13];
        match self {
            Aggregate::SrcIp => key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes()),
            Aggregate::DstIp => key[..4].copy_from_slice(&tuple.dst_ip.to_be_bytes()),
            Aggregate::Protocol => key[0] = tuple.proto,
            Aggregate::SrcDstIp => {
                key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes());
                key[4..8].copy_from_slice(&tuple.dst_ip.to_be_bytes());
            }
            Aggregate::SrcPortProto => {
                key[..2].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[2] = tuple.proto;
            }
            Aggregate::DstPortProto => {
                key[..2].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[2] = tuple.proto;
            }
            Aggregate::SrcIpPortProto => {
                key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes());
                key[4..6].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[6] = tuple.proto;
            }
            Aggregate::DstIpPortProto => {
                key[..4].copy_from_slice(&tuple.dst_ip.to_be_bytes());
                key[4..6].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[6] = tuple.proto;
            }
            Aggregate::SrcDstPortProto => {
                key[..2].copy_from_slice(&tuple.src_port.to_be_bytes());
                key[2..4].copy_from_slice(&tuple.dst_port.to_be_bytes());
                key[4] = tuple.proto;
            }
            Aggregate::FiveTuple => key = tuple.as_key(),
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_ten_aggregates_as_in_table_3_1() {
        assert_eq!(Aggregate::ALL.len(), 10);
    }

    #[test]
    fn indices_are_consistent_with_all_order() {
        for (i, agg) in Aggregate::ALL.iter().enumerate() {
            assert_eq!(agg.index(), i);
        }
    }

    #[test]
    fn keys_only_depend_on_the_aggregated_fields() {
        let a = FiveTuple::new(1, 2, 3, 4, 6);
        let b = FiveTuple::new(1, 9, 8, 7, 6);
        // Same source IP and protocol, so the src-ip key must match.
        assert_eq!(Aggregate::SrcIp.key(&a), Aggregate::SrcIp.key(&b));
        // Destination differs, so the dst-ip key must not match.
        assert_ne!(Aggregate::DstIp.key(&a), Aggregate::DstIp.key(&b));
        // Full 5-tuple key differs.
        assert_ne!(Aggregate::FiveTuple.key(&a), Aggregate::FiveTuple.key(&b));
    }

    #[test]
    fn src_port_proto_ignores_addresses() {
        let a = FiveTuple::new(10, 20, 1234, 80, 6);
        let b = FiveTuple::new(99, 77, 1234, 443, 6);
        assert_eq!(Aggregate::SrcPortProto.key(&a), Aggregate::SrcPortProto.key(&b));
    }
}
