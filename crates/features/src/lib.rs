//! Per-batch traffic feature extraction.
//!
//! Section 3.2.1 of the paper defines the predictor variables used to model
//! query cost: the number of packets and bytes in a batch plus, for each of
//! the ten traffic aggregates of Table 3.1 (combinations of the five TCP/IP
//! header fields), four counters —
//!
//! * **unique**: distinct items in the batch,
//! * **new**: items not yet seen in the current measurement interval,
//! * **repeated**: items in the batch minus unique items,
//! * **batch-repeated**: items in the batch minus new items,
//!
//! for a total of 42 features. Distinct counting uses the multi-resolution
//! bitmaps from [`netshed_sketch`] so the per-packet work is bounded, and the
//! per-interval "seen" bitmap is updated once per batch with a bitwise OR of
//! the per-batch bitmap, exactly as the paper describes.

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod extractor;
pub mod vector;

pub use aggregate::{aggregate_hash_seed, Aggregate, AggregateHashes, AGGREGATE_COUNT};
pub use extractor::{ExtractorConfig, ExtractorShard, FeatureExtractor};
pub use vector::{CounterKind, FeatureId, FeatureVector, FEATURE_COUNT};
