//! The fixed 42-entry feature vector.

use crate::aggregate::Aggregate;

/// Number of features extracted per batch: packets, bytes and four counters
/// per each of the ten aggregates (2 + 4 × 10 = 42, as in the paper).
pub const FEATURE_COUNT: usize = 2 + 4 * Aggregate::ALL.len();

/// The per-aggregate counter kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Distinct items in the batch.
    Unique,
    /// Items not previously seen in the current measurement interval.
    New,
    /// Items in the batch minus unique items.
    Repeated,
    /// Items in the batch minus new items.
    BatchRepeated,
}

impl CounterKind {
    /// The four counters in their vector order.
    pub const ALL: [CounterKind; 4] =
        [CounterKind::Unique, CounterKind::New, CounterKind::Repeated, CounterKind::BatchRepeated];

    /// Short name used in feature labels.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Unique => "uniq",
            CounterKind::New => "new",
            CounterKind::Repeated => "rep",
            CounterKind::BatchRepeated => "batchrep",
        }
    }
}

/// Identifier of one feature in the vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureId {
    /// Number of packets in the batch.
    Packets,
    /// Number of IP bytes in the batch.
    Bytes,
    /// One of the four counters of one aggregate.
    Counter(Aggregate, CounterKind),
}

impl FeatureId {
    /// Returns the identifier of the feature at `index` in the vector.
    ///
    /// # Panics
    ///
    /// Panics if `index >= FEATURE_COUNT`.
    pub fn from_index(index: usize) -> FeatureId {
        match index {
            0 => FeatureId::Packets,
            1 => FeatureId::Bytes,
            _ => {
                assert!(index < FEATURE_COUNT, "feature index out of range");
                let rel = index - 2;
                let aggregate = Aggregate::ALL[rel / 4];
                let counter = CounterKind::ALL[rel % 4];
                FeatureId::Counter(aggregate, counter)
            }
        }
    }

    /// Position of this feature in the vector.
    pub fn index(self) -> usize {
        match self {
            FeatureId::Packets => 0,
            FeatureId::Bytes => 1,
            FeatureId::Counter(aggregate, counter) => {
                let counter_idx =
                    CounterKind::ALL.iter().position(|c| *c == counter).expect("counter in ALL"); // lint:allow(no-unwrap): CounterKind::ALL enumerates every variant, so the position always exists
                2 + aggregate.index() * 4 + counter_idx
            }
        }
    }

    /// Human-readable name, e.g. `new_5tuple` or `packets`.
    pub fn name(self) -> String {
        match self {
            FeatureId::Packets => "packets".to_string(),
            FeatureId::Bytes => "bytes".to_string(),
            FeatureId::Counter(aggregate, counter) => {
                format!("{}_{}", counter.name(), aggregate.name())
            }
        }
    }

    /// All feature identifiers in vector order.
    pub fn all() -> Vec<FeatureId> {
        (0..FEATURE_COUNT).map(FeatureId::from_index).collect()
    }
}

/// The values of all features for one batch.
///
/// The vector is a plain `[f64; 42]` and therefore `Copy`: storing an
/// observation in a prediction history is a fixed-size memcpy, not an
/// allocation, which is why the observe path can take features by reference
/// and dereference at the last moment instead of cloning per query per bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    values: [f64; FEATURE_COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self { values: [0.0; FEATURE_COUNT] }
    }
}

impl FeatureVector {
    /// Creates an all-zero vector.
    pub fn zeros() -> Self {
        Self::default()
    }

    /// Creates a vector from raw values.
    pub fn from_values(values: [f64; FEATURE_COUNT]) -> Self {
        Self { values }
    }

    /// Value of the feature with the given identifier.
    pub fn get(&self, id: FeatureId) -> f64 {
        self.values[id.index()]
    }

    /// Sets the value of the feature with the given identifier.
    pub fn set(&mut self, id: FeatureId, value: f64) {
        self.values[id.index()] = value;
    }

    /// Value of the feature at a raw index.
    pub fn get_index(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// All values as a slice, in vector order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Number of packets convenience accessor.
    pub fn packets(&self) -> f64 {
        self.get(FeatureId::Packets)
    }

    /// Number of bytes convenience accessor.
    pub fn bytes(&self) -> f64 {
        self.get(FeatureId::Bytes)
    }

    /// Returns only the values at the selected indices (used to build the MLR
    /// design matrix after feature selection).
    pub fn select(&self, indices: &[usize]) -> Vec<f64> {
        indices.iter().map(|&i| self.values[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_42_features() {
        assert_eq!(FEATURE_COUNT, 42);
        assert_eq!(FeatureId::all().len(), 42);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..FEATURE_COUNT {
            assert_eq!(FeatureId::from_index(i).index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> =
            FeatureId::all().into_iter().map(FeatureId::name).collect();
        assert_eq!(names.len(), FEATURE_COUNT);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = FeatureVector::zeros();
        let id = FeatureId::Counter(Aggregate::FiveTuple, CounterKind::New);
        v.set(id, 123.0);
        assert_eq!(v.get(id), 123.0);
        assert_eq!(v.get_index(id.index()), 123.0);
    }

    #[test]
    fn select_extracts_requested_indices() {
        let mut v = FeatureVector::zeros();
        v.set(FeatureId::Packets, 10.0);
        v.set(FeatureId::Bytes, 20.0);
        assert_eq!(v.select(&[0, 1]), vec![10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = FeatureId::from_index(FEATURE_COUNT);
    }
}
