//! The stateful queries whose cost depends on the flow structure of the
//! traffic: `flows`, `top-k`, `super-sources` and `autofocus`.
//!
//! Their per-batch cost mixes a per-packet lookup term with a per-new-entry
//! creation term, which is what makes the multi-feature MLR predictor of the
//! paper clearly better than single-feature baselines (Figure 3.3/3.4).

use crate::cost::{costs, CycleMeter};
use crate::output::QueryOutput;
use crate::query::{scale, Query, SheddingMethod};
use netshed_sketch::{hash_bytes, DetHashMap, DetHashSet, StateError, StateReader, StateWriter};
use netshed_trace::BatchView;

/// `flows`: per-flow classification and count of active 5-tuple flows.
///
/// Uses flow sampling (Table 2.2), since packet sampling biases flow counts.
#[derive(Debug, Default)]
pub struct FlowsQuery {
    /// Flow key → Horvitz–Thompson weight (1 / sampling rate at insertion).
    table: DetHashMap<u64, f64>,
}

impl FlowsQuery {
    /// Creates the query.
    pub fn new() -> Self {
        Self { table: DetHashMap::default() }
    }
}

impl Query for FlowsQuery {
    fn name(&self) -> &'static str {
        "flows"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::FlowSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.05
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::HASH_LOOKUP);
            // The serialised key is a shared store column — no per-packet
            // re-serialisation.
            let key = hash_bytes(packet.flow_key(), 0xf10f);
            if let netshed_sketch::Entry::Vacant(vacant) = self.table.entry(key) {
                meter.charge(costs::HASH_INSERT);
                // The sampling rate may change from batch to batch, so each
                // flow is weighted by the rate in force when it was first seen.
                vacant.insert(scale(1.0, sampling_rate));
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        // lint:allow(merge-order): DetHashMap iterates replay-stably (same insertion history, same order), so this sum is bit-identical across runs
        let count = self.table.values().sum();
        self.table.clear();
        QueryOutput::Flows { count }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.table.len());
        for (key, weight) in self.table.iter() {
            writer.u64(*key);
            writer.f64(*weight);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.table.clear();
        let entries = reader.usize()?;
        for _ in 0..entries {
            let key = reader.u64()?;
            let weight = reader.f64()?;
            self.table.insert(key, weight);
        }
        Ok(())
    }
}

/// `top-k`: ranking of the destination addresses that received the most bytes.
#[derive(Debug)]
pub struct TopKQuery {
    k: usize,
    bytes_per_dst: DetHashMap<u32, f64>,
}

impl TopKQuery {
    /// Creates a query reporting the top `k` destinations.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), bytes_per_dst: DetHashMap::default() }
    }
}

impl Default for TopKQuery {
    fn default() -> Self {
        Self::new(10)
    }
}

impl Query for TopKQuery {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.57
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::HASH_LOOKUP + costs::RANKING_UPDATE);
            let bytes = scale(f64::from(packet.ip_len()), sampling_rate);
            let entry = self.bytes_per_dst.entry(packet.tuple().dst_ip);
            if let netshed_sketch::Entry::Vacant(vacant) = entry {
                meter.charge(costs::HASH_INSERT);
                vacant.insert(bytes);
            } else if let netshed_sketch::Entry::Occupied(mut occupied) = entry {
                *occupied.get_mut() += bytes;
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let mut ranking: Vec<(u32, f64)> = self.bytes_per_dst.drain().collect();
        ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranking.truncate(self.k);
        QueryOutput::TopK { ranking }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.bytes_per_dst.len());
        for (dst, bytes) in self.bytes_per_dst.iter() {
            writer.u32(*dst);
            writer.f64(*bytes);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.bytes_per_dst.clear();
        let entries = reader.usize()?;
        for _ in 0..entries {
            let dst = reader.u32()?;
            let bytes = reader.f64()?;
            self.bytes_per_dst.insert(dst, bytes);
        }
        Ok(())
    }
}

/// `super-sources`: detection of the sources with the largest fan-out
/// (number of distinct destinations contacted). Uses flow sampling.
#[derive(Debug)]
pub struct SuperSourcesQuery {
    /// Number of sources reported.
    top: usize,
    pairs_seen: DetHashSet<u64>,
    fanout: DetHashMap<u32, f64>,
}

impl SuperSourcesQuery {
    /// Creates a query reporting the `top` sources by fan-out.
    pub fn new(top: usize) -> Self {
        Self { top: top.max(1), pairs_seen: DetHashSet::default(), fanout: DetHashMap::default() }
    }
}

impl Default for SuperSourcesQuery {
    fn default() -> Self {
        Self::new(10)
    }
}

impl Query for SuperSourcesQuery {
    fn name(&self) -> &'static str {
        "super-sources"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::FlowSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.93
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::DISTINCT_UPDATE);
            let tuple = packet.tuple();
            let mut key = [0u8; 8];
            key[..4].copy_from_slice(&tuple.src_ip.to_be_bytes());
            key[4..].copy_from_slice(&tuple.dst_ip.to_be_bytes());
            let pair = hash_bytes(&key, 0x5005);
            if self.pairs_seen.insert(pair) {
                meter.charge(costs::HASH_INSERT);
                // Weight each new (source, destination) pair by the sampling
                // rate in force when it was discovered.
                *self.fanout.entry(tuple.src_ip).or_insert(0.0) += scale(1.0, sampling_rate);
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let mut sources: Vec<(u32, f64)> = self.fanout.drain().collect();
        sources.sort_by(|a, b| b.1.total_cmp(&a.1));
        sources.truncate(self.top);
        self.pairs_seen.clear();
        QueryOutput::SuperSources { fanouts: sources.into_iter().collect() }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.pairs_seen.len());
        for pair in self.pairs_seen.iter() {
            writer.u64(*pair);
        }
        writer.usize(self.fanout.len());
        for (src, fanout) in self.fanout.iter() {
            writer.u32(*src);
            writer.f64(*fanout);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.pairs_seen.clear();
        let pairs = reader.usize()?;
        for _ in 0..pairs {
            self.pairs_seen.insert(reader.u64()?);
        }
        self.fanout.clear();
        let sources = reader.usize()?;
        for _ in 0..sources {
            let src = reader.u32()?;
            let fanout = reader.f64()?;
            self.fanout.insert(src, fanout);
        }
        Ok(())
    }
}

/// `autofocus` (uni-dimensional): traffic clusters per destination prefix
/// that exceed a fraction of the total interval traffic.
#[derive(Debug)]
pub struct AutofocusQuery {
    /// Report threshold as a fraction of the interval's total bytes.
    threshold_fraction: f64,
    /// Bytes per (prefix value, prefix length).
    prefixes: DetHashMap<(u32, u8), f64>,
    total_bytes: f64,
    sampling_rate: f64,
}

impl AutofocusQuery {
    /// Creates a query reporting clusters above `threshold_fraction` of the
    /// interval's traffic.
    pub fn new(threshold_fraction: f64) -> Self {
        Self {
            threshold_fraction: threshold_fraction.clamp(0.0001, 1.0),
            prefixes: DetHashMap::default(),
            total_bytes: 0.0,
            sampling_rate: 1.0,
        }
    }

    /// Prefix lengths of the uni-dimensional hierarchy.
    const LEVELS: [u8; 3] = [8, 16, 24];
}

impl Default for AutofocusQuery {
    fn default() -> Self {
        Self::new(0.02)
    }
}

impl Query for AutofocusQuery {
    fn name(&self) -> &'static str {
        "autofocus"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.69
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        self.sampling_rate = sampling_rate;
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE);
            let bytes = f64::from(packet.ip_len());
            self.total_bytes += scale(bytes, sampling_rate);
            for &len in &Self::LEVELS {
                meter.charge(costs::PREFIX_LEVEL);
                let mask = if len == 32 { u32::MAX } else { !0u32 << (32 - len) };
                let prefix = packet.tuple().dst_ip & mask;
                let entry = self.prefixes.entry((prefix, len));
                if let netshed_sketch::Entry::Vacant(vacant) = entry {
                    meter.charge(costs::HASH_INSERT);
                    vacant.insert(scale(bytes, sampling_rate));
                } else if let netshed_sketch::Entry::Occupied(mut occupied) = entry {
                    *occupied.get_mut() += scale(bytes, sampling_rate);
                }
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let threshold = self.total_bytes * self.threshold_fraction;
        let mut clusters: Vec<(u32, u8, f64)> = self
            .prefixes
            .drain()
            .filter(|(_, bytes)| *bytes >= threshold && threshold > 0.0)
            .map(|((prefix, len), bytes)| (prefix, len, bytes))
            .collect();
        clusters.sort_by(|a, b| b.2.total_cmp(&a.2));
        self.total_bytes = 0.0;
        QueryOutput::Autofocus { clusters }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.prefixes.len());
        for ((prefix, len), bytes) in self.prefixes.iter() {
            writer.u32(*prefix);
            writer.u8(*len);
            writer.f64(*bytes);
        }
        writer.f64(self.total_bytes);
        writer.f64(self.sampling_rate);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.prefixes.clear();
        let entries = reader.usize()?;
        for _ in 0..entries {
            let prefix = reader.u32()?;
            let len = reader.u8()?;
            let bytes = reader.f64()?;
            self.prefixes.insert((prefix, len), bytes);
        }
        self.total_bytes = reader.f64()?;
        self.sampling_rate = reader.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_trace::{FiveTuple, Packet};

    fn batch_of(tuples: &[FiveTuple], size: u32) -> BatchView {
        let packets: Vec<Packet> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Packet::header_only(i as u64, *t, size, 0))
            .collect();
        netshed_trace::Batch::new(0, 0, 100_000, packets).view()
    }

    #[test]
    fn flows_counts_distinct_five_tuples() {
        let tuples: Vec<FiveTuple> = (0..200).map(|i| FiveTuple::new(i, 2, 1000, 80, 6)).collect();
        let mut q = FlowsQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::Flows { count } => assert_eq!(count, 200.0),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn flows_scales_estimate_by_flow_sampling_rate() {
        let tuples: Vec<FiveTuple> = (0..100).map(|i| FiveTuple::new(i, 2, 1000, 80, 6)).collect();
        let mut q = FlowsQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 0.5, &mut meter);
        match q.end_interval() {
            QueryOutput::Flows { count } => assert_eq!(count, 200.0),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn flows_new_entries_cost_more_than_lookups() {
        let tuples: Vec<FiveTuple> = (0..100).map(|i| FiveTuple::new(i, 2, 1000, 80, 6)).collect();
        let mut q = FlowsQuery::new();
        let mut first = CycleMeter::new();
        let mut second = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut first);
        // Same flows again: no inserts, only lookups.
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut second);
        assert!(first.cycles() > second.cycles());
    }

    #[test]
    fn topk_ranks_heaviest_destinations_first() {
        let mut tuples = Vec::new();
        // Destination 99 receives 50 packets, destination 1 receives 5.
        for _ in 0..50 {
            tuples.push(FiveTuple::new(1, 99, 1000, 80, 6));
        }
        for _ in 0..5 {
            tuples.push(FiveTuple::new(1, 1, 1000, 80, 6));
        }
        let mut q = TopKQuery::new(2);
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::TopK { ranking } => {
                assert_eq!(ranking[0].0, 99);
                assert_eq!(ranking.len(), 2);
                assert!(ranking[0].1 > ranking[1].1);
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn super_sources_measures_fanout() {
        let mut tuples = Vec::new();
        // Source 7 contacts 30 destinations; source 8 contacts 2.
        for d in 0..30 {
            tuples.push(FiveTuple::new(7, d, 1000, 80, 6));
        }
        for d in 0..2 {
            tuples.push(FiveTuple::new(8, 100 + d, 1000, 80, 6));
        }
        let mut q = SuperSourcesQuery::new(1);
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::SuperSources { fanouts } => {
                assert_eq!(fanouts.len(), 1);
                assert_eq!(fanouts.get(&7).copied(), Some(30.0));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn super_sources_counts_each_pair_once() {
        let tuples = vec![FiveTuple::new(7, 1, 1000, 80, 6); 50];
        let mut q = SuperSourcesQuery::new(5);
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::SuperSources { fanouts } => {
                assert_eq!(fanouts.get(&7).copied(), Some(1.0));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn autofocus_reports_heavy_prefixes_only() {
        let mut tuples = Vec::new();
        // 95% of bytes to 10.1.x.x, 5% spread elsewhere.
        for i in 0..95 {
            tuples.push(FiveTuple::new(1, 0x0a01_0000 | i, 1000, 80, 6));
        }
        for i in 0..5 {
            tuples.push(FiveTuple::new(1, 0xc0a8_0000 | (i << 8), 1000, 80, 6));
        }
        let mut q = AutofocusQuery::new(0.5);
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 1000), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::Autofocus { clusters } => {
                assert!(!clusters.is_empty());
                // The /8 and /16 of 10.1.0.0 dominate; nothing from 192.168.
                assert!(clusters.iter().all(|(prefix, _, _)| (prefix >> 24) == 0x0a));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn interval_reset_clears_state() {
        let tuples: Vec<FiveTuple> = (0..10).map(|i| FiveTuple::new(i, 2, 1000, 80, 6)).collect();
        let mut q = TopKQuery::new(5);
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_of(&tuples, 100), 1.0, &mut meter);
        let _ = q.end_interval();
        match q.end_interval() {
            QueryOutput::TopK { ranking } => assert!(ranking.is_empty()),
            other => panic!("unexpected output {other:?}"),
        }
    }
}
