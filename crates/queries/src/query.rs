//! The black-box query abstraction.

use crate::cost::CycleMeter;
use crate::output::QueryOutput;
use netshed_sketch::{StateError, StateReader, StateWriter};
use netshed_trace::BatchView;

/// How excess load should be shed for a query (Section 4.2 and Chapter 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SheddingMethod {
    /// Uniform random packet sampling.
    PacketSampling,
    /// Flow sampling: entire 5-tuple flows are kept or dropped together.
    FlowSampling,
    /// The query implements its own custom load shedding method; the system
    /// hands it the full batch plus the target sampling rate and polices the
    /// cycles it uses (Chapter 6).
    Custom,
}

/// A monitoring query (CoMo plug-in module).
///
/// The monitoring system never inspects a query's internals: it delivers
/// (possibly sampled) batches, measures the cycles charged to the
/// [`CycleMeter`], and collects a [`QueryOutput`] at the end of every
/// measurement interval. Implementations must scale their estimates by the
/// inverse of the sampling rate they were given, exactly as the paper's
/// modified queries do.
pub trait Query: Send {
    /// The query's name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// The load shedding method this query selects at configuration time.
    fn preferred_shedding(&self) -> SheddingMethod;

    /// Minimum sampling rate the query can tolerate while keeping its error
    /// within the bound declared by its user (`m_q` of Chapter 5).
    fn min_sampling_rate(&self) -> f64 {
        0.0
    }

    /// Processes one (already sampled) batch.
    ///
    /// The batch arrives as a zero-copy [`BatchView`]: the shedders sample by
    /// narrowing the view rather than copying packets, and a full batch is
    /// just the all-packets view. Queries iterate it through
    /// [`BatchView::packets`].
    ///
    /// `sampling_rate` is the rate that was applied to produce `batch`
    /// (1.0 = no sampling); queries use it to scale their estimates. All work
    /// performed must be charged to `meter`.
    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter);

    /// Closes the current measurement interval and returns its output,
    /// resetting the per-interval state.
    fn end_interval(&mut self) -> QueryOutput;

    /// Serializes the query's mid-interval state for a checkpoint.
    ///
    /// Only *essential* state belongs here: whatever cannot be rebuilt from
    /// the query's configuration. The default declines, so checkpointing a
    /// monitor that hosts a query without snapshot support fails loudly
    /// instead of silently dropping state.
    fn save_state(&self, _writer: &mut StateWriter) -> Result<(), StateError> {
        Err(StateError::unsupported(self.name()))
    }

    /// Restores state captured by [`Query::save_state`] into a freshly
    /// configured query of the same kind.
    ///
    /// Restoring must reproduce the saved query bit-exactly: re-running the
    /// remaining traffic must yield the same outputs as the uninterrupted
    /// run. Implementations therefore reinsert hashed-container entries in
    /// their serialized (= insertion) order.
    fn load_state(&mut self, _reader: &mut StateReader<'_>) -> Result<(), StateError> {
        Err(StateError::unsupported(self.name()))
    }
}

/// Blanket helpers shared by query implementations.
///
/// Scales a sampled estimate by the inverse of the sampling rate. The result
/// is guaranteed finite: non-positive, NaN or subnormal rates, non-finite
/// values, and overflowing divisions all collapse to `0.0` instead of
/// poisoning downstream aggregates with NaN / infinity.
pub(crate) fn scale(value: f64, sampling_rate: f64) -> f64 {
    if !value.is_finite() || !sampling_rate.is_finite() || sampling_rate <= f64::MIN_POSITIVE {
        return 0.0;
    }
    let scaled = value / sampling_rate;
    if scaled.is_finite() {
        scaled
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_inverts_sampling_rate() {
        assert_eq!(scale(10.0, 0.5), 20.0);
        assert_eq!(scale(10.0, 1.0), 10.0);
        assert_eq!(scale(10.0, 0.0), 0.0);
    }

    #[test]
    fn scale_never_produces_nan_or_infinity() {
        for value in [10.0, 0.0, -3.0, f64::NAN, f64::INFINITY, f64::MAX] {
            for rate in [1.0, 0.5, 0.0, -0.2, f64::NAN, f64::MIN_POSITIVE / 2.0, 1e-320] {
                let scaled = scale(value, rate);
                assert!(scaled.is_finite(), "scale({value}, {rate}) = {scaled}");
            }
        }
        assert_eq!(scale(f64::NAN, 0.5), 0.0);
        assert_eq!(scale(10.0, f64::NAN), 0.0);
        assert_eq!(scale(f64::MAX, 1e-300), 0.0, "overflowing division collapses to zero");
    }
}
