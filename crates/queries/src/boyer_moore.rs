//! Boyer–Moore–Horspool substring search.
//!
//! The `pattern-search` and `p2p-detector` queries of the paper use the
//! Boyer–Moore algorithm to locate byte sequences in packet payloads
//! (Section 2.2, reference [23]); their cost is linear in the number of
//! bytes scanned. The Horspool simplification keeps the same average-case
//! behaviour with a single skip table, which is what matters for the cost
//! model.

/// A compiled search pattern.
#[derive(Debug, Clone)]
pub struct BoyerMoore {
    pattern: Vec<u8>,
    skip: [usize; 256],
}

impl BoyerMoore {
    /// Compiles a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "pattern must not be empty");
        let mut skip = [pattern.len(); 256];
        for (i, &byte) in pattern.iter().enumerate().take(pattern.len() - 1) {
            skip[usize::from(byte)] = pattern.len() - 1 - i;
        }
        Self { pattern: pattern.to_vec(), skip }
    }

    /// Length of the compiled pattern.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// Searches for the pattern in `haystack`.
    ///
    /// Returns the offset of the first occurrence (if any) together with the
    /// number of byte positions examined, which the queries charge to their
    /// cycle meter.
    pub fn find(&self, haystack: &[u8]) -> (Option<usize>, u64) {
        let m = self.pattern.len();
        let n = haystack.len();
        if n < m {
            return (None, n as u64);
        }
        let mut examined = 0u64;
        let mut pos = 0usize;
        while pos <= n - m {
            let mut j = m;
            while j > 0 && haystack[pos + j - 1] == self.pattern[j - 1] {
                j -= 1;
                examined += 1;
            }
            if j == 0 {
                return (Some(pos), examined.max(1));
            }
            examined += 1;
            let skip = self.skip[usize::from(haystack[pos + m - 1])];
            pos += skip;
        }
        (None, examined.max(1))
    }

    /// Returns `true` if the pattern occurs in `haystack`.
    pub fn matches(&self, haystack: &[u8]) -> bool {
        self.find(haystack).0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_pattern_at_various_positions() {
        let bm = BoyerMoore::new(b"needle");
        assert_eq!(bm.find(b"needle in a haystack").0, Some(0));
        assert_eq!(bm.find(b"a needle in a haystack").0, Some(2));
        assert_eq!(bm.find(b"haystack with a needle").0, Some(16));
        assert_eq!(bm.find(b"no match here").0, None);
    }

    #[test]
    fn short_haystack_cannot_match() {
        let bm = BoyerMoore::new(b"longpattern");
        assert_eq!(bm.find(b"short").0, None);
    }

    #[test]
    fn examined_bytes_grow_with_haystack() {
        let bm = BoyerMoore::new(b"zzz");
        let small = bm.find(&[b'a'; 100]).1;
        let large = bm.find(&[b'a'; 10_000]).1;
        assert!(large > small * 50, "examined should scale with input: {small} vs {large}");
    }

    #[test]
    fn skip_table_makes_search_sublinear_for_distinct_alphabet() {
        let bm = BoyerMoore::new(b"xyz");
        // A haystack with no bytes from the pattern can skip by the full
        // pattern length each step.
        let (_, examined) = bm.find(&vec![b'a'; 3000]);
        assert!(examined < 1200, "examined {examined} should be about a third of the bytes");
    }

    #[test]
    fn crafted_near_miss_payloads_blow_up_the_skip_table() {
        // The adversarial `bm-mimicry` scenario tiles payloads with the
        // search pattern minus its first byte: every alignment then walks
        // almost the whole pattern backwards before mismatching, and the
        // bad-character skip (keyed on a byte *inside* the pattern) only
        // advances by one. Cost per byte is an order of magnitude above
        // benign text of the same length — the lever the predictor-gaming
        // attack pulls.
        let bm = BoyerMoore::new(b"GET / HTTP/1.1");
        let block = b"ZET / HTTP/1.1";
        let crafted: Vec<u8> = block.iter().copied().cycle().take(block.len() * 43).collect();
        let benign = vec![b'a'; crafted.len()];
        let (hit, crafted_examined) = bm.find(&crafted);
        assert!(hit.is_none(), "the crafted payload must never actually match");
        let (_, benign_examined) = bm.find(&benign);
        assert!(
            crafted_examined > benign_examined * 10,
            "crafted {crafted_examined} examined vs benign {benign_examined}"
        );
        assert!(
            crafted_examined as usize > crafted.len(),
            "the attack examines more positions than there are payload bytes"
        );
    }

    #[test]
    #[should_panic(expected = "pattern must not be empty")]
    fn empty_pattern_is_rejected() {
        let _ = BoyerMoore::new(b"");
    }

    #[test]
    fn matches_is_consistent_with_find() {
        let bm = BoyerMoore::new(b"GNUTELLA");
        assert!(bm.matches(b"....GNUTELLA CONNECT...."));
        assert!(!bm.matches(b"....bittorrent...."));
    }
}
