//! The low-cost queries: `counter`, `application` and `high-watermark`.
//!
//! All three maintain simple arrays of counters driven by the packet stream,
//! so their CPU cost is dominated by the number of packets in the batch —
//! which is exactly what the prediction subsystem should discover on its own
//! (Table 3.2 selects the `packets` feature for them).

use crate::cost::{costs, CycleMeter};
use crate::output::QueryOutput;
use crate::query::{scale, Query, SheddingMethod};
use netshed_sketch::{StateError, StateReader, StateWriter};
use netshed_trace::{AppProtocol, BatchView};
// Ordered so the emitted `QueryOutput::Application` iterates replay-stably
// (determinism contract, rule `det-map`).
use std::collections::BTreeMap;

/// `counter`: traffic load in packets and bytes (Table 2.2).
#[derive(Debug, Default)]
pub struct CounterQuery {
    packets: f64,
    bytes: f64,
}

impl CounterQuery {
    /// Creates the query.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Query for CounterQuery {
    fn name(&self) -> &'static str {
        "counter"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.03
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::COUNTER_UPDATE);
            self.packets += scale(1.0, sampling_rate);
            self.bytes += scale(f64::from(packet.ip_len()), sampling_rate);
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let output = QueryOutput::Counter { packets: self.packets, bytes: self.bytes };
        self.packets = 0.0;
        self.bytes = 0.0;
        output
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.f64(self.packets);
        writer.f64(self.bytes);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.packets = reader.f64()?;
        self.bytes = reader.f64()?;
        Ok(())
    }
}

/// `application`: port-based application classification (Table 2.2).
#[derive(Debug, Default)]
pub struct ApplicationQuery {
    per_app: BTreeMap<&'static str, (f64, f64)>,
}

impl ApplicationQuery {
    /// Creates the query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a (port, protocol) pair to an application label, mirroring the
    /// port-based classification of the paper's `application` query.
    fn classify(src_port: u16, dst_port: u16, proto: u8) -> &'static str {
        for app in AppProtocol::ALL {
            if app.ip_proto() == proto
                && (src_port == app.server_port() || dst_port == app.server_port())
            {
                return app.name();
            }
        }
        "unknown"
    }

    /// Resolves a serialized application label back to the `'static` name the
    /// classifier produces.
    fn resolve_label(name: &str) -> Result<&'static str, StateError> {
        if name == "unknown" {
            return Ok("unknown");
        }
        AppProtocol::ALL
            .iter()
            .map(|app| app.name())
            .find(|known| *known == name)
            .ok_or_else(|| StateError::corrupt(format!("unknown application label {name:?}")))
    }
}

impl Query for ApplicationQuery {
    fn name(&self) -> &'static str {
        "application"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.03
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::PORT_LOOKUP + costs::COUNTER_UPDATE);
            let tuple = packet.tuple();
            let app = Self::classify(tuple.src_port, tuple.dst_port, tuple.proto);
            let entry = self.per_app.entry(app).or_insert((0.0, 0.0));
            entry.0 += scale(1.0, sampling_rate);
            entry.1 += scale(f64::from(packet.ip_len()), sampling_rate);
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        QueryOutput::Application { per_app: std::mem::take(&mut self.per_app) }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.per_app.len());
        for (app, (packets, bytes)) in &self.per_app {
            writer.str(app);
            writer.f64(*packets);
            writer.f64(*bytes);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.per_app.clear();
        let entries = reader.usize()?;
        for _ in 0..entries {
            let app = Self::resolve_label(&reader.str()?)?;
            let packets = reader.f64()?;
            let bytes = reader.f64()?;
            self.per_app.insert(app, (packets, bytes));
        }
        Ok(())
    }
}

/// `high-watermark`: high watermark of link utilisation over time (Table 2.2).
///
/// The query tracks the peak estimated load over fixed sub-intervals (the
/// paper uses the batch granularity) within each measurement interval.
#[derive(Debug, Default)]
pub struct HighWatermarkQuery {
    peak_mbps: f64,
}

impl HighWatermarkQuery {
    /// Creates the query.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Query for HighWatermarkQuery {
    fn name(&self) -> &'static str {
        "high-watermark"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.15
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        let mut batch_bytes = 0.0;
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE + costs::COUNTER_UPDATE);
            batch_bytes += scale(f64::from(packet.ip_len()), sampling_rate);
        }
        let seconds = batch.duration_us() as f64 / 1e6;
        if seconds > 0.0 {
            let mbps = batch_bytes * 8.0 / seconds / 1e6;
            if mbps > self.peak_mbps {
                self.peak_mbps = mbps;
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let output = QueryOutput::HighWatermark { mbps: self.peak_mbps };
        self.peak_mbps = 0.0;
        output
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.f64(self.peak_mbps);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.peak_mbps = reader.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_trace::{FiveTuple, Packet};

    fn batch_with_packets(n: usize, size: u32) -> BatchView {
        let packets: Vec<Packet> = (0..n)
            .map(|i| {
                Packet::header_only(i as u64, FiveTuple::new(i as u32, 2, 1024, 80, 6), size, 0)
            })
            .collect();
        netshed_trace::Batch::new(0, 0, 100_000, packets).view()
    }

    #[test]
    fn counter_scales_by_inverse_sampling_rate() {
        let mut q = CounterQuery::new();
        let mut meter = CycleMeter::new();
        // A batch that was sampled at 50%: estimates should double.
        q.process_batch(&batch_with_packets(50, 100), 0.5, &mut meter);
        match q.end_interval() {
            QueryOutput::Counter { packets, bytes } => {
                assert_eq!(packets, 100.0);
                assert_eq!(bytes, 10_000.0);
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert!(meter.cycles() > 0);
    }

    #[test]
    fn counter_interval_resets_state() {
        let mut q = CounterQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_with_packets(10, 100), 1.0, &mut meter);
        let _ = q.end_interval();
        match q.end_interval() {
            QueryOutput::Counter { packets, bytes } => {
                assert_eq!(packets, 0.0);
                assert_eq!(bytes, 0.0);
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn application_classifies_by_port() {
        assert_eq!(ApplicationQuery::classify(1024, 80, 6), "http");
        assert_eq!(ApplicationQuery::classify(53, 40000, 17), "dns");
        assert_eq!(ApplicationQuery::classify(1, 2, 50), "unknown");
    }

    #[test]
    fn application_accumulates_per_app_counters() {
        let mut q = ApplicationQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_with_packets(20, 200), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::Application { per_app } => {
                let (packets, bytes) = per_app.get("http").copied().unwrap_or_default();
                assert_eq!(packets, 20.0);
                assert_eq!(bytes, 4000.0);
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn high_watermark_tracks_peak_batch_load() {
        let mut q = HighWatermarkQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch_with_packets(10, 1000), 1.0, &mut meter);
        q.process_batch(&batch_with_packets(100, 1000), 1.0, &mut meter);
        q.process_batch(&batch_with_packets(5, 1000), 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::HighWatermark { mbps } => {
                // Peak batch: 100 packets * 1000 B * 8 / 0.1 s = 8 Mbps.
                assert!((mbps - 8.0).abs() < 1e-9, "peak {mbps}");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn per_packet_cost_is_linear_in_packets() {
        let mut q = CounterQuery::new();
        let mut meter_small = CycleMeter::new();
        let mut meter_large = CycleMeter::new();
        q.process_batch(&batch_with_packets(10, 100), 1.0, &mut meter_small);
        q.process_batch(&batch_with_packets(1000, 100), 1.0, &mut meter_large);
        assert_eq!(meter_large.cycles() - meter_small.cycles() * 100, 0);
    }
}
