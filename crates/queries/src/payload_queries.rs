//! The payload-dependent queries: `trace`, `pattern-search` and
//! `p2p-detector`.
//!
//! Their cost is dominated by the number of bytes touched (storing or
//! scanning payloads), which is why the feature selection picks the `bytes`
//! feature for them on payload traces and falls back to `packets` on
//! header-only traces (Table 3.2). The `p2p-detector` additionally supports
//! a *custom load shedding* method (Chapter 6): instead of having the system
//! sample packets — which makes it miss protocol handshakes — it restricts
//! the fraction of each flow's packets it inspects.

use crate::boyer_moore::BoyerMoore;
use crate::cost::{costs, CycleMeter};
use crate::output::QueryOutput;
use crate::query::{Query, SheddingMethod};
// Per-packet state lives in the replay-stable hashed containers
// (determinism contract, rule `det-map`): same insertion history, same
// iteration order, O(1) hot-path updates.
use netshed_sketch::{hash_bytes, DetHashMap, DetHashSet, StateError, StateReader, StateWriter};
use netshed_trace::BatchView;

/// Number of bytes of a packet that are captured when no payload is present
/// (the link + network + transport headers stored by the trace query).
const HEADER_BYTES: u64 = 40;

/// `trace`: full-payload packet collection (Table 2.2).
#[derive(Debug, Default)]
pub struct TraceQuery {
    processed_packets: f64,
    stored_bytes: f64,
}

impl TraceQuery {
    /// Creates the query.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Query for TraceQuery {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.10
    }

    fn process_batch(&mut self, batch: &BatchView, _sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            let stored =
                if packet.payload().is_some() { u64::from(packet.ip_len()) } else { HEADER_BYTES };
            meter.charge(costs::PER_PACKET_BASE);
            meter.charge_n(costs::STORE_BYTE, stored);
            self.processed_packets += 1.0;
            self.stored_bytes += stored as f64;
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let output = QueryOutput::Coverage {
            processed_packets: self.processed_packets,
            total_packets: self.processed_packets,
        };
        self.processed_packets = 0.0;
        self.stored_bytes = 0.0;
        output
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.f64(self.processed_packets);
        writer.f64(self.stored_bytes);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.processed_packets = reader.f64()?;
        self.stored_bytes = reader.f64()?;
        Ok(())
    }
}

/// `pattern-search`: identification of byte sequences in packet payloads via
/// Boyer–Moore (Table 2.2).
#[derive(Debug)]
pub struct PatternSearchQuery {
    pattern: BoyerMoore,
    processed_packets: f64,
    matches: u64,
}

impl PatternSearchQuery {
    /// Creates a query searching for the given byte pattern.
    pub fn new(pattern: &[u8]) -> Self {
        Self { pattern: BoyerMoore::new(pattern), processed_packets: 0.0, matches: 0 }
    }

    /// Number of packets that matched the pattern so far in this interval.
    pub fn matches(&self) -> u64 {
        self.matches
    }
}

impl Default for PatternSearchQuery {
    fn default() -> Self {
        Self::new(b"GET / HTTP/1.1")
    }
}

impl Query for PatternSearchQuery {
    fn name(&self) -> &'static str {
        "pattern-search"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        SheddingMethod::PacketSampling
    }

    fn min_sampling_rate(&self) -> f64 {
        0.10
    }

    fn process_batch(&mut self, batch: &BatchView, _sampling_rate: f64, meter: &mut CycleMeter) {
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE);
            if let Some(payload) = packet.payload() {
                let (found, examined) = self.pattern.find(payload);
                meter.charge_n(costs::SCAN_BYTE, examined);
                if found.is_some() {
                    self.matches += 1;
                }
            }
            self.processed_packets += 1.0;
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        let output = QueryOutput::Coverage {
            processed_packets: self.processed_packets,
            total_packets: self.processed_packets,
        };
        self.processed_packets = 0.0;
        self.matches = 0;
        output
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.f64(self.processed_packets);
        writer.u64(self.matches);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.processed_packets = reader.f64()?;
        self.matches = reader.u64()?;
        Ok(())
    }
}

/// Behaviour of the `p2p-detector` when asked to shed load itself
/// (Chapter 6, Figures 6.10 and 6.11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomBehavior {
    /// Applies its custom load shedding method correctly.
    Honest,
    /// Ignores the requested sampling rate and processes everything,
    /// trying to grab more than its fair share of cycles.
    Selfish,
    /// Sheds the wrong amount of load because of an implementation bug
    /// (it only ever sheds half of what it is asked to).
    Buggy,
}

impl CustomBehavior {
    /// Stable name used by snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            CustomBehavior::Honest => "honest",
            CustomBehavior::Selfish => "selfish",
            CustomBehavior::Buggy => "buggy",
        }
    }

    /// Resolves a stable name back to its variant (the inverse of
    /// [`CustomBehavior::name`]); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<CustomBehavior> {
        [CustomBehavior::Honest, CustomBehavior::Selfish, CustomBehavior::Buggy]
            .into_iter()
            .find(|behavior| behavior.name() == name)
    }
}

/// `p2p-detector`: signature-based detection of P2P flows (Table 2.2).
///
/// With standard load shedding the detector receives packet-sampled batches
/// and misses handshakes; configured for *custom* shedding it receives the
/// full batch plus a target rate and limits the fraction of each flow's
/// packets it inspects, which preserves detection accuracy at the same cost
/// (Figure 6.2).
#[derive(Debug)]
pub struct P2pDetectorQuery {
    signatures: Vec<BoyerMoore>,
    p2p_ports: Vec<u16>,
    shedding: SheddingMethod,
    behavior: CustomBehavior,
    identified: DetHashSet<u64>,
    /// Packets (seen, inspected) so far per flow key (only used in custom mode).
    inspected_per_flow: DetHashMap<u64, (u32, u32)>,
}

impl P2pDetectorQuery {
    /// Creates a detector using the system's packet-sampling load shedding.
    pub fn new() -> Self {
        Self::with_shedding(SheddingMethod::PacketSampling, CustomBehavior::Honest)
    }

    /// Creates a detector that performs custom load shedding with the given
    /// behaviour.
    pub fn custom(behavior: CustomBehavior) -> Self {
        Self::with_shedding(SheddingMethod::Custom, behavior)
    }

    fn with_shedding(shedding: SheddingMethod, behavior: CustomBehavior) -> Self {
        Self {
            signatures: vec![
                BoyerMoore::new(b"BitTorrent protocol"),
                BoyerMoore::new(b"GNUTELLA CONNECT"),
            ],
            p2p_ports: vec![6881, 6346],
            shedding,
            behavior,
            identified: DetHashSet::default(),
            inspected_per_flow: DetHashMap::default(),
        }
    }

    /// Canonical flow key (direction-insensitive) used in the output set.
    fn flow_key(tuple: &netshed_trace::FiveTuple) -> u64 {
        let forward = hash_bytes(&tuple.as_key(), 0x9292);
        let backward = hash_bytes(&tuple.reversed().as_key(), 0x9292);
        forward.min(backward)
    }

    /// Effective fraction of per-flow packets inspected given the requested
    /// rate and the configured behaviour.
    fn effective_rate(&self, requested: f64) -> f64 {
        match self.behavior {
            CustomBehavior::Honest => requested,
            CustomBehavior::Selfish => 1.0,
            CustomBehavior::Buggy => f64::midpoint(requested, 1.0),
        }
    }
}

impl Default for P2pDetectorQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl Query for P2pDetectorQuery {
    fn name(&self) -> &'static str {
        "p2p-detector"
    }

    fn preferred_shedding(&self) -> SheddingMethod {
        self.shedding
    }

    fn min_sampling_rate(&self) -> f64 {
        0.35
    }

    fn process_batch(&mut self, batch: &BatchView, sampling_rate: f64, meter: &mut CycleMeter) {
        let custom = self.shedding == SheddingMethod::Custom;
        let rate = self.effective_rate(sampling_rate);
        for packet in batch.packets() {
            meter.charge(costs::PER_PACKET_BASE);
            let tuple = packet.tuple();
            let key = Self::flow_key(tuple);

            if custom {
                // Custom load shedding: inspect at most a `rate` fraction of
                // each flow's packets, always including the first two where
                // protocol handshakes live. Skipped packets cost almost
                // nothing, which is how the query saves cycles.
                let (seen, inspected) = self.inspected_per_flow.entry(key).or_insert((0, 0));
                *seen += 1;
                let budget = (f64::from(*seen) * rate).ceil().max(2.0) as u32;
                if *inspected >= budget {
                    continue;
                }
                *inspected += 1;
            }

            let mut is_p2p = self.p2p_ports.contains(&tuple.src_port)
                || self.p2p_ports.contains(&tuple.dst_port);
            if let Some(payload) = packet.payload() {
                let mut examined_total = 0u64;
                for signature in &self.signatures {
                    let (found, examined) = signature.find(payload);
                    examined_total += examined;
                    if found.is_some() {
                        is_p2p = true;
                        break;
                    }
                }
                meter.charge_n(costs::P2P_SCAN_BYTE, examined_total);
            }
            if is_p2p && self.identified.insert(key) {
                meter.charge(costs::P2P_FLOW_SETUP);
            }
        }
    }

    fn end_interval(&mut self) -> QueryOutput {
        self.inspected_per_flow.clear();
        QueryOutput::P2pFlows { flows: self.identified.drain().collect() }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.usize(self.identified.len());
        for flow in self.identified.iter() {
            writer.u64(*flow);
        }
        writer.usize(self.inspected_per_flow.len());
        for (flow, (seen, inspected)) in self.inspected_per_flow.iter() {
            writer.u64(*flow);
            writer.u32(*seen);
            writer.u32(*inspected);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.identified.clear();
        let flows = reader.usize()?;
        for _ in 0..flows {
            self.identified.insert(reader.u64()?);
        }
        self.inspected_per_flow.clear();
        let tracked = reader.usize()?;
        for _ in 0..tracked {
            let flow = reader.u64()?;
            let seen = reader.u32()?;
            let inspected = reader.u32()?;
            self.inspected_per_flow.insert(flow, (seen, inspected));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netshed_trace::{Batch, FiveTuple, Packet};

    fn payload_packet(ts: u64, tuple: FiveTuple, payload: &'static [u8]) -> Packet {
        Packet::with_payload(
            ts,
            tuple,
            40 + payload.len() as u32,
            0x10,
            Bytes::from_static(payload),
        )
    }

    fn p2p_batch(flows: u32, packets_per_flow: u32) -> BatchView {
        // Realistically sized data packets (~1 KiB payload) so that the byte
        // scanning cost dominates, as it does on full-payload traces.
        let mut handshake = vec![b'.'; 1024];
        handshake[..20].copy_from_slice(b"\x13BitTorrent protocol");
        let data = vec![b'd'; 1024];
        let mut packets = Vec::new();
        for f in 0..flows {
            let tuple = FiveTuple::new(0x0a000000 + f, 0x80000000 + f, 50000 + f as u16, 6881, 6);
            for p in 0..packets_per_flow {
                let payload = if p == 0 { handshake.clone() } else { data.clone() };
                packets.push(Packet::with_payload(
                    u64::from(f * 100 + p),
                    tuple,
                    40 + payload.len() as u32,
                    0x10,
                    Bytes::from(payload),
                ));
            }
        }
        Batch::new(0, 0, 100_000, packets).view()
    }

    #[test]
    fn trace_cost_scales_with_bytes_for_payload_traffic() {
        let tuple = FiveTuple::new(1, 2, 3, 4, 6);
        let small = Batch::new(0, 0, 100_000, vec![payload_packet(0, tuple, &[0u8; 64])]).view();
        let large = Batch::new(0, 0, 100_000, vec![payload_packet(0, tuple, &[0u8; 1024])]).view();
        let mut q = TraceQuery::new();
        let mut meter_small = CycleMeter::new();
        let mut meter_large = CycleMeter::new();
        q.process_batch(&small, 1.0, &mut meter_small);
        q.process_batch(&large, 1.0, &mut meter_large);
        assert!(meter_large.cycles() > meter_small.cycles() * 5);
    }

    #[test]
    fn pattern_search_counts_matches() {
        let tuple = FiveTuple::new(1, 2, 3, 80, 6);
        let batch = Batch::new(
            0,
            0,
            100_000,
            vec![
                payload_packet(0, tuple, b"GET / HTTP/1.1\r\nHost: example.org"),
                payload_packet(1, tuple, b"POST /upload HTTP/1.1"),
            ],
        )
        .view();
        let mut q = PatternSearchQuery::default();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch, 1.0, &mut meter);
        assert_eq!(q.matches(), 1);
        match q.end_interval() {
            QueryOutput::Coverage { processed_packets, .. } => assert_eq!(processed_packets, 2.0),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn p2p_detector_finds_flows_by_signature_and_port() {
        let batch = p2p_batch(5, 4);
        let mut q = P2pDetectorQuery::new();
        let mut meter = CycleMeter::new();
        q.process_batch(&batch, 1.0, &mut meter);
        match q.end_interval() {
            QueryOutput::P2pFlows { flows } => assert_eq!(flows.len(), 5),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn custom_shedding_reduces_cycles_but_keeps_detection() {
        let batch = p2p_batch(20, 10);
        // Full-rate reference.
        let mut reference = P2pDetectorQuery::new();
        let mut meter_full = CycleMeter::new();
        reference.process_batch(&batch, 1.0, &mut meter_full);
        let truth = reference.end_interval();

        // Custom shedding at 30%.
        let mut custom = P2pDetectorQuery::custom(CustomBehavior::Honest);
        let mut meter_custom = CycleMeter::new();
        custom.process_batch(&batch, 0.3, &mut meter_custom);
        let output = custom.end_interval();

        assert!(
            meter_custom.cycles() < meter_full.cycles() * 6 / 10,
            "custom shedding should cut cycles: {} vs {}",
            meter_custom.cycles(),
            meter_full.cycles()
        );
        // Detection barely suffers because handshakes are in the first packets.
        assert!(output.error_against(&truth) < 0.2, "error {}", output.error_against(&truth));
    }

    #[test]
    fn selfish_detector_ignores_the_requested_rate() {
        let batch = p2p_batch(20, 10);
        let mut honest = P2pDetectorQuery::custom(CustomBehavior::Honest);
        let mut selfish = P2pDetectorQuery::custom(CustomBehavior::Selfish);
        let mut meter_honest = CycleMeter::new();
        let mut meter_selfish = CycleMeter::new();
        honest.process_batch(&batch, 0.2, &mut meter_honest);
        selfish.process_batch(&batch, 0.2, &mut meter_selfish);
        assert!(meter_selfish.cycles() > meter_honest.cycles() * 2);
    }

    #[test]
    fn buggy_detector_sheds_less_than_requested() {
        let batch = p2p_batch(20, 10);
        let mut honest = P2pDetectorQuery::custom(CustomBehavior::Honest);
        let mut buggy = P2pDetectorQuery::custom(CustomBehavior::Buggy);
        let mut meter_honest = CycleMeter::new();
        let mut meter_buggy = CycleMeter::new();
        honest.process_batch(&batch, 0.2, &mut meter_honest);
        buggy.process_batch(&batch, 0.2, &mut meter_buggy);
        assert!(meter_buggy.cycles() > meter_honest.cycles());
    }

    #[test]
    fn header_only_traffic_is_cheap_for_payload_queries() {
        let tuple = FiveTuple::new(1, 2, 3, 4, 6);
        let header_batch = Batch::new(
            0,
            0,
            100_000,
            (0..100).map(|i| Packet::header_only(i, tuple, 1500, 0)).collect(),
        )
        .view();
        let mut q = PatternSearchQuery::default();
        let mut meter = CycleMeter::new();
        q.process_batch(&header_batch, 1.0, &mut meter);
        // Only the per-packet base cost, no byte scanning.
        assert_eq!(meter.cycles(), 100 * costs::PER_PACKET_BASE);
    }
}
