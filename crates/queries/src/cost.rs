//! The deterministic cycle cost model and the measurement noise model.
//!
//! The paper measures per-batch CPU usage with the TSC register on a 3 GHz
//! Pentium 4 (Section 3.2.4). Reproducing those absolute numbers is neither
//! possible nor necessary: the prediction subsystem only sees (features,
//! cycles) pairs, so what matters is that per-query cost is dominated by a
//! small number of feature-linear terms plus noise — which is exactly what
//! this model produces. Each query charges cycles per elementary operation
//! (per packet touched, per byte scanned, per hash-table entry created, ...)
//! to a [`CycleMeter`]; the monitor then passes the deterministic total
//! through a [`MeasurementNoise`] model that adds the same disturbances the
//! paper had to engineer around: small multiplicative jitter (cache effects)
//! and rare large outliers (context switches, competing disk DMA).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-operation cycle costs shared by all query implementations.
///
/// The constants are calibrated so the per-query average cost over the
/// default synthetic trace reproduces the ordering and rough magnitude
/// spread of Figure 2.2 (counter cheapest, pattern-search / p2p-detector two
/// or three orders of magnitude more expensive).
pub mod costs {
    /// Fixed cost of delivering one packet to a query (filter + callback).
    pub const PER_PACKET_BASE: u64 = 80;
    /// Updating a plain array counter.
    pub const COUNTER_UPDATE: u64 = 20;
    /// Port-classification table lookup.
    pub const PORT_LOOKUP: u64 = 45;
    /// Hash-table lookup of an existing entry.
    pub const HASH_LOOKUP: u64 = 120;
    /// Creation of a new hash-table entry (allocate + insert + rehash share).
    pub const HASH_INSERT: u64 = 650;
    /// Per level of the autofocus prefix hierarchy touched per packet.
    pub const PREFIX_LEVEL: u64 = 90;
    /// Copying one byte of payload to the storage buffer (trace query).
    pub const STORE_BYTE: u64 = 2;
    /// Scanning one byte of payload with Boyer–Moore (pattern-search).
    pub const SCAN_BYTE: u64 = 6;
    /// Scanning one byte of payload with the P2P signature set.
    pub const P2P_SCAN_BYTE: u64 = 9;
    /// Per-flow classification work of the P2P detector for a new flow.
    pub const P2P_FLOW_SETUP: u64 = 900;
    /// Per-packet work of maintaining a top-k ranking entry.
    pub const RANKING_UPDATE: u64 = 60;
    /// Distinct-counting update (super-sources fan-out sketch).
    pub const DISTINCT_UPDATE: u64 = 140;
}

/// Accumulates the cycles charged by a query while processing one batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleMeter {
    cycles: u64,
    operations: u64,
}

impl CycleMeter {
    /// Creates a meter reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` for one logical operation.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.operations += 1;
    }

    /// Charges `cycles` for `count` identical operations.
    #[inline]
    pub fn charge_n(&mut self, cycles: u64, count: u64) {
        self.cycles += cycles * count;
        self.operations += count;
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total logical operations charged so far.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Models the disturbances that affect real TSC measurements
/// (Section 3.2.4): multiplicative jitter from cache and bus contention and
/// rare additive outliers from context switches.
#[derive(Debug)]
pub struct MeasurementNoise {
    rng: StdRng,
    /// Standard deviation of the multiplicative jitter (e.g. 0.02 = 2%).
    pub jitter_stdev: f64,
    /// Probability that a batch measurement is hit by a context switch.
    pub outlier_probability: f64,
    /// Cycles added by a context-switch outlier.
    pub outlier_cycles: u64,
}

impl MeasurementNoise {
    /// Creates a noise model with the given parameters.
    pub fn new(
        seed: u64,
        jitter_stdev: f64,
        outlier_probability: f64,
        outlier_cycles: u64,
    ) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), jitter_stdev, outlier_probability, outlier_cycles }
    }

    /// A model with realistic defaults: 2% jitter, 0.5% outlier probability.
    pub fn realistic(seed: u64) -> Self {
        Self::new(seed, 0.02, 0.005, 3_000_000)
    }

    /// A silent model that returns measurements unchanged (for tests that
    /// need exact numbers).
    pub fn none(seed: u64) -> Self {
        Self::new(seed, 0.0, 0.0, 0)
    }

    /// The raw RNG state, for checkpointing the noise stream mid-run.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the stream captured by [`MeasurementNoise::rng_state`]; the
    /// restored model continues drawing the exact same disturbances.
    pub fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Applies the noise model to a deterministic cycle count and reports
    /// whether this measurement was disturbed by a context switch.
    pub fn measure(&mut self, cycles: u64) -> (u64, bool) {
        self.draw().apply(cycles)
    }

    /// Draws the disturbances for one measurement *without* applying them.
    ///
    /// The number of RNG samples consumed per draw depends only on the model
    /// configuration, never on the measured value, so a caller may pre-draw
    /// the noise for a set of measurements in a fixed order and apply each
    /// [`NoiseDraw`] later (possibly on another thread) — the RNG stream, and
    /// therefore every disturbed value, is bit-identical to calling
    /// [`MeasurementNoise::measure`] in that same order.
    pub fn draw(&mut self) -> NoiseDraw {
        let jitter_factor = if self.jitter_stdev > 0.0 {
            // Box–Muller normal sample.
            let u1: f64 = 1.0 - self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (1.0 + self.jitter_stdev * z).max(0.5)
        } else {
            1.0
        };
        let outlier =
            self.outlier_probability > 0.0 && self.rng.gen::<f64>() < self.outlier_probability;
        NoiseDraw { jitter_factor, outlier, outlier_cycles: self.outlier_cycles }
    }
}

/// The disturbances [`MeasurementNoise`] drew for one measurement, decoupled
/// from the value they disturb (see [`MeasurementNoise::draw`]).
#[derive(Debug, Clone, Copy)]
pub struct NoiseDraw {
    /// Multiplicative cache/bus-contention jitter (1.0 when disabled).
    jitter_factor: f64,
    /// Whether a context switch hit this measurement.
    outlier: bool,
    /// Cycles a context switch adds.
    outlier_cycles: u64,
}

impl NoiseDraw {
    /// Applies the drawn disturbances to a deterministic cycle count,
    /// returning the disturbed value and whether it was hit by an outlier.
    pub fn apply(&self, cycles: u64) -> (u64, bool) {
        let mut measured = cycles as f64 * self.jitter_factor;
        if self.outlier {
            measured += self.outlier_cycles as f64;
        }
        (measured.max(0.0) as u64, self.outlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_charges() {
        let mut m = CycleMeter::new();
        m.charge(100);
        m.charge_n(10, 5);
        assert_eq!(m.cycles(), 150);
        assert_eq!(m.operations(), 6);
        m.reset();
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn silent_noise_is_identity() {
        let mut noise = MeasurementNoise::none(1);
        let (measured, outlier) = noise.measure(123_456);
        assert_eq!(measured, 123_456);
        assert!(!outlier);
    }

    #[test]
    fn realistic_noise_stays_close_on_average() {
        let mut noise = MeasurementNoise::new(2, 0.02, 0.0, 0);
        let n = 2000;
        let total: u64 = (0..n).map(|_| noise.measure(1_000_000).0).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000_000.0).abs() < 20_000.0, "mean {mean}");
    }

    #[test]
    fn outliers_occur_at_configured_rate() {
        let mut noise = MeasurementNoise::new(3, 0.0, 0.1, 1_000_000);
        let n = 5000;
        let outliers = (0..n).filter(|_| noise.measure(100).1).count();
        let rate = outliers as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.03, "outlier rate {rate}");
    }
}
