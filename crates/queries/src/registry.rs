//! Query registry: named construction of the standard query set.

use crate::payload_queries::{CustomBehavior, P2pDetectorQuery, PatternSearchQuery, TraceQuery};
use crate::query::Query;
use crate::simple_queries::{ApplicationQuery, CounterQuery, HighWatermarkQuery};
use crate::state_queries::{AutofocusQuery, FlowsQuery, SuperSourcesQuery, TopKQuery};

/// The queries of Table 2.2, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Port-based application classification.
    Application,
    /// High-volume traffic clusters per subnet.
    Autofocus,
    /// Traffic load in packets and bytes.
    Counter,
    /// Per-flow classification and number of active flows.
    Flows,
    /// High watermark of link utilisation.
    HighWatermark,
    /// Signature-based P2P detector.
    P2pDetector,
    /// Identification of byte sequences in payloads.
    PatternSearch,
    /// Sources with the largest fan-out.
    SuperSources,
    /// Ranking of top destination addresses.
    TopK,
    /// Full-payload packet collection.
    Trace,
}

impl QueryKind {
    /// All query kinds, in Table 2.2 order.
    pub const ALL: [QueryKind; 10] = [
        QueryKind::Application,
        QueryKind::Autofocus,
        QueryKind::Counter,
        QueryKind::Flows,
        QueryKind::HighWatermark,
        QueryKind::P2pDetector,
        QueryKind::PatternSearch,
        QueryKind::SuperSources,
        QueryKind::TopK,
        QueryKind::Trace,
    ];

    /// The seven queries used in the Chapter 3/4 evaluation (autofocus,
    /// super-sources and p2p-detector are evaluated in Chapters 5 and 6).
    pub const CHAPTER4_SET: [QueryKind; 7] = [
        QueryKind::Application,
        QueryKind::Counter,
        QueryKind::Flows,
        QueryKind::HighWatermark,
        QueryKind::PatternSearch,
        QueryKind::TopK,
        QueryKind::Trace,
    ];

    /// The nine queries of the Chapter 5 evaluation (Table 5.2).
    pub const CHAPTER5_SET: [QueryKind; 9] = [
        QueryKind::Application,
        QueryKind::Autofocus,
        QueryKind::Counter,
        QueryKind::Flows,
        QueryKind::HighWatermark,
        QueryKind::PatternSearch,
        QueryKind::SuperSources,
        QueryKind::TopK,
        QueryKind::Trace,
    ];

    /// The query's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Application => "application",
            QueryKind::Autofocus => "autofocus",
            QueryKind::Counter => "counter",
            QueryKind::Flows => "flows",
            QueryKind::HighWatermark => "high-watermark",
            QueryKind::P2pDetector => "p2p-detector",
            QueryKind::PatternSearch => "pattern-search",
            QueryKind::SuperSources => "super-sources",
            QueryKind::TopK => "top-k",
            QueryKind::Trace => "trace",
        }
    }

    /// Resolves a paper name back to its kind (the inverse of
    /// [`QueryKind::name`]); `None` for unknown names. Snapshot restore uses
    /// this so `.nsck` files carry stable names instead of enum ordinals.
    pub fn from_name(name: &str) -> Option<QueryKind> {
        QueryKind::ALL.into_iter().find(|kind| kind.name() == name)
    }
}

/// Specification of a query instance to run in the monitoring system.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Which query to instantiate.
    pub kind: QueryKind,
    /// Label identifying this instance in records and outputs. `None` uses
    /// the kind's paper name; setting distinct labels lets the same kind be
    /// registered several times (the Figure 6.9 query-arrival scenario).
    pub label: Option<String>,
    /// Minimum sampling rate constraint (`m_q` of Chapter 5); `None` uses the
    /// query's built-in default, which matches Table 5.2.
    pub min_sampling_rate: Option<f64>,
    /// Use the query's custom load shedding method (only meaningful for the
    /// p2p-detector) and with which behaviour.
    pub custom_behavior: Option<CustomBehavior>,
}

impl QuerySpec {
    /// A specification with default constraints.
    pub fn new(kind: QueryKind) -> Self {
        Self { kind, label: None, min_sampling_rate: None, custom_behavior: None }
    }

    /// Overrides the instance label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Overrides the minimum sampling rate constraint.
    pub fn with_min_rate(mut self, rate: f64) -> Self {
        self.min_sampling_rate = Some(rate);
        self
    }

    /// Requests custom load shedding with the given behaviour.
    pub fn with_custom(mut self, behavior: CustomBehavior) -> Self {
        self.custom_behavior = Some(behavior);
        self
    }

    /// The label this spec resolves to: the explicit label if set, the
    /// kind's paper name otherwise.
    pub fn resolved_label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.kind.name().to_string())
    }
}

/// Builds a query instance for the given kind.
pub fn build_query(kind: QueryKind) -> Box<dyn Query> {
    match kind {
        QueryKind::Application => Box::new(ApplicationQuery::new()),
        QueryKind::Autofocus => Box::new(AutofocusQuery::default()),
        QueryKind::Counter => Box::new(CounterQuery::new()),
        QueryKind::Flows => Box::new(FlowsQuery::new()),
        QueryKind::HighWatermark => Box::new(HighWatermarkQuery::new()),
        QueryKind::P2pDetector => Box::new(P2pDetectorQuery::new()),
        QueryKind::PatternSearch => Box::new(PatternSearchQuery::default()),
        QueryKind::SuperSources => Box::new(SuperSourcesQuery::default()),
        QueryKind::TopK => Box::new(TopKQuery::default()),
        QueryKind::Trace => Box::new(TraceQuery::new()),
    }
}

/// Builds a query instance from a full specification.
pub fn build_query_from_spec(spec: &QuerySpec) -> Box<dyn Query> {
    match (spec.kind, spec.custom_behavior) {
        (QueryKind::P2pDetector, Some(behavior)) => Box::new(P2pDetectorQuery::custom(behavior)),
        (kind, _) => build_query(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_names_match() {
        for kind in QueryKind::ALL {
            let query = build_query(kind);
            assert_eq!(query.name(), kind.name());
        }
    }

    #[test]
    fn chapter_sets_are_subsets_of_all() {
        for kind in QueryKind::CHAPTER4_SET {
            assert!(QueryKind::ALL.contains(&kind));
        }
        for kind in QueryKind::CHAPTER5_SET {
            assert!(QueryKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn custom_spec_builds_custom_detector() {
        let spec = QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest);
        let query = build_query_from_spec(&spec);
        assert_eq!(query.preferred_shedding(), crate::SheddingMethod::Custom);
    }

    #[test]
    fn default_min_rates_match_table_5_2_ordering() {
        // Expensive queries have higher minimum sampling rate constraints.
        let counter = build_query(QueryKind::Counter);
        let supersources = build_query(QueryKind::SuperSources);
        let autofocus = build_query(QueryKind::Autofocus);
        assert!(counter.min_sampling_rate() < autofocus.min_sampling_rate());
        assert!(autofocus.min_sampling_rate() < supersources.min_sampling_rate());
    }
}
