//! The monitoring queries ("plug-in modules") of the paper and their cost and
//! accuracy models.
//!
//! The load shedding system treats queries as *black boxes*: it never looks
//! inside them, it only observes the CPU cycles they consume per batch. This
//! crate implements the ten queries of Table 2.2 —
//!
//! | Query            | Method | Cost  | State                                   |
//! |------------------|--------|-------|-----------------------------------------|
//! | `application`    | packet | low   | per-port packet/byte counters           |
//! | `autofocus`      | packet | med   | per-prefix traffic clusters             |
//! | `counter`        | packet | low   | packet/byte totals                      |
//! | `flows`          | flow   | low   | 5-tuple flow table                      |
//! | `high-watermark` | packet | low   | peak load over sub-intervals            |
//! | `p2p-detector`   | packet | high  | signature + per-flow P2P classification |
//! | `pattern-search` | packet | high  | Boyer–Moore payload scan                |
//! | `super-sources`  | flow   | med   | per-source fan-out estimation           |
//! | `top-k`          | packet | low   | ranking of top destinations             |
//! | `trace`          | packet | med   | full packet collection                  |
//!
//! Each query charges a deterministic number of "cycles" per elementary
//! operation to a [`CycleMeter`]; the operation costs are chosen so that the
//! *relative* per-query costs reproduce Figure 2.2 of the paper. Real CPU
//! time can be measured instead (the monitor crate supports both), but the
//! deterministic model keeps every experiment reproducible.
//!
//! Queries also produce a per-measurement-interval [`QueryOutput`] from which
//! the accuracy metrics of Section 2.2.1 are computed by comparing against
//! the output of an unsampled reference execution.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod boyer_moore;
pub mod cost;
pub mod output;
pub mod payload_queries;
pub mod query;
pub mod registry;
pub mod simple_queries;
pub mod state_queries;

pub use boyer_moore::BoyerMoore;
pub use cost::{costs, CycleMeter, MeasurementNoise, NoiseDraw};
pub use output::QueryOutput;
pub use query::{Query, SheddingMethod};
pub use registry::{build_query, build_query_from_spec, QueryKind, QuerySpec};

pub use payload_queries::{CustomBehavior, P2pDetectorQuery, PatternSearchQuery, TraceQuery};
pub use simple_queries::{ApplicationQuery, CounterQuery, HighWatermarkQuery};
pub use state_queries::{AutofocusQuery, FlowsQuery, SuperSourcesQuery, TopKQuery};
