//! Accuracy evaluation helpers.
//!
//! The paper evaluates every load shedding strategy by comparing the output
//! of each query under load shedding against a reference execution over the
//! complete packet stream (Section 2.2.1). [`AccuracySeries`] accumulates
//! those per-interval comparisons and reports the summary statistics used in
//! the tables (mean ± standard deviation) and figures (time series).

use crate::output::QueryOutput;

/// Per-interval accuracy comparison series for one query.
#[derive(Debug, Clone, Default)]
pub struct AccuracySeries {
    errors: Vec<f64>,
}

impl AccuracySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compares one interval's output against the reference output and
    /// records the error.
    pub fn record(&mut self, output: &QueryOutput, truth: &QueryOutput) {
        self.errors.push(output.error_against(truth));
    }

    /// Records an interval in which the query was disabled (accuracy 0).
    pub fn record_disabled(&mut self) {
        self.errors.push(1.0);
    }

    /// Records a pre-computed error value.
    pub fn record_error(&mut self, error: f64) {
        self.errors.push(error.clamp(0.0, 1.0));
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Returns `true` if no intervals were recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Per-interval errors in recording order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Per-interval accuracies (1 - error) in recording order.
    pub fn accuracies(&self) -> Vec<f64> {
        self.errors.iter().map(|e| 1.0 - e).collect()
    }

    /// Mean error across intervals.
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Standard deviation of the error across intervals.
    pub fn stdev_error(&self) -> f64 {
        if self.errors.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_error();
        (self.errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>()
            / self.errors.len() as f64)
            .sqrt()
    }

    /// Mean accuracy across intervals.
    pub fn mean_accuracy(&self) -> f64 {
        1.0 - self.mean_error()
    }

    /// Minimum accuracy across intervals.
    pub fn min_accuracy(&self) -> f64 {
        1.0 - self.errors.iter().copied().fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_errors() {
        let mut series = AccuracySeries::new();
        let truth = QueryOutput::Flows { count: 100.0 };
        series.record(&QueryOutput::Flows { count: 90.0 }, &truth);
        series.record(&QueryOutput::Flows { count: 100.0 }, &truth);
        assert_eq!(series.len(), 2);
        assert!((series.mean_error() - 0.05).abs() < 1e-12);
        assert!((series.mean_accuracy() - 0.95).abs() < 1e-12);
        assert!((series.min_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn disabled_intervals_count_as_zero_accuracy() {
        let mut series = AccuracySeries::new();
        series.record_disabled();
        assert_eq!(series.mean_accuracy(), 0.0);
        assert_eq!(series.min_accuracy(), 0.0);
    }

    #[test]
    fn empty_series_is_benign() {
        let series = AccuracySeries::new();
        assert!(series.is_empty());
        assert_eq!(series.mean_error(), 0.0);
        assert_eq!(series.stdev_error(), 0.0);
    }
}
