//! Per-measurement-interval query outputs and the error metrics of
//! Section 2.2.1.
//!
//! At the end of every measurement interval each query emits a
//! [`QueryOutput`]. The accuracy of a load-shedding run is evaluated by
//! comparing, interval by interval, the output of the sampled execution
//! against the output of an unsampled reference execution of the same query
//! over the same traffic; [`QueryOutput::error_against`] implements the
//! per-query error definitions of the paper.

// Outputs cross the exec plane's merge boundary and get iterated by
// observers, digests and sinks, so every container here is ordered
// (determinism contract, rule `det-map`): BTree maps iterate key-sorted on
// every run, which keeps interval outputs replay-stable at any worker count.
use std::collections::{BTreeMap, BTreeSet};

/// The result a query reports for one measurement interval.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// `counter`: estimated packets and bytes observed in the interval.
    Counter {
        /// Estimated packet count.
        packets: f64,
        /// Estimated byte count.
        bytes: f64,
    },
    /// `application`: per-application estimated packets and bytes.
    Application {
        /// Estimated (packets, bytes) per application name.
        per_app: BTreeMap<&'static str, (f64, f64)>,
    },
    /// `flows`: estimated number of active 5-tuple flows.
    Flows {
        /// Estimated flow count.
        count: f64,
    },
    /// `high-watermark`: peak link utilisation over the interval's sub-bins.
    HighWatermark {
        /// Peak estimated load in megabits per second.
        mbps: f64,
    },
    /// `top-k`: destinations ranked by estimated byte count, best first.
    TopK {
        /// Ranked list of (destination address, estimated bytes).
        ranking: Vec<(u32, f64)>,
    },
    /// `autofocus`: traffic clusters (prefix, prefix length, estimated bytes)
    /// exceeding the report threshold.
    Autofocus {
        /// Reported clusters.
        clusters: Vec<(u32, u8, f64)>,
    },
    /// `super-sources`: estimated fan-out of the sources with largest fan-out.
    SuperSources {
        /// Estimated fan-out per source address.
        fanouts: BTreeMap<u32, f64>,
    },
    /// `p2p-detector`: set of flow keys identified as P2P.
    P2pFlows {
        /// 5-tuple keys (hashed) of the flows classified as P2P.
        flows: BTreeSet<u64>,
    },
    /// `pattern-search` / `trace`: fraction of the traffic actually processed.
    Coverage {
        /// Packets processed by the query.
        processed_packets: f64,
        /// Packets that traversed the monitored link.
        total_packets: f64,
    },
}

impl QueryOutput {
    /// Computes the relative error of `self` (the sampled execution's output)
    /// against `truth` (the unsampled reference output), following the
    /// definitions of Section 2.2.1. The result is clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the two outputs come from different query types.
    pub fn error_against(&self, truth: &QueryOutput) -> f64 {
        let error = match (self, truth) {
            (
                QueryOutput::Counter { packets, bytes },
                QueryOutput::Counter { packets: tp, bytes: tb },
            ) => {
                // Mean of the relative errors in packets and bytes.
                f64::midpoint(relative_error(*packets, *tp), relative_error(*bytes, *tb))
            }
            (
                QueryOutput::Application { per_app },
                QueryOutput::Application { per_app: truth_apps },
            ) => {
                // Weighted average of the relative error across applications,
                // weighted by the true volume of each application.
                let mut weighted = 0.0;
                let mut weight = 0.0;
                for (app, (tp, tb)) in truth_apps {
                    let (ep, eb) = per_app.get(app).copied().unwrap_or((0.0, 0.0));
                    let err = f64::midpoint(relative_error(ep, *tp), relative_error(eb, *tb));
                    let w = tp + tb;
                    weighted += err * w;
                    weight += w;
                }
                if weight > 0.0 {
                    weighted / weight
                } else {
                    0.0
                }
            }
            (QueryOutput::Flows { count }, QueryOutput::Flows { count: truth_count }) => {
                relative_error(*count, *truth_count)
            }
            (
                QueryOutput::HighWatermark { mbps },
                QueryOutput::HighWatermark { mbps: truth_mbps },
            ) => relative_error(*mbps, *truth_mbps),
            (QueryOutput::TopK { ranking }, QueryOutput::TopK { ranking: truth_ranking }) => {
                misranked_pairs_error(ranking, truth_ranking)
            }
            (
                QueryOutput::Autofocus { clusters },
                QueryOutput::Autofocus { clusters: truth_clusters },
            ) => cluster_report_error(clusters, truth_clusters),
            (
                QueryOutput::SuperSources { fanouts },
                QueryOutput::SuperSources { fanouts: truth_fanouts },
            ) => {
                // Average relative error in the fan-out estimations of the
                // true super sources.
                if truth_fanouts.is_empty() {
                    0.0
                } else {
                    truth_fanouts
                        .iter()
                        .map(|(src, t)| {
                            relative_error(fanouts.get(src).copied().unwrap_or(0.0), *t)
                        })
                        .sum::<f64>()
                        / truth_fanouts.len() as f64
                }
            }
            (QueryOutput::P2pFlows { flows }, QueryOutput::P2pFlows { flows: truth_flows }) => {
                // One minus the fraction of true P2P flows correctly identified.
                if truth_flows.is_empty() {
                    0.0
                } else {
                    let found = truth_flows.intersection(flows).count();
                    1.0 - found as f64 / truth_flows.len() as f64
                }
            }
            (
                QueryOutput::Coverage { processed_packets, .. },
                QueryOutput::Coverage { processed_packets: truth_processed, .. },
            ) => {
                // One minus the fraction of packets processed relative to the
                // unsampled reference execution (which processes everything).
                if *truth_processed > 0.0 {
                    1.0 - (processed_packets / truth_processed).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            _ => panic!("cannot compare outputs of different query types"),
        };
        error.clamp(0.0, 1.0)
    }

    /// Accuracy is one minus the error.
    pub fn accuracy_against(&self, truth: &QueryOutput) -> f64 {
        1.0 - self.error_against(truth)
    }
}

/// `|1 - estimate / actual|`, with the conventions the paper uses for zero
/// actual values.
fn relative_error(estimate: f64, actual: f64) -> f64 {
    if actual.abs() < f64::EPSILON {
        if estimate.abs() < f64::EPSILON {
            0.0
        } else {
            1.0
        }
    } else {
        (1.0 - estimate / actual).abs()
    }
}

/// The top-k detection performance metric of the paper: the number of
/// misranked flow pairs where the first element is inside the reported top-k
/// list and the second is outside, normalised to `[0, 1]` by the number of
/// such pairs.
fn misranked_pairs_error(ranking: &[(u32, f64)], truth: &[(u32, f64)]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let k = truth.len();
    let reported: Vec<u32> = ranking.iter().map(|(ip, _)| *ip).collect();
    // Count true top-k members that the query failed to place in its top-k:
    // each such member forms a misranked pair with every reported non-member.
    let mut misranked = 0usize;
    let mut possible = 0usize;
    for (ip, _) in truth {
        let in_reported = reported.iter().take(k).any(|r| r == ip);
        possible += 1;
        if !in_reported {
            misranked += 1;
        }
    }
    misranked as f64 / possible as f64
}

/// Autofocus delta-report error: one minus the fraction of true clusters that
/// the sampled execution also reports.
fn cluster_report_error(clusters: &[(u32, u8, f64)], truth: &[(u32, u8, f64)]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let reported: BTreeSet<(u32, u8)> = clusters.iter().map(|(p, l, _)| (*p, *l)).collect();
    let matched = truth.iter().filter(|(p, l, _)| reported.contains(&(*p, *l))).count();
    1.0 - matched as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_error_is_mean_of_relative_errors() {
        let estimate = QueryOutput::Counter { packets: 90.0, bytes: 110.0 };
        let truth = QueryOutput::Counter { packets: 100.0, bytes: 100.0 };
        assert!((estimate.error_against(&truth) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn identical_outputs_have_zero_error() {
        let truth = QueryOutput::Flows { count: 500.0 };
        assert_eq!(truth.error_against(&truth), 0.0);
        assert_eq!(truth.accuracy_against(&truth), 1.0);
    }

    #[test]
    fn application_error_weights_by_volume() {
        let mut truth_apps = BTreeMap::new();
        truth_apps.insert("http", (1000.0, 1_000_000.0));
        truth_apps.insert("dns", (10.0, 1000.0));
        let mut est_apps = truth_apps.clone();
        // Large error on the tiny application should barely matter.
        est_apps.insert("dns", (0.0, 0.0));
        let truth = QueryOutput::Application { per_app: truth_apps };
        let est = QueryOutput::Application { per_app: est_apps };
        assert!(est.error_against(&truth) < 0.01);
    }

    #[test]
    fn topk_error_counts_missing_members() {
        let truth =
            QueryOutput::TopK { ranking: vec![(1, 100.0), (2, 90.0), (3, 80.0), (4, 70.0)] };
        let est = QueryOutput::TopK { ranking: vec![(1, 100.0), (2, 85.0), (9, 60.0), (8, 50.0)] };
        // Two of the four true members are missing.
        assert!((est.error_against(&truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p2p_error_is_fraction_of_missed_flows() {
        let truth = QueryOutput::P2pFlows { flows: [1u64, 2, 3, 4].into_iter().collect() };
        let est = QueryOutput::P2pFlows { flows: [1u64, 2].into_iter().collect() };
        assert!((est.error_against(&truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_error_is_unprocessed_fraction() {
        let est = QueryOutput::Coverage { processed_packets: 30.0, total_packets: 30.0 };
        let truth = QueryOutput::Coverage { processed_packets: 100.0, total_packets: 100.0 };
        assert!((est.error_against(&truth) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_values_are_handled() {
        let est = QueryOutput::Counter { packets: 0.0, bytes: 0.0 };
        let truth = QueryOutput::Counter { packets: 0.0, bytes: 0.0 };
        assert_eq!(est.error_against(&truth), 0.0);
        let est2 = QueryOutput::Counter { packets: 10.0, bytes: 0.0 };
        assert!(est2.error_against(&truth) > 0.0);
    }

    #[test]
    #[should_panic(expected = "different query types")]
    fn mismatched_outputs_panic() {
        let a = QueryOutput::Flows { count: 1.0 };
        let b = QueryOutput::Counter { packets: 1.0, bytes: 1.0 };
        let _ = a.error_against(&b);
    }
}
