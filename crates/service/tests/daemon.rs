//! Service-plane conformance: administered runs replay bit-identically,
//! checkpoints restore into fresh daemons (at any worker count), the
//! registry sustains a thousand tenants, and damaged `.nsck` input is
//! always rejected with a diagnosable error.

use netshed_monitor::{
    AllocationPolicy, DigestObserver, Monitor, MonitorConfig, RunDigest, Strategy,
};
use netshed_queries::{QueryKind, QuerySpec};
use netshed_service::{Daemon, ServiceError, Snapshot, SnapshotError, TickStatus};
use netshed_sketch::StateError;
use netshed_trace::{BatchReplay, PacketSource, TraceConfig, TraceGenerator};

const TRACE_BINS: usize = 48;

/// A recorded stream every test replays from the start — the daemon
/// equivalent of a `.nstr` scenario file.
fn recorded_trace() -> BatchReplay {
    let config =
        TraceConfig::default().with_seed(7).with_mean_packets_per_batch(350.0).with_payloads(true);
    BatchReplay::record(&mut TraceGenerator::new(config), TRACE_BINS)
}

/// Average per-bin demand of `kinds` over the recorded trace, measured
/// without any resource limit. Memoised: every test shares one measurement.
fn demand(kinds: &[QueryKind]) -> f64 {
    static DEMAND: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *DEMAND.get_or_init(|| measure_demand(kinds))
}

fn measure_demand(kinds: &[QueryKind]) -> f64 {
    let config = MonitorConfig::default()
        .with_capacity(1e12)
        .with_strategy(Strategy::NoShedding)
        .without_noise();
    let mut monitor = Monitor::new(config);
    for kind in kinds {
        monitor.register(&QuerySpec::new(*kind)).expect("valid spec");
    }
    let mut source = recorded_trace();
    let mut total = 0.0;
    let mut bins = 0u32;
    while let Some(batch) = source.next_batch() {
        total += monitor.process_batch(&batch).expect("batch").total_cycles();
        bins += 1;
    }
    total / f64::from(bins)
}

const KINDS: [QueryKind; 3] = [QueryKind::Flows, QueryKind::TopK, QueryKind::Counter];

/// An overloaded configuration (half the measured demand) so shedding, RNG
/// draws and predictor updates are all active.
fn overloaded_config(workers: usize) -> MonitorConfig {
    MonitorConfig::default().with_capacity(demand(&KINDS) / 2.0).with_seed(11).with_workers(workers)
}

fn daemon_with_registered_queries(
    config: MonitorConfig,
    bins_per_tick: u64,
) -> (Daemon<BatchReplay>, netshed_service::ControlChannel) {
    let monitor = Monitor::new(config);
    let (daemon, control) = Daemon::new(monitor, recorded_trace());
    let mut daemon = daemon.with_bins_per_tick(bins_per_tick);
    let pending: Vec<_> =
        KINDS.iter().map(|kind| control.register_query(QuerySpec::new(*kind))).collect();
    // One tick applies the queued registrations before the first bin.
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
    for p in pending {
        p.wait().expect("registered");
    }
    (daemon, control)
}

/// The digest of the same run driven by `Monitor::run` directly.
fn monitor_run_digest(config: MonitorConfig) -> RunDigest {
    let mut monitor = Monitor::new(config);
    for kind in KINDS {
        monitor.register(&QuerySpec::new(kind)).expect("valid spec");
    }
    let mut source = recorded_trace();
    let mut digest = DigestObserver::new();
    monitor.run(&mut source, &mut digest).expect("run");
    digest.digest()
}

#[test]
fn a_daemon_run_matches_monitor_run_exactly() {
    // Queries registered through the control channel before the first bin
    // must land in the same state as builder-time registration, and the
    // tick loop must mirror Monitor::run's observer sequence.
    let config = overloaded_config(1);
    let (mut daemon, _control) = daemon_with_registered_queries(config.clone(), 5);
    assert!(matches!(daemon.run_to_exhaustion().expect("run"), TickStatus::SourceExhausted));
    assert_eq!(daemon.digest(), monitor_run_digest(config));
    assert_eq!(daemon.bins_ingested(), TRACE_BINS as u64);
}

#[test]
fn an_administered_run_replays_bit_identically_across_worker_counts() {
    // The same command schedule (register late tenants, swap the policy,
    // deregister one) at the same bin positions must reproduce the same
    // digests — and the worker count must stay a pure wall-clock knob.
    let run = |workers: usize| -> RunDigest {
        let (mut daemon, control) = daemon_with_registered_queries(overloaded_config(workers), 8);
        let late = control.register_query(QuerySpec::new(QueryKind::PatternSearch));
        assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 8 }));
        let late_id = late.wait().expect("registered");
        let swap = control.swap_policy(Strategy::Reactive(AllocationPolicy::MmfsPkt));
        assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 8 }));
        assert_eq!(swap.wait().expect("swapped"), "reactive_mmfs_pkt");
        let gone = control.deregister_query(late_id);
        let status = daemon.run_to_exhaustion().expect("run");
        assert!(matches!(status, TickStatus::SourceExhausted));
        gone.wait().expect("deregistered");
        daemon.digest()
    };
    let reference = run(1);
    assert_eq!(run(1), reference, "same schedule must replay bit-identically");
    assert_eq!(run(4), reference, "worker count must not leak into digests");
}

#[test]
fn checkpoint_restores_into_a_fresh_daemon_bit_identically() {
    let config = overloaded_config(1);
    let reference = monitor_run_digest(config.clone());

    // Run to a mid-scenario cut and checkpoint through the control channel.
    let (mut daemon, control) = daemon_with_registered_queries(config.clone(), 7);
    for _ in 0..2 {
        assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 7 }));
    }
    let pending = control.checkpoint();
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
    let bytes = pending.wait().expect("checkpoint");
    drop(daemon);

    // Restore in a "fresh process": new daemon, new replay of the stream,
    // different worker count. The remaining digests must land exactly on
    // the uninterrupted run's.
    for workers in [1usize, 4] {
        let (mut resumed, _control) =
            Daemon::restore(config.clone().with_workers(workers), recorded_trace(), &bytes)
                .expect("restore");
        assert!(matches!(
            resumed.run_to_exhaustion().expect("resume"),
            TickStatus::SourceExhausted
        ));
        assert_eq!(
            resumed.digest(),
            reference,
            "restore at {workers} workers must finish bit-identically"
        );
    }
}

#[test]
fn checkpoints_resume_after_a_policy_swap() {
    // The snapshot stores the *active* policy, not the configured one: a
    // run that swapped policies mid-flight restores under the swapped
    // policy even though the provided config still names the original.
    let config = overloaded_config(1);
    let (mut daemon, control) = daemon_with_registered_queries(config.clone(), 6);
    let swap = control.swap_policy(Strategy::Reactive(AllocationPolicy::EqualRates));
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
    swap.wait().expect("swapped");
    let bytes = daemon.checkpoint().expect("checkpoint");
    let reference = {
        let mut d = daemon;
        d.run_to_exhaustion().expect("run");
        d.digest()
    };
    let (mut resumed, _control) =
        Daemon::restore(config, recorded_trace(), &bytes).expect("restore");
    assert_eq!(resumed.monitor().policy_name(), "reactive");
    resumed.run_to_exhaustion().expect("resume");
    assert_eq!(resumed.digest(), reference);
}

#[test]
fn shutdown_flushes_the_final_interval_and_reports_the_digest() {
    let config = overloaded_config(1);
    let (mut daemon, control) = daemon_with_registered_queries(config, 9);
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 9 }));
    let stop = control.shutdown();
    let orphan = control.register_query(QuerySpec::new(QueryKind::Counter));
    assert_eq!(daemon.tick().expect("tick"), TickStatus::ShutdownRequested);
    let final_digest = stop.wait().expect("shutdown reply");
    assert_eq!(final_digest, daemon.digest());
    assert_ne!(final_digest.intervals, 0, "shutdown must flush the open interval");
    // Commands queued behind the shutdown are never applied.
    drop(daemon);
    assert!(matches!(orphan.wait(), Err(ServiceError::ChannelClosed)));
}

#[test]
fn dropping_the_daemon_mid_pending_is_a_typed_error_not_a_hang() {
    // Fault injection on the reply path: the daemon dies (panic elsewhere,
    // process teardown) while commands sit unapplied in its queue. Every
    // waiter must get a typed error immediately — never block forever.
    let (daemon, control) = daemon_with_registered_queries(overloaded_config(1), 5);
    let swap = control.swap_policy(Strategy::Reactive(AllocationPolicy::EqualRates));
    let snap = control.checkpoint();
    assert!(swap.poll().is_none(), "no reply may exist before a bin boundary");
    drop(daemon);
    assert!(matches!(swap.wait(), Err(ServiceError::ChannelClosed)));
    assert!(matches!(snap.wait(), Err(ServiceError::ChannelClosed)));
    // Sending into the void is equally non-blocking: a command issued after
    // the daemon is gone resolves to the same typed error.
    assert!(matches!(
        control.register_query(QuerySpec::new(QueryKind::Counter)).wait(),
        Err(ServiceError::ChannelClosed)
    ));
}

#[test]
fn a_daemon_outlives_its_control_channel_and_abandoned_waiters() {
    // The opposite fault: the tenant walks away. The waiter and the only
    // external control handle are dropped before the daemon reaches a bin
    // boundary; the queued command still applies and the unsendable reply
    // is discarded without a panic.
    let (mut daemon, control) = daemon_with_registered_queries(overloaded_config(1), 5);
    drop(control.swap_policy(Strategy::Reactive(AllocationPolicy::EqualRates)));
    drop(control);
    assert!(matches!(daemon.run_to_exhaustion().expect("run"), TickStatus::SourceExhausted));
    assert_eq!(daemon.monitor().policy_name(), "reactive", "the queued swap still applies");
}

#[test]
fn a_shutdown_racing_a_queued_policy_swap_is_decided_by_arrival_order() {
    // Swap queued ahead of the shutdown: both apply, in order.
    let (mut daemon, control) = daemon_with_registered_queries(overloaded_config(1), 6);
    let swap = control.swap_policy(Strategy::Reactive(AllocationPolicy::EqualRates));
    let stop = control.shutdown();
    assert_eq!(daemon.tick().expect("tick"), TickStatus::ShutdownRequested);
    assert_eq!(swap.wait().expect("swap ahead of shutdown"), "reactive");
    stop.wait().expect("shutdown reply");

    // Swap queued behind the shutdown: never applied, not even by a later
    // tick, and its waiter resolves to a typed error once the daemon drops.
    let (mut daemon, control) = daemon_with_registered_queries(overloaded_config(1), 6);
    let active = daemon.monitor().policy_name();
    let stop = control.shutdown();
    let swap = control.swap_policy(Strategy::Reactive(AllocationPolicy::EqualRates));
    assert_eq!(daemon.tick().expect("tick"), TickStatus::ShutdownRequested);
    stop.wait().expect("shutdown reply");
    assert_eq!(daemon.tick().expect("tick"), TickStatus::ShutdownRequested);
    assert_eq!(daemon.monitor().policy_name(), active, "a swap behind a shutdown must not apply");
    assert!(swap.poll().is_none(), "no silent success while the daemon lives");
    drop(daemon);
    assert!(matches!(swap.wait(), Err(ServiceError::ChannelClosed)));
}

#[test]
fn a_checkpoint_on_the_final_bin_still_serves_and_restores() {
    // The source runs dry and the final interval flushes — but the command
    // window stays open: a checkpoint taken after exhaustion captures the
    // completed run and restores into a daemon that is already finished.
    let config = overloaded_config(1);
    let (mut daemon, control) = daemon_with_registered_queries(config.clone(), 9);
    assert!(matches!(daemon.run_to_exhaustion().expect("run"), TickStatus::SourceExhausted));
    let finished = daemon.digest();
    let pending = control.checkpoint();
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::SourceExhausted));
    let bytes = pending.wait().expect("checkpoint after exhaustion");
    drop(daemon);
    let (mut resumed, _control) =
        Daemon::restore(config, recorded_trace(), &bytes).expect("restore");
    assert!(matches!(resumed.run_to_exhaustion().expect("resume"), TickStatus::SourceExhausted));
    assert_eq!(resumed.digest(), finished, "an end-of-stream checkpoint restores the finished run");
}

#[test]
fn the_registry_sustains_a_thousand_tenants() {
    // Scale knob of the service plane: 1000 concurrent queries, registered
    // through the channel, all alive through a processed bin, then a sweep
    // of deregistrations — ids stay stable and nothing renumbers.
    let config = MonitorConfig::default().with_capacity(1e12).with_seed(5).without_noise();
    let monitor = Monitor::new(config);
    let (daemon, control) = Daemon::new(monitor, recorded_trace());
    let mut daemon = daemon.with_bins_per_tick(2);
    let pending: Vec<_> = (0..1000)
        .map(|i| {
            control.register_query(
                QuerySpec::new(QueryKind::Counter).with_label(format!("tenant-{i:04}")),
            )
        })
        .collect();
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 2 }));
    let ids: Vec<_> = pending.into_iter().map(|p| p.wait().expect("registered")).collect();
    assert_eq!(daemon.monitor().query_handles().len(), 1000);
    // Deregister every odd tenant; the even ones keep their handles.
    let gone: Vec<_> =
        ids.iter().skip(1).step_by(2).map(|id| control.deregister_query(*id)).collect();
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 2 }));
    for g in gone {
        g.wait().expect("deregistered");
    }
    let handles = daemon.monitor().query_handles();
    assert_eq!(handles.len(), 500);
    assert!(handles.iter().zip(ids.iter().step_by(2)).all(|((id, _), expected)| id == expected));
}

#[test]
fn restore_rejects_a_mismatched_config_naming_both_sides() {
    let config = overloaded_config(1);
    let (daemon, _control) = daemon_with_registered_queries(config.clone(), 4);
    let bytes = daemon.checkpoint().expect("checkpoint");
    let err = Daemon::restore(config.with_seed(99), recorded_trace(), &bytes)
        .err()
        .expect("a foreign seed must be rejected");
    match err {
        ServiceError::Snapshot(SnapshotError::State(StateError::Mismatch {
            what,
            found,
            expected,
        })) => {
            assert_eq!(what, "seed");
            assert_eq!(found, "11");
            assert_eq!(expected, "99");
        }
        other => panic!("expected a seed mismatch naming both sides, got {other}"),
    }
}

#[test]
fn restore_reports_a_source_that_is_too_short() {
    let config = overloaded_config(1);
    let (mut daemon, _control) = daemon_with_registered_queries(config.clone(), 10);
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 10 }));
    let bytes = daemon.checkpoint().expect("checkpoint");
    let consumed = daemon.bins_ingested();
    let short = {
        let config = TraceConfig::default()
            .with_seed(7)
            .with_mean_packets_per_batch(350.0)
            .with_payloads(true);
        BatchReplay::record(&mut TraceGenerator::new(config), consumed as usize - 3)
    };
    match Daemon::restore(config, short, &bytes).err().expect("short source must be rejected") {
        ServiceError::SourceTooShort { needed, skipped } => {
            assert_eq!(needed, consumed);
            assert_eq!(skipped, consumed - 3);
        }
        other => panic!("expected SourceTooShort, got {other}"),
    }
}

#[test]
fn every_bit_flip_in_a_real_checkpoint_is_detected() {
    // The robustness sweep from the trace format, applied to .nsck: no
    // single-bit corruption anywhere in a real daemon checkpoint may load.
    let (mut daemon, _control) = daemon_with_registered_queries(overloaded_config(1), 6);
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
    let pristine = daemon.checkpoint().expect("checkpoint");
    // Decoding a large container is O(size), so an exhaustive bits×bytes
    // product would be quadratic; the snapshot unit tests run that product
    // on a small container. Here: every bit of the framing-dense first 64
    // bytes, plus one rotating bit of ~256 byte positions spread across the
    // whole container (bodies, checksums, the end frame).
    let stride = (pristine.len() / 256).max(1);
    let positions = (0..64).chain((64..pristine.len()).step_by(stride));
    for index in positions {
        let bits: &[u8] = if index < 64 { &[0, 1, 2, 3, 4, 5, 6, 7] } else { &[index as u8 % 8] };
        for &bit in bits {
            let mut corrupted = pristine.clone();
            corrupted[index] ^= 1 << bit;
            assert!(
                Snapshot::from_bytes(&corrupted).is_err(),
                "flipping bit {bit} of byte {index} went undetected"
            );
        }
    }
}

#[test]
fn truncated_checkpoints_and_foreign_files_are_told_apart() {
    let (daemon, _control) = daemon_with_registered_queries(overloaded_config(1), 4);
    let pristine = daemon.checkpoint().expect("checkpoint");
    // Any truncation of a real checkpoint is Truncated, never BadMagic.
    // Sampled for the same cost reason as the bit-flip sweep; the snapshot
    // unit tests cut at every byte of a small container.
    let stride = (pristine.len() / 256).max(1);
    for len in (4..64.min(pristine.len())).chain((64..pristine.len()).step_by(stride)) {
        assert!(
            matches!(
                Snapshot::from_bytes(&pristine[..len]).unwrap_err(),
                SnapshotError::Truncated { .. }
            ),
            "truncation to {len} bytes must report Truncated"
        );
    }
    // ...while a short *foreign* file (e.g. a .nstr trace) is BadMagic even
    // though it is also too short to be a snapshot.
    assert_eq!(
        Snapshot::from_bytes(b"NSTR").unwrap_err(),
        SnapshotError::BadMagic { found: *b"NSTR" }
    );
}

#[test]
fn version_skew_names_found_and_expected() {
    let (daemon, _control) = daemon_with_registered_queries(overloaded_config(1), 4);
    let mut bytes = daemon.checkpoint().expect("checkpoint");
    bytes[4] = 77;
    bytes[5] = 0;
    // Recompute the header checksum so the version check is what fires.
    let mut fnv = netshed_sketch::IncrementalFnv::new(0x6e73_636b);
    fnv.write(&bytes[..16]);
    bytes[16..24].copy_from_slice(&fnv.finish().to_le_bytes());
    let message = Snapshot::from_bytes(&bytes).unwrap_err().to_string();
    assert!(
        message.contains("77") && message.contains("supported 1"),
        "version-skew message must name found and expected: {message}"
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// save → load → save is byte-identical for arbitrary section
        /// layouts: the container encoding is canonical.
        #[test]
        fn snapshot_reencoding_is_byte_identical(
            sections in proptest::collection::vec(
                (0usize..6, proptest::collection::vec(0u32..256, 0..300)),
                0..6,
            ),
        ) {
            let mut snapshot = Snapshot::new();
            for (index, (name_index, body)) in sections.into_iter().enumerate() {
                let name = format!("section-{name_index}-{index}");
                let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
                snapshot.push(&name, body).expect("unique names");
            }
            let first = snapshot.to_bytes();
            let second = Snapshot::from_bytes(&first).expect("decode").to_bytes();
            prop_assert_eq!(first, second);
        }

    }
}

#[test]
fn a_real_checkpoint_reencodes_byte_identically_at_several_cuts() {
    // save → load → save on actual daemon state, at cuts that land inside
    // different measurement intervals.
    for cut in [1u64, 6, 13] {
        let (mut daemon, _control) = daemon_with_registered_queries(overloaded_config(1), cut);
        assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
        let bytes = daemon.checkpoint().expect("checkpoint");
        let reencoded = Snapshot::from_bytes(&bytes).expect("decode").to_bytes();
        assert_eq!(bytes, reencoded, "cut {cut}: re-encoding must be byte-identical");
    }
}

/// A sharded fleet over the same configuration and query set.
fn sharded_fleet(config: &MonitorConfig) -> netshed_monitor::ShardedMonitor {
    netshed_monitor::MonitorBuilder::from_config(config.clone())
        .queries(KINDS.iter().map(|kind| QuerySpec::new(*kind)))
        .build_sharded()
        .expect("valid sharded configuration")
}

/// The digest of the same sharded run driven by `ShardedMonitor::run`
/// directly.
fn sharded_run_digest(config: &MonitorConfig) -> RunDigest {
    let mut fleet = sharded_fleet(config);
    let mut source = recorded_trace();
    let mut digest = DigestObserver::new();
    fleet.run(&mut source, &mut digest).expect("run");
    digest.digest()
}

#[test]
fn a_sharded_daemon_run_matches_the_fleet_run_exactly() {
    // The sharded engine's ingest must mirror ShardedMonitor::run's observer
    // sequence, exactly as the solo engine mirrors Monitor::run's.
    let config = overloaded_config(1).with_shard_lanes(4);
    let reference = sharded_run_digest(&config);
    let (daemon, _control) = Daemon::new(sharded_fleet(&config), recorded_trace());
    let mut daemon = daemon.with_bins_per_tick(5);
    assert!(matches!(daemon.run_to_exhaustion().expect("run"), TickStatus::SourceExhausted));
    assert_eq!(daemon.digest(), reference);
    assert_eq!(daemon.bins_ingested(), TRACE_BINS as u64);
}

#[test]
fn a_sharded_checkpoint_restores_bit_identically_at_any_shard_thread_count() {
    // One .nsck carries the whole fleet: per-lane `shard.{i}` sections plus
    // the coordinator's `sharded` section. Restoring at a different
    // shard-thread count must finish on the uninterrupted run's digest —
    // `shards`, like `workers`, is a pure wall-clock knob.
    let config = overloaded_config(1).with_shard_lanes(4);
    let reference = sharded_run_digest(&config);

    let (daemon, control) = Daemon::new(sharded_fleet(&config), recorded_trace());
    let mut daemon = daemon.with_bins_per_tick(7);
    for _ in 0..2 {
        assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { bins: 7 }));
    }
    let pending = control.checkpoint();
    assert!(matches!(daemon.tick().expect("tick"), TickStatus::Progressed { .. }));
    let bytes = pending.wait().expect("checkpoint");
    drop(daemon);

    let snapshot = Snapshot::from_bytes(&bytes).expect("valid container");
    for lane in 0..4 {
        let section = format!("shard.{lane}");
        assert!(snapshot.section(&section).is_ok(), "checkpoint carries {section}");
    }
    assert!(snapshot.section("sharded").is_ok(), "checkpoint carries the coordinator");

    for shards in [1usize, 2, 4] {
        let (mut resumed, _control) = Daemon::<_, netshed_monitor::ShardedMonitor>::restore_engine(
            config.clone().with_shards(shards),
            recorded_trace(),
            &bytes,
        )
        .expect("restore");
        assert!(matches!(
            resumed.run_to_exhaustion().expect("resume"),
            TickStatus::SourceExhausted
        ));
        assert_eq!(
            resumed.digest(),
            reference,
            "restore at {shards} shard threads must finish bit-identically"
        );
    }

    // A fleet with a different lane partition must refuse the checkpoint:
    // lanes own state, so the lane count is configuration, not a knob.
    let error = Daemon::<_, netshed_monitor::ShardedMonitor>::restore_engine(
        config.with_shard_lanes(2),
        recorded_trace(),
        &bytes,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(error, ServiceError::Snapshot(_)), "got {error:?}");
}
