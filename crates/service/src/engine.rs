//! The engine abstraction: what a [`Daemon`](crate::Daemon) needs from the
//! computation it hosts.
//!
//! The service loop — command windows at bin boundaries, digest maintenance,
//! `.nsck` checkpoint/restore — is the same whether one [`Monitor`] or a
//! [`ShardedMonitor`] fleet does the computing. [`MonitorEngine`] is that
//! seam: the daemon drives `ingest` per non-empty bin and delegates
//! registration, policy swaps, interval flushes and state (de)serialisation.
//!
//! Both implementations uphold the determinism contract the daemon documents:
//! `ingest` reports to the observer in the exact order `Monitor::run` does
//! (`on_batch`, `on_interval` when one closed, `on_decision`, `on_bin` — the
//! sharded engine repeats the decision/record pair per lane in lane order),
//! and the checkpoint sections capture essential state only, so a restored
//! engine continues bit-identically at any worker or shard-thread count.

use netshed_monitor::{
    Monitor, MonitorConfig, NetshedError, QueryId, RunObserver, ShardedMonitor, Strategy,
};
use netshed_queries::{QueryOutput, QuerySpec};
use netshed_sketch::{StateReader, StateWriter};
use netshed_trace::Batch;

use crate::daemon::ServiceError;
use crate::snapshot::Snapshot;

/// A computation the service plane can host: ingest bins, answer the control
/// channel, serialise into named `.nsck` sections.
pub trait MonitorEngine {
    /// Rebuilds a fresh engine from the run's configuration (the restore
    /// path; state is loaded separately through
    /// [`load_sections`](MonitorEngine::load_sections)).
    fn from_config(config: MonitorConfig) -> Result<Self, NetshedError>
    where
        Self: Sized;

    /// The configuration of the hosted run. For a sharded engine this is the
    /// *global* configuration — checkpoint cross-checks compare against it
    /// bit for bit, and per-lane budgets are coordinator state, not config.
    fn config(&self) -> &MonitorConfig;

    /// Name of the active control policy.
    fn policy_name(&self) -> String;

    /// Registers a query (fleet-wide for a sharded engine).
    fn register(&mut self, spec: &QuerySpec) -> Result<QueryId, NetshedError>;

    /// Deregisters a query by handle.
    fn deregister(&mut self, id: QueryId) -> Result<(), NetshedError>;

    /// Swaps the control policy to a built-in strategy.
    fn set_strategy(&mut self, strategy: Strategy);

    /// Whether a measurement interval is currently open.
    fn interval_open(&self) -> bool;

    /// Flushes the open measurement interval and returns its outputs.
    fn finish_interval(&mut self) -> Vec<(String, QueryOutput)>;

    /// Processes one non-empty bin, reporting every event to `observer` in
    /// the engine's canonical (deterministic) order, starting with
    /// `on_batch` for the undivided batch.
    fn ingest(&mut self, batch: &Batch, observer: &mut dyn RunObserver)
        -> Result<(), NetshedError>;

    /// Appends the engine's state sections to a checkpoint under way.
    fn save_sections(&self, snapshot: &mut Snapshot) -> Result<(), ServiceError>;

    /// Restores the engine's state from its checkpoint sections. The caller
    /// has already installed the snapshot's policy (via
    /// [`set_strategy`](MonitorEngine::set_strategy)), so shadow
    /// reconstruction follows the right policy.
    fn load_sections(&mut self, snapshot: &Snapshot) -> Result<(), ServiceError>;
}

/// Checkpoint section holding a solo monitor's state.
const SECTION_MONITOR: &str = "monitor";
/// Checkpoint section prefix for one lane of a sharded fleet.
const SECTION_SHARD_PREFIX: &str = "shard.";
/// Checkpoint section holding the cross-shard coordinator's state.
const SECTION_SHARDED: &str = "sharded";

impl MonitorEngine for Monitor {
    fn from_config(config: MonitorConfig) -> Result<Self, NetshedError> {
        config.validate()?;
        Ok(Monitor::new(config))
    }

    fn config(&self) -> &MonitorConfig {
        Monitor::config(self)
    }

    fn policy_name(&self) -> String {
        Monitor::policy_name(self)
    }

    fn register(&mut self, spec: &QuerySpec) -> Result<QueryId, NetshedError> {
        Monitor::register(self, spec)
    }

    fn deregister(&mut self, id: QueryId) -> Result<(), NetshedError> {
        Monitor::deregister(self, id)
    }

    fn set_strategy(&mut self, strategy: Strategy) {
        self.set_policy(strategy.control_policy());
    }

    fn interval_open(&self) -> bool {
        Monitor::interval_open(self)
    }

    fn finish_interval(&mut self) -> Vec<(String, QueryOutput)> {
        Monitor::finish_interval(self)
    }

    fn ingest(
        &mut self,
        batch: &Batch,
        observer: &mut dyn RunObserver,
    ) -> Result<(), NetshedError> {
        observer.on_batch(batch);
        let record = self.process_batch(batch)?;
        if let Some(outputs) = &record.interval_outputs {
            observer.on_interval(outputs);
        }
        observer.on_decision(record.bin_index, &record.decision);
        observer.on_bin(&record);
        Ok(())
    }

    fn save_sections(&self, snapshot: &mut Snapshot) -> Result<(), ServiceError> {
        let mut section = StateWriter::new();
        self.save_state(&mut section)?;
        snapshot.push(SECTION_MONITOR, section.into_bytes())?;
        Ok(())
    }

    fn load_sections(&mut self, snapshot: &Snapshot) -> Result<(), ServiceError> {
        let mut section = StateReader::new(snapshot.section(SECTION_MONITOR)?);
        self.load_state(&mut section)?;
        section.finish()?;
        Ok(())
    }
}

impl MonitorEngine for ShardedMonitor {
    fn from_config(config: MonitorConfig) -> Result<Self, NetshedError> {
        ShardedMonitor::new(config)
    }

    fn config(&self) -> &MonitorConfig {
        ShardedMonitor::config(self)
    }

    fn policy_name(&self) -> String {
        ShardedMonitor::policy_name(self)
    }

    fn register(&mut self, spec: &QuerySpec) -> Result<QueryId, NetshedError> {
        ShardedMonitor::register(self, spec)
    }

    fn deregister(&mut self, id: QueryId) -> Result<(), NetshedError> {
        ShardedMonitor::deregister(self, id)
    }

    fn set_strategy(&mut self, strategy: Strategy) {
        ShardedMonitor::set_strategy(self, strategy);
    }

    fn interval_open(&self) -> bool {
        ShardedMonitor::interval_open(self)
    }

    fn finish_interval(&mut self) -> Vec<(String, QueryOutput)> {
        ShardedMonitor::finish_interval(self)
    }

    fn ingest(
        &mut self,
        batch: &Batch,
        observer: &mut dyn RunObserver,
    ) -> Result<(), NetshedError> {
        // process_bin already runs the full observer protocol (on_batch,
        // merged on_interval, per-lane on_decision/on_bin in lane order).
        self.process_bin(batch, observer).map(|_records| ())
    }

    fn save_sections(&self, snapshot: &mut Snapshot) -> Result<(), ServiceError> {
        for lane in 0..self.lane_count() {
            let mut section = StateWriter::new();
            self.save_lane_state(lane, &mut section)?;
            snapshot.push(&format!("{SECTION_SHARD_PREFIX}{lane}"), section.into_bytes())?;
        }
        let mut section = StateWriter::new();
        self.save_coordinator_state(&mut section)?;
        snapshot.push(SECTION_SHARDED, section.into_bytes())?;
        Ok(())
    }

    fn load_sections(&mut self, snapshot: &Snapshot) -> Result<(), ServiceError> {
        for lane in 0..self.lane_count() {
            let mut section =
                StateReader::new(snapshot.section(&format!("{SECTION_SHARD_PREFIX}{lane}"))?);
            self.load_lane_state(lane, &mut section)?;
            section.finish()?;
        }
        // After the lanes: a lane load resets its config capacity to the
        // checkpointed value, and the coordinator re-applies its budgets.
        let mut section = StateReader::new(snapshot.section(SECTION_SHARDED)?);
        self.load_coordinator_state(&mut section)?;
        section.finish()?;
        Ok(())
    }
}
