//! The `.nsck` snapshot container: versioned, checksummed, named sections.
//!
//! A snapshot is the on-disk form of a [`Daemon`](crate::Daemon) checkpoint.
//! The container deliberately mirrors the `.nstr` v2 trace framing so both
//! netshed artifact formats share one verification story:
//!
//! ```text
//! header   magic "NSCK" · version u16 · flags u16 · section count u64
//!          · FNV-1a checksum over the 16 fixed bytes
//! section  kind 0x01 · name len u64 · body len u64 · name bytes
//!          · body bytes · checksum u64
//! ...
//! end      kind 0x00 · section count u64 · FNV-1a checksum
//! ```
//!
//! Every multi-byte value is little-endian. A section checksum runs the
//! fixed metadata (kind, lengths, name) through the byte-serial
//! [`IncrementalFnv`] and the body — which carries the megabytes of sketch
//! and history state — through the word-parallel 4-lane
//! [`hash_block`](netshed_sketch::hash_block), folding the halves with
//! [`mix64`](netshed_sketch::mix64): verifying a large snapshot costs memory
//! bandwidth, not a multiply per byte (the same trade `.nstr` v2 makes).
//!
//! Section *names* are the schema: readers look bodies up by name
//! ([`Snapshot::section`]), so sections can be appended in later versions
//! without renumbering anything. Section bodies are opaque byte blobs here;
//! their internal encoding is the
//! [`StateWriter`](netshed_sketch::StateWriter) canonical form, owned by the
//! component that wrote them.
//!
//! Error ordering is part of the contract (and pinned by tests): the magic
//! is validated before anything else, so truncated *non*-`.nsck` input
//! reports [`SnapshotError::BadMagic`], not `Truncated`; version skew
//! reports both the found and the expected version, like `.nstr` does.

use netshed_sketch::{hash_block, mix64, IncrementalFnv, StateError};

/// File magic: "NSCK" (netshed checkpoint).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NSCK";

/// Current format version. Readers accept exactly this version; the
/// version-skew error names both sides so the mismatch is diagnosable from
/// the message alone.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 1;

/// Seed of the container checksums (header, per-section and end frame).
const CHECKSUM_SEED: u64 = 0x6e73_636b; // "nsck"

const FRAME_END: u8 = 0;
const FRAME_SECTION: u8 = 1;

/// Errors produced while encoding or decoding a `.nsck` container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with the `.nsck` magic.
    BadMagic {
        /// The bytes found where the magic should be (zero-padded when the
        /// input is shorter than the magic itself).
        found: [u8; 4],
    },
    /// The container was written by an incompatible format version.
    UnsupportedVersion {
        /// Version declared by the container.
        found: u16,
        /// The version this build reads and writes.
        expected: u16,
    },
    /// The input ended before the named structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        location: String,
    },
    /// A checksum did not match its frame's content.
    ChecksumMismatch {
        /// Which frame failed ("header", "section counter", …).
        location: String,
    },
    /// The container declares one section count in the header and a
    /// different one in the end frame.
    CountMismatch {
        /// Count in the header.
        header: u64,
        /// Count in the end frame.
        end: u64,
    },
    /// Two sections share a name; lookups would be ambiguous.
    DuplicateSection {
        /// The repeated name.
        name: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The name that was looked up.
        name: String,
    },
    /// A section body failed to decode.
    State(StateError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "not a .nsck snapshot (magic {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported {expected} \
                 (re-checkpoint with this build)"
            ),
            SnapshotError::Truncated { location } => {
                write!(f, "snapshot ends early while reading {location}")
            }
            SnapshotError::ChecksumMismatch { location } => {
                write!(f, "snapshot checksum mismatch in {location}")
            }
            SnapshotError::CountMismatch { header, end } => write!(
                f,
                "snapshot header declares {header} sections but the end frame counted {end}"
            ),
            SnapshotError::DuplicateSection { name } => {
                write!(f, "snapshot section {name:?} appears more than once")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot has no {name:?} section")
            }
            SnapshotError::State(error) => write!(f, "snapshot section state: {error}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<StateError> for SnapshotError {
    fn from(error: StateError) -> Self {
        SnapshotError::State(error)
    }
}

/// An in-memory `.nsck` container: an ordered list of named byte sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named section; names must be unique within a container.
    pub fn push(&mut self, name: &str, body: Vec<u8>) -> Result<(), SnapshotError> {
        if self.sections.iter().any(|(existing, _)| existing == name) {
            return Err(SnapshotError::DuplicateSection { name: name.to_string() });
        }
        self.sections.push((name.to_string(), body));
        Ok(())
    }

    /// Looks a section body up by name.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, body)| body.as_slice())
            .ok_or_else(|| SnapshotError::MissingSection { name: name.to_string() })
    }

    /// The section names, in container order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// Encodes the container. Encoding is canonical: the same sections in
    /// the same order produce the same bytes, which is what makes
    /// save→load→save byte-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Header: 16 fixed bytes + their FNV checksum.
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&out[..16]);
        out.extend_from_slice(&fnv.finish().to_le_bytes());

        for (name, body) in &self.sections {
            let frame_start = out.len();
            out.push(FRAME_SECTION);
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let metadata_len = out.len() - frame_start;
            out.extend_from_slice(body);
            let checksum = section_checksum(&out[frame_start..frame_start + metadata_len], body);
            out.extend_from_slice(&checksum.to_le_bytes());
        }

        // End frame: kind + count + FNV checksum, like the `.nstr` end frame.
        let end_start = out.len();
        out.push(FRAME_END);
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&out[end_start..end_start + 9]);
        out.extend_from_slice(&fnv.finish().to_le_bytes());
        out
    }

    /// Decodes a container, verifying every checksum.
    ///
    /// The magic is validated before anything else — truncated input that
    /// is not a `.nsck` file at all reports [`SnapshotError::BadMagic`],
    /// never a confusing `Truncated`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        validate_magic(bytes)?;
        let mut cursor = Cursor { buf: bytes, pos: 0 };
        let fixed = cursor.take(16, "header")?;
        let version = u16::from_le_bytes([fixed[4], fixed[5]]);
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let declared_sections = le_u64(&fixed[8..16]);
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(fixed);
        if fnv.finish() != cursor.u64("header checksum")? {
            return Err(SnapshotError::ChecksumMismatch { location: "header".into() });
        }

        let mut snapshot = Snapshot::new();
        loop {
            let frame_start = cursor.pos;
            match cursor.u8("frame kind")? {
                FRAME_END => {
                    let declared_end = cursor.u64("end frame")?;
                    let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
                    fnv.write(&bytes[frame_start..frame_start + 9]);
                    if fnv.finish() != cursor.u64("end frame checksum")? {
                        return Err(SnapshotError::ChecksumMismatch {
                            location: "end frame".into(),
                        });
                    }
                    if declared_end != declared_sections
                        || snapshot.sections.len() as u64 != declared_sections
                    {
                        return Err(SnapshotError::CountMismatch {
                            header: declared_sections,
                            end: declared_end,
                        });
                    }
                    if cursor.remaining() != 0 {
                        return Err(SnapshotError::Truncated {
                            location: format!(
                                "nothing ({} trailing bytes after the end frame)",
                                cursor.remaining()
                            ),
                        });
                    }
                    return Ok(snapshot);
                }
                FRAME_SECTION => {
                    let index = snapshot.sections.len();
                    let name_len = cursor.usize(&format!("section {index} name length"))?;
                    let body_len = cursor.usize(&format!("section {index} body length"))?;
                    let name_bytes = cursor.take(name_len, &format!("section {index} name"))?;
                    let metadata_end = cursor.pos;
                    let name = std::str::from_utf8(name_bytes)
                        .map_err(|_| {
                            SnapshotError::State(StateError::corrupt(format!(
                                "section {index} name is not UTF-8"
                            )))
                        })?
                        .to_string();
                    let body = cursor.take(body_len, &format!("section {name:?} body"))?;
                    let declared = cursor.u64(&format!("section {name:?} checksum"))?;
                    if section_checksum(&bytes[frame_start..metadata_end], body) != declared {
                        return Err(SnapshotError::ChecksumMismatch {
                            location: format!("section {name:?}"),
                        });
                    }
                    snapshot.push(&name, body.to_vec())?;
                }
                other => {
                    return Err(SnapshotError::State(StateError::corrupt(format!(
                        "unknown frame kind {other}"
                    ))))
                }
            }
        }
    }
}

/// Section checksum: fixed metadata through the byte-serial FNV, the bulk
/// body through the word-parallel [`hash_block`], halves folded by
/// [`mix64`] — the `.nstr` v2 frame-checksum construction.
fn section_checksum(metadata: &[u8], body: &[u8]) -> u64 {
    let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
    fnv.write(metadata);
    mix64(fnv.finish() ^ hash_block(body, CHECKSUM_SEED))
}

/// Magic check over whatever prefix exists: a wrong prefix is `BadMagic`
/// even when the input is also too short, so garbage input is never
/// misreported as a truncated snapshot.
fn validate_magic(bytes: &[u8]) -> Result<(), SnapshotError> {
    let prefix_len = bytes.len().min(4);
    if bytes[..prefix_len] != SNAPSHOT_MAGIC[..prefix_len] {
        let mut found = [0u8; 4];
        found[..prefix_len].copy_from_slice(&bytes[..prefix_len]);
        return Err(SnapshotError::BadMagic { found });
    }
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated { location: "magic".into() });
    }
    Ok(())
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(bytes);
    u64::from_le_bytes(word)
}

/// Bounds-checked reader with located truncation errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize, location: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < len {
            return Err(SnapshotError::Truncated { location: location.to_string() });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u8(&mut self, location: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, location)?[0])
    }

    fn u64(&mut self, location: &str) -> Result<u64, SnapshotError> {
        Ok(le_u64(self.take(8, location)?))
    }

    fn usize(&mut self, location: &str) -> Result<usize, SnapshotError> {
        let v = self.u64(location)?;
        usize::try_from(v).map_err(|_| {
            SnapshotError::State(StateError::corrupt(format!("{location} {v} overflows usize")))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snapshot = Snapshot::new();
        snapshot.push("config", vec![1, 2, 3, 4]).expect("unique");
        snapshot.push("monitor", (0..200u16).flat_map(u16::to_le_bytes).collect()).expect("unique");
        snapshot.push("empty", Vec::new()).expect("unique");
        snapshot
    }

    #[test]
    fn round_trips_preserving_order_and_bodies() {
        let snapshot = sample();
        let bytes = snapshot.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.section_names(), vec!["config", "monitor", "empty"]);
        assert_eq!(decoded.section("config").expect("present"), &[1, 2, 3, 4]);
        assert!(matches!(
            decoded.section("nope").unwrap_err(),
            SnapshotError::MissingSection { name } if name == "nope"
        ));
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
        let reencoded = Snapshot::from_bytes(&sample().to_bytes()).expect("decode").to_bytes();
        assert_eq!(reencoded, sample().to_bytes(), "load → save must be byte-identical");
    }

    #[test]
    fn duplicate_sections_are_rejected_at_push_time() {
        let mut snapshot = sample();
        assert!(matches!(
            snapshot.push("config", vec![9]).unwrap_err(),
            SnapshotError::DuplicateSection { name } if name == "config"
        ));
    }

    #[test]
    fn wrong_magic_wins_over_truncation() {
        // A short non-.nsck prefix is BadMagic, not Truncated.
        let err = Snapshot::from_bytes(b"NS").unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "matching prefix truncates: {err}");
        let err = Snapshot::from_bytes(b"XY").unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic { .. }), "wrong prefix is BadMagic: {err}");
        let err = Snapshot::from_bytes(b"NSTRxxxx").unwrap_err();
        assert_eq!(err, SnapshotError::BadMagic { found: *b"NSTR" });
        // A valid magic with nothing behind it truncates at the header.
        let err = Snapshot::from_bytes(b"NSCK").unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { location } if location == "header"));
    }

    #[test]
    fn version_skew_reports_found_and_expected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99; // version low byte
                       // Fix the header checksum so the version check is what fires.
        let mut fnv = IncrementalFnv::new(CHECKSUM_SEED);
        fnv.write(&bytes[..16]);
        bytes[16..24].copy_from_slice(&fnv.finish().to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::UnsupportedVersion { found: 99, expected: SNAPSHOT_FORMAT_VERSION }
        );
        let message = err.to_string();
        assert!(message.contains("99") && message.contains('1'), "{message}");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let pristine = sample().to_bytes();
        for index in 0..pristine.len() {
            for bit in 0..8 {
                let mut corrupted = pristine.clone();
                corrupted[index] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&corrupted).is_err(),
                    "flipping bit {bit} of byte {index} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_errors_and_magic_order_holds() {
        let pristine = sample().to_bytes();
        for len in 0..pristine.len() {
            let err = Snapshot::from_bytes(&pristine[..len]).unwrap_err();
            if len < 4 {
                // Still inside the magic: a matching prefix truncates.
                assert!(matches!(err, SnapshotError::Truncated { .. }), "len {len}: {err}");
            } else {
                assert!(
                    matches!(err, SnapshotError::Truncated { .. }),
                    "len {len} must truncate, got {err}"
                );
            }
        }
    }
}
