//! The long-running daemon: a [`Monitor`] wrapped in a service loop with a
//! control channel and `.nsck` checkpoint/restore.
//!
//! # Determinism contract
//!
//! The daemon extends the repo-wide contract (DESIGN.md) to long-running,
//! administered runs:
//!
//! * **Commands land on bin boundaries, in arrival order.** [`Daemon::tick`]
//!   drains the control queue before the first batch and between batches,
//!   never mid-batch. Two runs that observe the same command sequence at the
//!   same bin positions produce bit-identical digests — at any worker count.
//! * **A checkpoint is a pure function of the run so far.** The `.nsck`
//!   bytes capture the essential state (RNG positions, predictor histories,
//!   query state, digest stream positions, bins ingested) and none of the
//!   derivable state (thread pools, scratch buffers, worker count).
//!   [`Daemon::restore`] + the remaining batches therefore produce the exact
//!   digests of the uninterrupted run, whether the restored process runs 1
//!   worker or 8.
//!
//! # Quickstart
//!
//! ```
//! use netshed_monitor::{Monitor, Strategy, AllocationPolicy};
//! use netshed_queries::{QueryKind, QuerySpec};
//! use netshed_service::{Daemon, TickStatus};
//! use netshed_trace::{PacketSourceExt, TraceConfig, TraceGenerator};
//!
//! let monitor = Monitor::builder().capacity(1e7).build().unwrap();
//! let source = TraceGenerator::new(TraceConfig::default()).take_batches(32);
//! let (mut daemon, control) = Daemon::new(monitor, source);
//!
//! // Register a tenant query; the command applies at the next bin boundary.
//! let pending = control.register_query(QuerySpec::new(QueryKind::Counter));
//! while let TickStatus::Progressed { .. } = daemon.tick().unwrap() {}
//! let id = pending.wait().unwrap();
//! assert_eq!(daemon.monitor().query_handles(), vec![(id, "counter")]);
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};

use netshed_monitor::{
    DigestObserver, Monitor, MonitorConfig, NetshedError, PredictorKind, QueryId, RunDigest,
    RunObserver, Strategy,
};
use netshed_queries::QuerySpec;
use netshed_sketch::{StateError, StateReader, StateWriter};
use netshed_trace::PacketSource;

use crate::engine::MonitorEngine;
use crate::snapshot::{Snapshot, SnapshotError};

/// Default number of non-empty bins one [`Daemon::tick`] processes.
pub const DEFAULT_BINS_PER_TICK: u64 = 64;

/// Names of the service-plane `.nsck` sections every daemon checkpoint
/// carries; the hosted engine contributes its own sections between `config`
/// and `daemon` (`monitor` for a solo run, `shard.{i}` + `sharded` for a
/// fleet).
const SECTION_CONFIG: &str = "config";
const SECTION_DAEMON: &str = "daemon";
const SECTION_DIGEST: &str = "digest";

/// Errors surfaced by the service plane.
#[derive(Debug)]
pub enum ServiceError {
    /// The wrapped monitor rejected an operation.
    Monitor(NetshedError),
    /// A `.nsck` container failed to encode or decode.
    Snapshot(SnapshotError),
    /// The daemon hung up before answering (it was dropped or shut down
    /// before the command was applied).
    ChannelClosed,
    /// On restore, the replacement source ran out before reaching the
    /// checkpointed position.
    SourceTooShort {
        /// Bins the checkpoint had already consumed.
        needed: u64,
        /// Bins the replacement source could actually provide.
        skipped: u64,
    },
    /// The snapshot names a control policy that is not one of the built-in
    /// strategies, so the restoring process cannot reconstruct it.
    UnknownPolicy(String),
    /// The snapshot names a predictor kind this build does not know.
    UnknownPredictor(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Monitor(error) => write!(f, "monitor: {error}"),
            ServiceError::Snapshot(error) => write!(f, "snapshot: {error}"),
            ServiceError::ChannelClosed => {
                write!(f, "the daemon hung up before answering the command")
            }
            ServiceError::SourceTooShort { needed, skipped } => write!(
                f,
                "restore source exhausted after {skipped} bins but the checkpoint \
                 was taken {needed} bins in"
            ),
            ServiceError::UnknownPolicy(name) => write!(
                f,
                "snapshot policy {name:?} is not a built-in strategy; restore cannot rebuild it"
            ),
            ServiceError::UnknownPredictor(name) => {
                write!(f, "snapshot predictor {name:?} is not a known kind")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<NetshedError> for ServiceError {
    fn from(error: NetshedError) -> Self {
        ServiceError::Monitor(error)
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(error: SnapshotError) -> Self {
        ServiceError::Snapshot(error)
    }
}

impl From<StateError> for ServiceError {
    fn from(error: StateError) -> Self {
        ServiceError::Snapshot(SnapshotError::State(error))
    }
}

/// What one [`Daemon::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickStatus {
    /// The tick processed `bins` non-empty bins and the source has more.
    Progressed {
        /// Non-empty bins processed this tick (empty bins are skipped for
        /// free and not counted here).
        bins: u64,
    },
    /// The source is exhausted; the final measurement interval (if one was
    /// open) has been flushed into the digest. Commands are still served.
    SourceExhausted,
    /// A [`Shutdown`](ControlChannel::shutdown) command was applied; the
    /// daemon stops processing bins and serving commands.
    ShutdownRequested,
}

/// A command travelling from a [`ControlChannel`] to its daemon. Applied
/// only at bin boundaries, in arrival order.
enum Command {
    RegisterQuery { spec: QuerySpec, reply: Sender<Result<QueryId, ServiceError>> },
    DeregisterQuery { id: QueryId, reply: Sender<Result<(), ServiceError>> },
    SwapPolicy { strategy: Strategy, reply: Sender<Result<String, ServiceError>> },
    Checkpoint { reply: Sender<Result<Vec<u8>, ServiceError>> },
    Shutdown { reply: Sender<Result<RunDigest, ServiceError>> },
}

/// The answer to a control command, redeemable once the daemon has reached
/// the next bin boundary (i.e. after a subsequent [`Daemon::tick`]).
#[derive(Debug)]
pub struct Pending<T> {
    rx: Receiver<Result<T, ServiceError>>,
}

impl<T> Pending<T> {
    /// Blocks until the daemon has applied the command and returns its
    /// reply. Errors with [`ServiceError::ChannelClosed`] when the daemon
    /// was dropped or shut down before applying it.
    pub fn wait(self) -> Result<T, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::ChannelClosed)?
    }

    /// Non-blocking probe: `Some` once the reply is in.
    pub fn poll(&self) -> Option<Result<T, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// A clonable handle for administering a running [`Daemon`] — the
/// multi-tenant face of the service plane. Every tenant holds a clone;
/// commands from all clones funnel into one queue and apply in arrival
/// order at bin boundaries, which is what keeps administered runs
/// replayable.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    tx: Sender<Command>,
}

impl ControlChannel {
    fn send<T>(&self, make: impl FnOnce(Sender<Result<T, ServiceError>>) -> Command) -> Pending<T> {
        let (reply, rx) = channel();
        // A send failure means the daemon is gone; the error surfaces as
        // ChannelClosed when the caller waits on the pending reply.
        let _ = self.tx.send(make(reply));
        Pending { rx }
    }

    /// Registers a query described by `spec` at the next bin boundary,
    /// yielding its stable [`QueryId`].
    pub fn register_query(&self, spec: QuerySpec) -> Pending<QueryId> {
        self.send(|reply| Command::RegisterQuery { spec, reply })
    }

    /// Deregisters a query by handle at the next bin boundary.
    pub fn deregister_query(&self, id: QueryId) -> Pending<()> {
        self.send(|reply| Command::DeregisterQuery { id, reply })
    }

    /// Swaps the control-plane policy at the next bin boundary, yielding the
    /// name of the newly installed policy.
    pub fn swap_policy(&self, strategy: Strategy) -> Pending<String> {
        self.send(|reply| Command::SwapPolicy { strategy, reply })
    }

    /// Takes a `.nsck` checkpoint at the next bin boundary, yielding the
    /// encoded container bytes.
    pub fn checkpoint(&self) -> Pending<Vec<u8>> {
        self.send(|reply| Command::Checkpoint { reply })
    }

    /// Stops the daemon at the next bin boundary: the open measurement
    /// interval is flushed, and the reply carries the final [`RunDigest`].
    /// Commands queued behind the shutdown are never applied; their waiters
    /// see [`ServiceError::ChannelClosed`].
    pub fn shutdown(&self) -> Pending<RunDigest> {
        self.send(|reply| Command::Shutdown { reply })
    }
}

/// A long-running monitoring service: a [`Monitor`] fed from a
/// [`PacketSource`], advanced a bounded number of bins per [`tick`]
/// (Daemon::tick), administered through a [`ControlChannel`] and
/// checkpointable to the `.nsck` format.
pub struct Daemon<S, M = Monitor> {
    monitor: M,
    source: S,
    digest: DigestObserver,
    commands: Receiver<Command>,
    handle: Sender<Command>,
    /// Batches pulled from the source so far, empty bins included — the
    /// replay cursor a restore fast-forwards a fresh source to.
    bins_ingested: u64,
    bins_per_tick: u64,
    shutdown: bool,
}

impl<S: PacketSource, M: MonitorEngine> Daemon<S, M> {
    /// Wraps an engine — a solo [`Monitor`] or a
    /// [`ShardedMonitor`](netshed_monitor::ShardedMonitor) fleet — and a
    /// source into a daemon, returning the control handle for it. The engine
    /// may already have queries registered (builder-style) or start empty
    /// and be populated through the channel — both paths produce identical
    /// state for identical registration order.
    pub fn new(monitor: M, source: S) -> (Self, ControlChannel) {
        let (tx, rx) = channel();
        let daemon = Daemon {
            monitor,
            source,
            digest: DigestObserver::new(),
            commands: rx,
            handle: tx.clone(),
            bins_ingested: 0,
            bins_per_tick: DEFAULT_BINS_PER_TICK,
            shutdown: false,
        };
        (daemon, ControlChannel { tx })
    }

    /// Sets how many non-empty bins one [`Daemon::tick`] processes.
    pub fn with_bins_per_tick(mut self, bins: u64) -> Self {
        self.bins_per_tick = bins.max(1);
        self
    }

    /// Mints another control handle (equivalent to cloning the one returned
    /// by [`Daemon::new`]).
    pub fn control(&self) -> ControlChannel {
        ControlChannel { tx: self.handle.clone() }
    }

    /// The wrapped engine.
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// The run fingerprint accumulated so far.
    pub fn digest(&self) -> RunDigest {
        self.digest.digest()
    }

    /// Batches consumed from the source so far, empty bins included.
    pub fn bins_ingested(&self) -> u64 {
        self.bins_ingested
    }

    /// Advances the service loop: applies queued commands (at bin
    /// boundaries, in arrival order), then processes up to the configured
    /// number of non-empty bins, mirroring [`Monitor::run`]'s observer
    /// sequence exactly.
    pub fn tick(&mut self) -> Result<TickStatus, ServiceError> {
        let mut bins = 0u64;
        loop {
            self.drain_commands();
            if self.shutdown {
                return Ok(TickStatus::ShutdownRequested);
            }
            if bins >= self.bins_per_tick {
                return Ok(TickStatus::Progressed { bins });
            }
            let Some(batch) = self.source.next_batch() else {
                if self.monitor.interval_open() {
                    let outputs = self.monitor.finish_interval();
                    self.digest.on_interval(&outputs);
                }
                return Ok(TickStatus::SourceExhausted);
            };
            self.bins_ingested += 1;
            if batch.is_empty() {
                // A quiet bin carries no work; it still advances the replay
                // cursor and still opens a command window.
                continue;
            }
            self.monitor.ingest(&batch, &mut self.digest)?;
            bins += 1;
        }
    }

    /// Runs [`tick`](Daemon::tick) until the source is exhausted or a
    /// shutdown is requested, returning the final status.
    pub fn run_to_exhaustion(&mut self) -> Result<TickStatus, ServiceError> {
        loop {
            let status = self.tick()?;
            if !matches!(status, TickStatus::Progressed { .. }) {
                return Ok(status);
            }
        }
    }

    fn drain_commands(&mut self) {
        if self.shutdown {
            // A post-shutdown tick must not revive the command loop:
            // anything still queued stays unapplied and resolves to
            // ChannelClosed once the daemon is dropped.
            return;
        }
        while let Ok(command) = self.commands.try_recv() {
            match command {
                Command::RegisterQuery { spec, reply } => {
                    let result = self.monitor.register(&spec).map_err(ServiceError::from);
                    let _ = reply.send(result);
                }
                Command::DeregisterQuery { id, reply } => {
                    let result = self.monitor.deregister(id).map_err(ServiceError::from);
                    let _ = reply.send(result);
                }
                Command::SwapPolicy { strategy, reply } => {
                    self.monitor.set_strategy(strategy);
                    let _ = reply.send(Ok(self.monitor.policy_name()));
                }
                Command::Checkpoint { reply } => {
                    let _ = reply.send(self.checkpoint());
                }
                Command::Shutdown { reply } => {
                    if self.monitor.interval_open() {
                        let outputs = self.monitor.finish_interval();
                        self.digest.on_interval(&outputs);
                    }
                    self.shutdown = true;
                    let _ = reply.send(Ok(self.digest.digest()));
                    // Commands queued behind the shutdown are dropped; their
                    // reply senders go with them, so waiters observe
                    // ChannelClosed rather than silence.
                    return;
                }
            }
        }
    }

    /// Encodes the daemon's essential state as a `.nsck` container.
    ///
    /// The snapshot captures the run, not the machine: worker count, thread
    /// pools and scratch buffers are absent, so a checkpoint taken by an
    /// 8-worker daemon restores into a 1-worker one (and vice versa) with
    /// bit-identical remaining digests.
    pub fn checkpoint(&self) -> Result<Vec<u8>, ServiceError> {
        let config = self.monitor.config();
        let mut snapshot = Snapshot::new();

        let mut section = StateWriter::new();
        section.u64(config.seed);
        section.f64(config.capacity_cycles_per_bin);
        section.u64(config.time_bin_us);
        section.u64(config.measurement_interval_us);
        section.str(&self.monitor.policy_name());
        section.str(config.predictor.name());
        snapshot.push(SECTION_CONFIG, section.into_bytes())?;

        self.monitor.save_sections(&mut snapshot)?;

        let mut section = StateWriter::new();
        section.u64(self.bins_ingested);
        snapshot.push(SECTION_DAEMON, section.into_bytes())?;

        let mut section = StateWriter::new();
        self.digest.save_state(&mut section);
        snapshot.push(SECTION_DIGEST, section.into_bytes())?;

        Ok(snapshot.to_bytes())
    }

    /// Rebuilds a daemon from a `.nsck` checkpoint and a fresh source.
    ///
    /// `config` must describe the same run the checkpoint was taken from
    /// (same seed, capacity, bin geometry, predictor); the snapshot's config
    /// section is cross-checked field by field and a mismatch names both
    /// sides. The worker count is deliberately *not* checked — it is a
    /// wall-clock knob, and restoring at a different count is supported and
    /// tested. `source` must replay the same stream from the beginning; it
    /// is fast-forwarded past the bins the checkpoint already consumed
    /// (O(1) for [`BatchReplay`](netshed_trace::BatchReplay)).
    pub fn restore_engine(
        config: MonitorConfig,
        mut source: S,
        bytes: &[u8],
    ) -> Result<(Self, ControlChannel), ServiceError> {
        let snapshot = Snapshot::from_bytes(bytes)?;

        let mut section = StateReader::new(snapshot.section(SECTION_CONFIG)?);
        check_u64("seed", section.u64()?, config.seed)?;
        check_f64("capacity_cycles_per_bin", section.f64()?, config.capacity_cycles_per_bin)?;
        check_u64("time_bin_us", section.u64()?, config.time_bin_us)?;
        check_u64("measurement_interval_us", section.u64()?, config.measurement_interval_us)?;
        let policy_name = section.str()?;
        let predictor_name = section.str()?;
        section.finish()?;
        let predictor = PredictorKind::from_name(&predictor_name)
            .ok_or_else(|| ServiceError::UnknownPredictor(predictor_name.clone()))?;
        if predictor != config.predictor {
            return Err(StateError::mismatch(
                "predictor kind",
                predictor_name,
                config.predictor.name(),
            )
            .into());
        }
        let strategy = Strategy::from_name(&policy_name)
            .ok_or_else(|| ServiceError::UnknownPolicy(policy_name.clone()))?;

        let mut monitor = M::from_config(config)?;
        // The active policy may differ from the configured strategy if the
        // run saw a SwapPolicy; install the snapshot's before loading state
        // so shadow reconstruction follows the right policy.
        monitor.set_strategy(strategy);
        monitor.load_sections(&snapshot)?;

        let mut section = StateReader::new(snapshot.section(SECTION_DAEMON)?);
        let bins_ingested = section.u64()?;
        section.finish()?;

        let mut digest = DigestObserver::new();
        let mut section = StateReader::new(snapshot.section(SECTION_DIGEST)?);
        digest.load_state(&mut section)?;
        section.finish()?;

        let skipped = source.skip_batches(bins_ingested);
        if skipped < bins_ingested {
            return Err(ServiceError::SourceTooShort { needed: bins_ingested, skipped });
        }

        let (tx, rx) = channel();
        let daemon = Daemon {
            monitor,
            source,
            digest,
            commands: rx,
            handle: tx.clone(),
            bins_ingested,
            bins_per_tick: DEFAULT_BINS_PER_TICK,
            shutdown: false,
        };
        Ok((daemon, ControlChannel { tx }))
    }
}

impl<S: PacketSource> Daemon<S> {
    /// Rebuilds a solo-monitor daemon from a `.nsck` checkpoint — the common
    /// case, kept monomorphic so call sites need no engine annotation. Fleet
    /// checkpoints restore through
    /// [`restore_engine`](Daemon::restore_engine) with
    /// `Daemon::<_, ShardedMonitor>` spelled out.
    pub fn restore(
        config: MonitorConfig,
        source: S,
        bytes: &[u8],
    ) -> Result<(Self, ControlChannel), ServiceError> {
        Self::restore_engine(config, source, bytes)
    }
}

fn check_u64(what: &str, found: u64, expected: u64) -> Result<(), ServiceError> {
    if found != expected {
        return Err(StateError::mismatch(what, found, expected).into());
    }
    Ok(())
}

fn check_f64(what: &str, found: f64, expected: f64) -> Result<(), ServiceError> {
    if found.to_bits() != expected.to_bits() {
        return Err(StateError::mismatch(what, found, expected).into());
    }
    Ok(())
}
