//! netshed-service: the service plane.
//!
//! Everything below `netshed-monitor` answers "what does one run compute?".
//! This crate answers "how does that computation live as a *service*?" — a
//! [`Daemon`] owns a [`Monitor`](netshed_monitor::Monitor), ingests from a
//! [`PacketSource`](netshed_trace::PacketSource) indefinitely, and is
//! administered by multiple tenants through a clonable [`ControlChannel`]:
//!
//! * **Live registry** — queries register and deregister mid-run through
//!   [`ControlChannel::register_query`] / [`deregister_query`]
//!   (ControlChannel::deregister_query); the control policy itself can be
//!   swapped hot ([`ControlChannel::swap_policy`]). Commands apply only at
//!   bin boundaries, in arrival order, which keeps administered runs exactly
//!   replayable.
//! * **Checkpoint/restore** — [`Daemon::checkpoint`] serialises the
//!   essential state into the versioned, checksummed [`.nsck`
//!   format](Snapshot); [`Daemon::restore`] resumes the run in a fresh
//!   process with bit-identical remaining digests, at any worker count.
//!
//! The determinism contract, the `.nsck` layout and the essential-state
//! inventory are documented in DESIGN.md, section "Service plane".

#![forbid(unsafe_code)]

pub mod daemon;
pub mod engine;
pub mod snapshot;

pub use daemon::{
    ControlChannel, Daemon, Pending, ServiceError, TickStatus, DEFAULT_BINS_PER_TICK,
};
pub use engine::MonitorEngine;
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
