//! Insertion-ordered deterministic hash containers.
//!
//! `std::collections::HashMap` — even with a fixed hasher — iterates in an
//! order that depends on its internal table layout (capacity growth history,
//! probe displacement), which cannot be reconstructed from a serialized list
//! of entries. That breaks the checkpoint/restore contract: query state
//! tables are folded and ranked in iteration order at interval boundaries,
//! so a restored run must iterate *exactly* like the uninterrupted one.
//!
//! [`DetHashMap`] and [`DetHashSet`] therefore keep their entries in a plain
//! `Vec` in **insertion order** and maintain a separate open-addressed hash
//! index (seeded with [`DetHasher`](crate::hash::DetHasher)) for O(1)
//! lookup. Iteration walks the entry vector, so the order is a pure function
//! of the insertion history: re-inserting a map's entries in iteration order
//! reproduces a map with identical iteration order — which is precisely what
//! `.nsck` snapshot restore does.
//!
//! The API mirrors the subset of `std::collections::HashMap` the query state
//! tables use (`entry`, `get`, `insert`, `values`, `drain`, `clear`), with
//! this module's own [`Entry`] type standing in for
//! `std::collections::hash_map::Entry`. Removal of individual keys is
//! deliberately unsupported: the monitor's tables only ever grow within an
//! interval and are cleared at its end, and leaving removal out keeps every
//! entry index stable.

use crate::hash::DetBuildHasher;
use std::hash::{BuildHasher, Hash};

/// Index slots hold `entry_index + 1`; 0 marks an empty slot.
const EMPTY: u64 = 0;

/// A deterministic, insertion-ordered hash map (see the module docs).
#[derive(Debug, Clone)]
pub struct DetHashMap<K, V> {
    entries: Vec<(K, V)>,
    /// Open-addressed index over `entries`, always a power of two in size.
    index: Vec<u64>,
    hasher: DetBuildHasher,
}

impl<K, V> Default for DetHashMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: PartialEq> PartialEq for DetHashMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<K, V> DetHashMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new(), index: Vec::new(), hasher: DetBuildHasher::default() }
    }

    /// Creates an empty map sized for `capacity` entries without reindexing.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut map = Self::new();
        map.entries.reserve(capacity);
        map.index = vec![EMPTY; index_size_for(capacity)];
        map
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates mutably over values in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.iter_mut().for_each(|slot| *slot = EMPTY);
    }

    /// Removes and yields every entry in insertion order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (K, V)> {
        self.index.iter_mut().for_each(|slot| *slot = EMPTY);
        self.entries.drain(..)
    }
}

impl<K: Hash + Eq, V> DetHashMap<K, V> {
    fn hash_key(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Finds the entry index for `key`, if present.
    fn find(&self, key: &K) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() as u64 - 1;
        let mut slot = (self.hash_key(key) & mask) as usize;
        loop {
            match self.index[slot] {
                EMPTY => return None,
                stored => {
                    let entry = (stored - 1) as usize;
                    if self.entries[entry].0 == *key {
                        return Some(entry);
                    }
                }
            }
            slot = ((slot as u64 + 1) & mask) as usize;
        }
    }

    /// Rebuilds the index for the current entry count (plus headroom).
    fn reindex(&mut self, capacity: usize) {
        self.index.clear();
        self.index.resize(index_size_for(capacity), EMPTY);
        let mask = self.index.len() as u64 - 1;
        for (position, (key, _)) in self.entries.iter().enumerate() {
            let mut slot = (self.hash_key(key) & mask) as usize;
            while self.index[slot] != EMPTY {
                slot = ((slot as u64 + 1) & mask) as usize;
            }
            self.index[slot] = position as u64 + 1;
        }
    }

    /// Appends a key known to be absent; grows the index as needed.
    fn push_new(&mut self, key: K, value: V) -> usize {
        if (self.entries.len() + 1) * 4 > self.index.len() * 3 {
            self.reindex(self.entries.len() + 1);
        }
        let mask = self.index.len() as u64 - 1;
        let mut slot = (self.hash_key(&key) & mask) as usize;
        while self.index[slot] != EMPTY {
            slot = ((slot as u64 + 1) & mask) as usize;
        }
        self.entries.push((key, value));
        self.index[slot] = self.entries.len() as u64;
        self.entries.len() - 1
    }

    /// Inserts a key-value pair, returning the previous value if the key was
    /// already present (the key keeps its original insertion position).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(entry) = self.find(&key) {
            Some(std::mem::replace(&mut self.entries[entry].1, value))
        } else {
            self.push_new(key, value);
            None
        }
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key).map(|entry| &self.entries[entry].1)
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find(key).map(|entry| &mut self.entries[entry].1)
    }

    /// Returns `true` when `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Looks up `key` for in-place manipulation (the deterministic stand-in
    /// for `std::collections::hash_map::Entry`).
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        match self.find(&key) {
            Some(entry) => Entry::Occupied(OccupiedEntry { map: self, entry }),
            None => Entry::Vacant(VacantEntry { map: self, key }),
        }
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for DetHashMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut map = Self::with_capacity(iter.size_hint().0);
        for (key, value) in iter {
            map.insert(key, value);
        }
        map
    }
}

/// Smallest power-of-two index size holding `entries` below ~75% load.
fn index_size_for(entries: usize) -> usize {
    let needed = entries.saturating_mul(4) / 3 + 1;
    needed.next_power_of_two().max(8)
}

/// A view into a single map slot, occupied or vacant.
pub enum Entry<'a, K, V> {
    /// The key is absent.
    Vacant(VacantEntry<'a, K, V>),
    /// The key is present.
    Occupied(OccupiedEntry<'a, K, V>),
}

impl<'a, K: Hash + Eq, V> Entry<'a, K, V> {
    /// Inserts `default` if the key is vacant; returns the value either way.
    pub fn or_insert(self, default: V) -> &'a mut V {
        match self {
            Entry::Vacant(vacant) => vacant.insert(default),
            Entry::Occupied(occupied) => occupied.into_mut(),
        }
    }

    /// Inserts `default()` if the key is vacant; returns the value either way.
    pub fn or_insert_with(self, default: impl FnOnce() -> V) -> &'a mut V {
        match self {
            Entry::Vacant(vacant) => vacant.insert(default()),
            Entry::Occupied(occupied) => occupied.into_mut(),
        }
    }
}

/// An [`Entry`] whose key is absent.
pub struct VacantEntry<'a, K, V> {
    map: &'a mut DetHashMap<K, V>,
    key: K,
}

impl<'a, K: Hash + Eq, V> VacantEntry<'a, K, V> {
    /// Inserts a value for the key and returns a reference to it.
    pub fn insert(self, value: V) -> &'a mut V {
        let entry = self.map.push_new(self.key, value);
        &mut self.map.entries[entry].1
    }

    /// The key that would be inserted.
    pub fn key(&self) -> &K {
        &self.key
    }
}

/// An [`Entry`] whose key is present.
pub struct OccupiedEntry<'a, K, V> {
    map: &'a mut DetHashMap<K, V>,
    entry: usize,
}

impl<'a, K, V> OccupiedEntry<'a, K, V> {
    /// A reference to the stored value.
    pub fn get(&self) -> &V {
        &self.map.entries[self.entry].1
    }

    /// A mutable reference to the stored value.
    pub fn get_mut(&mut self) -> &mut V {
        &mut self.map.entries[self.entry].1
    }

    /// Converts the entry into a mutable reference tied to the map.
    pub fn into_mut(self) -> &'a mut V {
        &mut self.map.entries[self.entry].1
    }

    /// Replaces the stored value, returning the previous one.
    pub fn insert(&mut self, value: V) -> V {
        std::mem::replace(&mut self.map.entries[self.entry].1, value)
    }
}

/// A deterministic, insertion-ordered hash set (see the module docs).
#[derive(Debug, Clone)]
pub struct DetHashSet<T> {
    map: DetHashMap<T, ()>,
}

impl<T> Default for DetHashSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Hash + Eq> PartialEq for DetHashSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T> DetHashSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { map: DetHashMap::new() }
    }

    /// Creates an empty set sized for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { map: DetHashMap::with_capacity(capacity) }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the set holds no items.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    /// Removes every item, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl<T: Hash + Eq> DetHashSet<T> {
    /// Inserts an item; returns `true` when it was not already present.
    pub fn insert(&mut self, item: T) -> bool {
        self.map.insert(item, ()).is_none()
    }

    /// Returns `true` when `item` is present.
    pub fn contains(&self, item: &T) -> bool {
        self.map.contains_key(item)
    }

    /// Removes and yields every item in insertion order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.map.drain().map(|(item, ())| item)
    }
}

impl<T: Hash + Eq> FromIterator<T> for DetHashSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_follows_insertion_order() {
        let mut map: DetHashMap<u64, u64> = DetHashMap::new();
        let keys: Vec<u64> = (0u64..1000).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect();
        for (position, &key) in keys.iter().enumerate() {
            map.insert(key, position as u64);
        }
        let seen: Vec<u64> = map.keys().copied().collect();
        assert_eq!(seen, keys);
        let values: Vec<u64> = map.values().copied().collect();
        assert_eq!(values, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn reinserting_entries_in_iteration_order_reproduces_the_order() {
        // The checkpoint/restore property: serialize = iterate, restore =
        // re-insert, and the restored map must iterate identically.
        let mut original: DetHashMap<u64, f64> = DetHashMap::new();
        for i in 0..5000u64 {
            original.insert(i.wrapping_mul(0x2545f4914f6cdd1d) ^ (i >> 3), i as f64 * 0.5);
        }
        let snapshot: Vec<(u64, f64)> = original.iter().map(|(k, v)| (*k, *v)).collect();
        let mut restored: DetHashMap<u64, f64> = DetHashMap::with_capacity(snapshot.len());
        for (k, v) in &snapshot {
            restored.insert(*k, *v);
        }
        let restored_entries: Vec<(u64, f64)> = restored.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(snapshot, restored_entries);
        // The order-sensitive fold the monitor relies on must agree bit-wise.
        let a: f64 = original.values().sum();
        let b: f64 = restored.values().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn insert_returns_previous_value_and_keeps_position() {
        let mut map = DetHashMap::new();
        assert_eq!(map.insert(1u64, "a"), None);
        assert_eq!(map.insert(2, "b"), None);
        assert_eq!(map.insert(1, "c"), Some("a"));
        assert_eq!(map.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(map.get(&1), Some(&"c"));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn entry_api_matches_std_semantics() {
        let mut map: DetHashMap<u32, u32> = DetHashMap::new();
        if let Entry::Vacant(vacant) = map.entry(7) {
            assert_eq!(*vacant.key(), 7);
            vacant.insert(1);
        } else {
            panic!("expected vacant");
        }
        match map.entry(7) {
            Entry::Occupied(mut occupied) => {
                assert_eq!(*occupied.get(), 1);
                *occupied.get_mut() += 10;
                assert_eq!(occupied.insert(99), 11);
            }
            Entry::Vacant(_) => panic!("expected occupied"),
        }
        *map.entry(8).or_insert(0) += 5;
        *map.entry(8).or_insert(0) += 5;
        assert_eq!(map.get(&8), Some(&10));
        assert_eq!(*map.entry(9).or_insert_with(|| 42), 42);
        assert_eq!(map.get(&7), Some(&99));
    }

    #[test]
    fn drain_yields_insertion_order_and_empties_the_map() {
        let mut map = DetHashMap::new();
        for i in (0..100u64).rev() {
            map.insert(i, i * 2);
        }
        let drained: Vec<(u64, u64)> = map.drain().collect();
        assert_eq!(drained.first(), Some(&(99, 198)));
        assert_eq!(drained.len(), 100);
        assert!(map.is_empty());
        // The map is fully reusable after a drain.
        map.insert(5, 1);
        assert_eq!(map.get(&5), Some(&1));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn clear_resets_lookup_state() {
        let mut map = DetHashMap::new();
        for i in 0..50u64 {
            map.insert(i, i);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(&10), None);
        for i in 0..50u64 {
            map.insert(i, i + 1);
        }
        assert_eq!(map.get(&10), Some(&11));
    }

    #[test]
    fn set_tracks_membership_in_insertion_order() {
        let mut set = DetHashSet::new();
        assert!(set.insert(3u64));
        assert!(set.insert(1));
        assert!(!set.insert(3));
        assert!(set.contains(&1));
        assert!(!set.contains(&2));
        assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![3, 1]);
        let drained: Vec<u64> = set.drain().collect();
        assert_eq!(drained, vec![3, 1]);
        assert!(set.is_empty());
        assert!(set.insert(3));
    }

    #[test]
    fn tuple_and_composite_keys_work() {
        let mut map: DetHashMap<(u32, u8), f64> = DetHashMap::new();
        *map.entry((0x0a000000, 8)).or_insert(0.0) += 1.5;
        *map.entry((0x0a000000, 16)).or_insert(0.0) += 2.5;
        *map.entry((0x0a000000, 8)).or_insert(0.0) += 1.0;
        assert_eq!(map.get(&(0x0a000000, 8)), Some(&2.5));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn growth_keeps_all_entries_reachable() {
        let mut map = DetHashMap::with_capacity(4);
        for i in 0..10_000u64 {
            map.insert(i ^ 0xdead, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(map.get(&(i ^ 0xdead)), Some(&i), "lost key {i}");
        }
    }
}
