//! A standard Bloom filter.
//!
//! Some of the monitoring queries maintain membership state (for example the
//! `super-sources` query needs to know whether a (source, destination) pair
//! was already counted towards a fan-out). The paper lists Bloom filters
//! among the data structures used by the plug-in modules (Section 2.2); this
//! implementation uses double hashing to derive the `k` probe positions from
//! two 64-bit hashes.

use crate::hash::{hash_bytes, mix64};

/// A Bloom filter over arbitrary byte-slice keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `num_hashes` probes per key.
    pub fn new(num_bits: usize, num_hashes: u32) -> Self {
        let num_bits = num_bits.max(64).next_multiple_of(64);
        Self {
            bits: vec![0; num_bits / 64],
            num_bits: num_bits as u64,
            num_hashes: num_hashes.max(1),
            inserted: 0,
        }
    }

    /// Creates a filter dimensioned for `expected_items` at roughly the given
    /// false-positive rate.
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> Self {
        let rate = false_positive_rate.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let bits = (-(expected_items.max(1) as f64) * rate.ln() / (ln2 * ln2)).ceil() as usize;
        let hashes = ((bits as f64 / expected_items.max(1) as f64) * ln2).round().max(1.0) as u32;
        Self::new(bits, hashes.min(16))
    }

    /// Number of keys inserted so far (counting duplicates).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Inserts a key. Returns `true` if the key was (probably) not present.
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let (h1, h2) = Self::base_hashes(key);
        let mut newly_set = false;
        for i in 0..self.num_hashes {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                newly_set = true;
            }
        }
        self.inserted += 1;
        newly_set
    }

    /// Returns `true` if the key may have been inserted (false positives are
    /// possible, false negatives are not).
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::base_hashes(key);
        (0..self.num_hashes).all(|i| {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    fn base_hashes(key: &[u8]) -> (u64, u64) {
        let h1 = hash_bytes(key, 0x9e3779b97f4a7c15);
        let h2 = mix64(h1) | 1;
        (h1, h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000u32 {
            bf.insert(&i.to_be_bytes());
        }
        for i in 0..1000u32 {
            assert!(bf.contains(&i.to_be_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_roughly_as_configured() {
        let mut bf = BloomFilter::with_rate(5000, 0.01);
        for i in 0..5000u32 {
            bf.insert(&i.to_be_bytes());
        }
        let fp = (5000..25000u32).filter(|i| bf.contains(&i.to_be_bytes())).count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.05, "false positive rate {rate} too high");
    }

    #[test]
    fn clear_empties_filter() {
        let mut bf = BloomFilter::new(1024, 4);
        bf.insert(b"hello");
        assert!(bf.contains(b"hello"));
        bf.clear();
        assert!(!bf.contains(b"hello"));
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn insert_reports_novelty() {
        let mut bf = BloomFilter::new(4096, 4);
        assert!(bf.insert(b"a"));
        assert!(!bf.insert(b"a"));
    }
}
