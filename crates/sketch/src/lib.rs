//! Counting sketches and hash families used by the feature extractor and the
//! flow sampler.
//!
//! The paper's feature extraction (Section 3.2.1) counts *unique* and *new*
//! items per traffic aggregate using the multi-resolution bitmaps of Estan,
//! Varghese and Fisk, because they bound the number of memory accesses per
//! packet and keep the per-batch cost deterministic. Flow sampling (Section
//! 4.2) maps the 5-tuple through a randomly drawn H3 hash function to a value
//! in `[0, 1)` and keeps the flow if the value is below the sampling rate.
//!
//! This crate provides:
//!
//! * [`LinearCounting`] — a single bitmap distinct counter,
//! * [`MultiResolutionBitmap`] — the multi-tier bitmap used for the
//!   unique/new feature counters,
//! * [`BloomFilter`] — membership sketch (used by some queries),
//! * [`H3Hasher`] — per-measurement-interval randomized hash of flow keys to
//!   `[0, 1)` used by flowwise sampling,
//! * [`mix64`] / [`hash_bytes`] — the cheap deterministic mixers shared by
//!   the sketches.

#![forbid(unsafe_code)]

pub mod bitmap;
pub mod bloom;
pub mod det_map;
pub mod hash;
pub mod state;

pub use bitmap::{LinearCounting, MultiResolutionBitmap};
pub use bloom::BloomFilter;
pub use det_map::{DetHashMap, DetHashSet, Entry};
pub use hash::{
    hash_block, hash_bytes, mix64, DetBuildHasher, DetHasher, H3Hasher, IncrementalFnv,
};
pub use state::{StateError, StateReader, StateWriter};
