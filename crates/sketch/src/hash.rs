//! Hash functions shared by the sketches and the flow sampler.

// lint:allow(plan-phase-rng): H3 table words are drawn once from a caller-supplied seed at construction (plan phase), never per packet
use rand::rngs::StdRng;
// lint:allow(plan-phase-rng): same seed-derived construction draw as above
use rand::{Rng, SeedableRng};

/// A strong 64-bit integer mixer (SplitMix64 finalizer).
///
/// Used wherever a cheap, deterministic, well-distributed hash of a 64-bit
/// value is needed (bitmap bucket selection, Bloom filter double hashing).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100000001b3;

/// `FNV_PRIME^k mod 2^64` for `k` in `0..=16`, so a run of `k` zero bytes can
/// be absorbed with one multiplication instead of `k` (a zero byte leaves the
/// XOR untouched, so its whole FNV-1a step collapses to `h *= FNV_PRIME`).
const FNV_PRIME_POWERS: [u64; 17] = {
    let mut powers = [1u64; 17];
    let mut k = 1;
    while k < powers.len() {
        powers[k] = powers[k - 1].wrapping_mul(FNV_PRIME);
        k += 1;
    }
    powers
};

/// Hashes an arbitrary byte slice to 64 bits with a caller-supplied seed.
///
/// This is an FNV-1a pass followed by [`mix64`]; it is not cryptographic but
/// is fast and has good avalanche behaviour for the short keys (≤ 13 bytes)
/// used by the traffic aggregates.
#[inline]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut fnv = IncrementalFnv::new(seed);
    fnv.write(bytes);
    fnv.finish()
}

/// An incremental FNV-1a + [`mix64`] hasher producing bit-identical results
/// to [`hash_bytes`] over the concatenation of everything written.
///
/// The batch data plane hashes every packet once against all ten traffic
/// aggregates; building each aggregate's zero-padded 13-byte key just to feed
/// it to [`hash_bytes`] would re-serialise the 5-tuple ten times per packet.
/// This hasher lets the caller stream the relevant header fields directly and
/// absorb the trailing zero padding in O(1) via [`IncrementalFnv::pad_zeros`].
#[derive(Debug, Clone, Copy)]
pub struct IncrementalFnv(u64);

impl IncrementalFnv {
    /// Starts a hash with the given seed (same seeding rule as [`hash_bytes`]).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self(FNV_OFFSET ^ seed)
    }

    /// Absorbs a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs `count` zero bytes in a single multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds 16 (the aggregate keys pad by at most 12).
    #[inline]
    pub fn pad_zeros(&mut self, count: usize) {
        self.0 = self.0.wrapping_mul(FNV_PRIME_POWERS[count]);
    }

    /// Finalises the hash with the [`mix64`] avalanche pass.
    #[inline]
    pub fn finish(self) -> u64 {
        mix64(self.0)
    }

    /// The raw accumulator state, for checkpointing a mid-stream hasher.
    ///
    /// Digest observers fold a whole run's event stream into incremental FNV
    /// chains; a `.nsck` snapshot must persist those chains mid-run so a
    /// restored run's final digest equals the uninterrupted one.
    #[inline]
    pub fn state(self) -> u64 {
        self.0
    }

    /// Rebuilds a hasher from [`IncrementalFnv::state`].
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self(state)
    }
}

/// Distinct odd constants that spread the four lane seeds of [`hash_block`]
/// apart (the first four 64-bit primes of the SplitMix64/xxHash family).
const BLOCK_LANE_KEYS: [u64; 4] =
    [0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0x2545f4914f6cdd1d];

/// Hashes a byte slice to 64 bits with four independent multiply–rotate
/// lanes, each absorbing one little-endian `u64` per 32-byte block.
///
/// The byte-serial FNV in [`hash_bytes`] carries one 64-bit multiply per
/// *byte* on its critical path (~0.7 GB/s), which is fine for 13-byte
/// aggregate keys but made container checksums the dominant cost of `.nstr`
/// replay — verifying a payload-carrying trace was an order of magnitude
/// slower than decoding it. This hash runs four independent accumulator
/// chains so the multiplies pipeline, bounding verification by memory
/// bandwidth instead. The tail (< 32 bytes) and the total length fold in
/// through the byte-serial path, so no two inputs of different lengths ever
/// see the same absorption sequence.
///
/// The output is **frozen**: it is part of the `.nstr` on-disk format
/// (format v2 frame checksums), so any change to the constants or structure
/// is a format break and must bump `TRACE_FORMAT_VERSION`.
#[must_use]
pub fn hash_block(bytes: &[u8], seed: u64) -> u64 {
    let mut lanes = [
        mix64(seed ^ BLOCK_LANE_KEYS[0]),
        mix64(seed ^ BLOCK_LANE_KEYS[1]),
        mix64(seed ^ BLOCK_LANE_KEYS[2]),
        mix64(seed ^ BLOCK_LANE_KEYS[3]),
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let mut w = [0u8; 8];
            w.copy_from_slice(word);
            *lane = (*lane ^ u64::from_le_bytes(w)).wrapping_mul(FNV_PRIME).rotate_left(29);
        }
    }
    let mut tail = IncrementalFnv::new(seed);
    tail.write(blocks.remainder());
    mix64(
        lanes[0]
            ^ lanes[1].rotate_left(13)
            ^ lanes[2].rotate_left(26)
            ^ lanes[3].rotate_left(39)
            ^ tail.finish()
            ^ (bytes.len() as u64).wrapping_mul(FNV_PRIME),
    )
}

/// A deterministic [`std::hash::Hasher`] (FNV-1a + [`mix64`]) for hash-table
/// state that must behave identically across runs and processes.
///
/// `std::collections::HashMap`'s default `RandomState` draws a fresh seed per
/// map instance, so two bit-identical runs place — and therefore probe —
/// their keys differently. The deterministic containers
/// ([`DetHashMap`](crate::det_map::DetHashMap) /
/// [`DetHashSet`](crate::det_map::DetHashSet)) hash through this type
/// instead, and additionally iterate in *insertion order*, so interval folds
/// and rankings are bit-identical across runs, worker counts and
/// checkpoint/restore boundaries. (HashDoS resistance is not a concern for
/// these tables: keys are already 64-bit hashes of attacker-invisible seeds,
/// or bounded enumerations.)
#[derive(Debug, Clone, Copy)]
pub struct DetHasher(IncrementalFnv);

impl Default for DetHasher {
    fn default() -> Self {
        Self(IncrementalFnv::new(0))
    }
}

impl std::hash::Hasher for DetHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Deterministic build-hasher for replay-stable maps.
pub type DetBuildHasher = std::hash::BuildHasherDefault<DetHasher>;

/// An H3-style universal hash over fixed-length keys, realised as tabulation
/// hashing: one 256-entry table of random 64-bit words per key byte, XORed
/// together.
///
/// The paper draws a fresh H3 function per query and measurement interval so
/// that flow sampling cannot be evaded by adversarial flows and selection is
/// unbiased (Section 4.2). [`H3Hasher::unit_interval`] maps a key to `[0, 1)`
/// exactly as the flowwise sampler requires.
#[derive(Debug, Clone)]
pub struct H3Hasher {
    tables: Vec<[u64; 256]>,
}

impl H3Hasher {
    /// Draws a new hash function for keys of `key_len` bytes from the given seed.
    pub fn new(key_len: usize, seed: u64) -> Self {
        // lint:allow(plan-phase-rng): one seeded draw per constructed hasher; the seed flows from the plan phase
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            let mut table = [0u64; 256];
            for entry in &mut table {
                *entry = rng.gen();
            }
            tables.push(table);
        }
        Self { tables }
    }

    /// Number of key bytes this hash function was drawn for.
    pub fn key_len(&self) -> usize {
        self.tables.len()
    }

    /// Hashes a key of exactly `key_len` bytes to a 64-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the length used at construction.
    pub fn hash(&self, key: &[u8]) -> u64 {
        assert_eq!(key.len(), self.tables.len(), "key length mismatch");
        let mut h = 0u64;
        for (table, &byte) in self.tables.iter().zip(key) {
            h ^= table[usize::from(byte)];
        }
        h
    }

    /// Maps a key to a value uniformly distributed in `[0, 1)`.
    pub fn unit_interval(&self, key: &[u8]) -> f64 {
        // 53 mantissa bits keep the conversion exact.
        (self.hash(key) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_separates_nearby_inputs() {
        assert_ne!(mix64(1), mix64(2));
        // Nearby inputs should differ in roughly half their bits.
        let distance = (mix64(3) ^ mix64(4)).count_ones();
        assert!(distance > 16, "avalanche too weak: {distance} bits");
    }

    #[test]
    fn incremental_fnv_matches_hash_bytes_with_zero_padding() {
        // A zero-padded key hashed in one go must equal the incremental
        // version that streams the payload and collapses the padding.
        let mut key = [0u8; 13];
        key[..4].copy_from_slice(&0xc0a80001u32.to_be_bytes());
        key[4..6].copy_from_slice(&443u16.to_be_bytes());
        key[6] = 6;
        for seed in [0u64, 1, 0x5eed_f00d, u64::MAX] {
            let mut fnv = IncrementalFnv::new(seed);
            fnv.write(&key[..7]);
            fnv.pad_zeros(6);
            assert_eq!(fnv.finish(), hash_bytes(&key, seed));
        }
    }

    #[test]
    fn incremental_fnv_split_writes_match_contiguous_write() {
        let mut split = IncrementalFnv::new(7);
        split.write(b"abc");
        split.write(b"def");
        split.pad_zeros(0);
        assert_eq!(split.finish(), hash_bytes(b"abcdef", 7));
    }

    #[test]
    fn hash_block_is_deterministic_and_length_sensitive() {
        // Pinned values: hash_block is part of the .nstr on-disk format, so
        // its output for a fixed input must never drift across refactors.
        assert_eq!(hash_block(b"", 0), hash_block(b"", 0));
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        for seed in [0u64, 1, 0x6e73_7472, u64::MAX] {
            assert_eq!(hash_block(&data, seed), hash_block(&data, seed));
            assert_ne!(hash_block(&data, seed), hash_block(&data, seed ^ 1));
        }
        // Every prefix length hashes differently from its neighbours: the
        // block/tail boundary (multiples of 32) must not create collisions
        // between an input and the same input extended by zero bytes.
        let zeros = [0u8; 100];
        let mut seen = std::collections::BTreeSet::new();
        for len in 0..zeros.len() {
            assert!(seen.insert(hash_block(&zeros[..len], 7)), "length {len} collided");
        }
    }

    #[test]
    fn hash_block_detects_single_bit_flips() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
        let clean = hash_block(&data, 3);
        for at in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[at] ^= 1 << bit;
                assert_ne!(hash_block(&corrupt, 3), clean, "flip at byte {at} bit {bit}");
            }
        }
    }

    #[test]
    fn hash_bytes_depends_on_seed_and_content() {
        assert_ne!(hash_bytes(b"abc", 1), hash_bytes(b"abc", 2));
        assert_ne!(hash_bytes(b"abc", 1), hash_bytes(b"abd", 1));
        assert_eq!(hash_bytes(b"abc", 1), hash_bytes(b"abc", 1));
    }

    #[test]
    fn h3_is_deterministic_per_seed() {
        let h1 = H3Hasher::new(13, 7);
        let h2 = H3Hasher::new(13, 7);
        let h3 = H3Hasher::new(13, 8);
        let key = [1u8; 13];
        assert_eq!(h1.hash(&key), h2.hash(&key));
        assert_ne!(h1.hash(&key), h3.hash(&key));
    }

    #[test]
    fn h3_unit_interval_is_within_bounds_and_roughly_uniform() {
        let h = H3Hasher::new(4, 3);
        let mut below_half = 0;
        let n = 10_000;
        for i in 0..n {
            let key = (i as u32).to_be_bytes();
            let u = h.unit_interval(&key);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        let frac = f64::from(below_half) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.03, "fraction below 0.5 was {frac}");
    }

    #[test]
    #[should_panic(expected = "key length mismatch")]
    fn h3_panics_on_wrong_key_length() {
        let h = H3Hasher::new(4, 3);
        let _ = h.hash(&[0u8; 5]);
    }
}
