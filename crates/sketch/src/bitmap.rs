//! Bitmap-based distinct counters.
//!
//! The feature extractor needs, for every batch and every traffic aggregate,
//! the number of *unique* items and the number of *new* items relative to the
//! current measurement interval (Section 3.2.1). The paper uses the
//! multi-resolution bitmaps of Estan, Varghese and Fisk because they bound
//! the per-packet work (a constant number of memory accesses) and keep the
//! estimation error around 1% for the cardinalities observed on the
//! monitored links.
//!
//! Two counters are provided:
//!
//! * [`LinearCounting`]: a single bitmap using Whang et al.'s linear counting
//!   estimator. Accurate while the bitmap is not saturated.
//! * [`MultiResolutionBitmap`]: several linear-counting components, each
//!   "sampling" a geometrically decreasing share of the hash space, so the
//!   counter stays accurate across several orders of magnitude of
//!   cardinality with a small, fixed memory footprint.

use crate::hash::mix64;
use crate::state::{StateError, StateReader, StateWriter};

/// A linear-counting bitmap distinct counter.
#[derive(Debug, Clone)]
pub struct LinearCounting {
    bits: Vec<u64>,
    num_bits: usize,
    set_bits: usize,
}

impl LinearCounting {
    /// Creates a counter with `num_bits` bits (rounded up to a multiple of 64).
    pub fn new(num_bits: usize) -> Self {
        let num_bits = num_bits.max(64).next_multiple_of(64);
        Self { bits: vec![0; num_bits / 64], num_bits, set_bits: 0 }
    }

    /// Number of bits in the bitmap.
    pub fn capacity_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of bits currently set.
    pub fn set_bits(&self) -> usize {
        self.set_bits
    }

    /// Fraction of bits set (saturation level).
    pub fn fill_ratio(&self) -> f64 {
        self.set_bits as f64 / self.num_bits as f64
    }

    /// Records a pre-hashed item.
    ///
    /// Returns `true` if the bit was not previously set (i.e. the item is new
    /// to this bitmap as far as the sketch can tell).
    pub fn insert_hash(&mut self, hash: u64) -> bool {
        let bit = (hash % self.num_bits as u64) as usize;
        let (word, mask) = (bit / 64, 1u64 << (bit % 64));
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.set_bits += 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if the bit for this hash is set.
    pub fn contains_hash(&self, hash: u64) -> bool {
        let bit = (hash % self.num_bits as u64) as usize;
        self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Linear counting estimate of the number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.num_bits as f64;
        let zero = (self.num_bits - self.set_bits).max(1) as f64;
        m * (m / zero).ln()
    }

    /// Merges another bitmap of identical size into this one (bitwise OR).
    ///
    /// Used to carry per-batch unique counts into the per-interval "seen"
    /// bitmap, exactly as described in Section 3.2.1.
    ///
    /// # Panics
    ///
    /// Panics if the two bitmaps have different sizes.
    pub fn merge(&mut self, other: &LinearCounting) {
        assert_eq!(self.num_bits, other.num_bits, "cannot merge bitmaps of different sizes");
        let mut set = 0usize;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
            set += a.count_ones() as usize;
        }
        self.set_bits = set;
    }

    /// Clears the bitmap.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.set_bits = 0;
    }

    /// Serializes the bitmap contents (geometry + words).
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.usize(self.num_bits);
        for word in &self.bits {
            writer.u64(*word);
        }
    }

    /// Restores contents saved by [`LinearCounting::save_state`] into a
    /// bitmap of identical geometry.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let num_bits = reader.usize()?;
        if num_bits != self.num_bits {
            return Err(StateError::mismatch("bitmap size (bits)", num_bits, self.num_bits));
        }
        let mut set = 0usize;
        for word in &mut self.bits {
            *word = reader.u64()?;
            set += word.count_ones() as usize;
        }
        self.set_bits = set;
        Ok(())
    }
}

/// A multi-resolution bitmap distinct counter.
///
/// The hash space is split geometrically across `components`: component `i`
/// receives a fraction `2^-(i+1)` of the items (the last component receives
/// the remaining tail). Estimation picks the lowest component that is not
/// saturated and scales the linear-counting estimates of that component and
/// all higher ones by the inverse of the sampled fraction.
#[derive(Debug, Clone)]
pub struct MultiResolutionBitmap {
    components: Vec<LinearCounting>,
    /// Saturation threshold above which a component is not used as the base.
    saturation: f64,
}

impl MultiResolutionBitmap {
    /// Creates a counter with `num_components` components of
    /// `bits_per_component` bits each.
    pub fn new(num_components: usize, bits_per_component: usize) -> Self {
        assert!(num_components >= 1);
        Self {
            components: (0..num_components)
                .map(|_| LinearCounting::new(bits_per_component))
                .collect(),
            saturation: 0.93,
        }
    }

    /// Creates a counter dimensioned for roughly `max_cardinality` items with
    /// about 1% error, matching the paper's configuration choice.
    pub fn for_cardinality(max_cardinality: usize) -> Self {
        // Each component comfortably covers ~5x its bit count; use enough
        // components to cover the maximum with the final tail component.
        let bits = 4096usize;
        let mut components = 1usize;
        let mut reach = bits * 2;
        while reach < max_cardinality && components < 16 {
            components += 1;
            reach *= 2;
        }
        Self::new(components, bits)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Total memory footprint in bytes (for overhead accounting).
    pub fn memory_bytes(&self) -> usize {
        self.components.iter().map(|c| c.capacity_bits() / 8).sum()
    }

    /// Records a pre-hashed item; returns `true` if its bit was newly set.
    pub fn insert_hash(&mut self, hash: u64) -> bool {
        let (component, bit_hash) = self.locate(hash);
        self.components[component].insert_hash(bit_hash)
    }

    /// Returns `true` if the item's bit is already set (it was *probably* seen).
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (component, bit_hash) = self.locate(hash);
        self.components[component].contains_hash(bit_hash)
    }

    /// Estimates the number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        // Find the first component that is still reliable.
        let last = self.components.len() - 1;
        let mut base = 0usize;
        while base < last && self.components[base].fill_ratio() > self.saturation {
            base += 1;
        }
        let mut sum = 0.0;
        for component in &self.components[base..] {
            sum += component.estimate();
        }
        // Components `base..` observe a fraction 2^-base of the items.
        sum * (1u64 << base) as f64
    }

    /// Clears all components.
    pub fn clear(&mut self) {
        self.components.iter_mut().for_each(LinearCounting::clear);
    }

    /// Merges another multi-resolution bitmap with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &MultiResolutionBitmap) {
        assert_eq!(self.components.len(), other.components.len(), "component count mismatch");
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            a.merge(b);
        }
    }

    /// Serializes the counter contents (component count + every bitmap).
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.usize(self.components.len());
        for component in &self.components {
            component.save_state(writer);
        }
    }

    /// Restores contents saved by [`MultiResolutionBitmap::save_state`] into
    /// a counter of identical geometry.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let components = reader.usize()?;
        if components != self.components.len() {
            return Err(StateError::mismatch(
                "bitmap component count",
                components,
                self.components.len(),
            ));
        }
        for component in &mut self.components {
            component.load_state(reader)?;
        }
        Ok(())
    }

    /// Splits a hash into (component index, per-component bit hash).
    fn locate(&self, hash: u64) -> (usize, u64) {
        let last = self.components.len() - 1;
        // The low bits choose the component geometrically: component i is
        // selected when the i low bits are all ones and bit i is zero.
        let component = (hash.trailing_ones() as usize).min(last);
        // Use the high bits (independent of the selector bits) for the bit
        // position inside the component.
        (component, mix64(hash >> 16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;

    fn estimate_error(actual: usize, estimate: f64) -> f64 {
        (estimate - actual as f64).abs() / actual as f64
    }

    #[test]
    fn linear_counting_is_accurate_below_saturation() {
        let mut lc = LinearCounting::new(8192);
        let n = 2000usize;
        for i in 0..n {
            lc.insert_hash(hash_bytes(&(i as u64).to_be_bytes(), 1));
        }
        assert!(estimate_error(n, lc.estimate()) < 0.05, "estimate {}", lc.estimate());
    }

    #[test]
    fn linear_counting_detects_duplicates() {
        let mut lc = LinearCounting::new(8192);
        let h = hash_bytes(b"x", 1);
        assert!(lc.insert_hash(h));
        assert!(!lc.insert_hash(h));
        assert!(lc.contains_hash(h));
    }

    #[test]
    fn linear_counting_merge_unions_sets() {
        let mut a = LinearCounting::new(4096);
        let mut b = LinearCounting::new(4096);
        for i in 0..500u64 {
            a.insert_hash(mix64(i));
            b.insert_hash(mix64(i + 250));
        }
        a.merge(&b);
        assert!(estimate_error(750, a.estimate()) < 0.08, "estimate {}", a.estimate());
    }

    #[test]
    fn multiresolution_accurate_across_magnitudes() {
        for &n in &[100usize, 1_000, 10_000, 100_000] {
            let mut mrb = MultiResolutionBitmap::for_cardinality(200_000);
            for i in 0..n {
                mrb.insert_hash(mix64(i as u64 ^ 0xdeadbeef));
            }
            let err = estimate_error(n, mrb.estimate());
            assert!(err < 0.1, "n={n} estimate={} err={err}", mrb.estimate());
        }
    }

    #[test]
    fn multiresolution_duplicates_do_not_inflate_estimate() {
        let mut mrb = MultiResolutionBitmap::for_cardinality(10_000);
        for i in 0..1000u64 {
            for _ in 0..5 {
                mrb.insert_hash(mix64(i));
            }
        }
        assert!(estimate_error(1000, mrb.estimate()) < 0.1, "estimate {}", mrb.estimate());
    }

    #[test]
    fn multiresolution_clear_resets_estimate() {
        let mut mrb = MultiResolutionBitmap::new(4, 1024);
        for i in 0..500u64 {
            mrb.insert_hash(mix64(i));
        }
        mrb.clear();
        assert!(mrb.estimate() < 1.0);
    }

    #[test]
    fn multiresolution_merge_matches_union() {
        let mut a = MultiResolutionBitmap::new(6, 2048);
        let mut b = MultiResolutionBitmap::new(6, 2048);
        for i in 0..3000u64 {
            a.insert_hash(mix64(i));
            b.insert_hash(mix64(i + 1500));
        }
        a.merge(&b);
        assert!(estimate_error(4500, a.estimate()) < 0.1, "estimate {}", a.estimate());
    }

    #[test]
    fn insert_hash_reports_new_bits() {
        let mut mrb = MultiResolutionBitmap::new(6, 4096);
        let h = mix64(42);
        assert!(mrb.insert_hash(h));
        assert!(!mrb.insert_hash(h));
        assert!(mrb.contains_hash(h));
    }
}
