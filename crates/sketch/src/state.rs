//! Canonical byte serialization for checkpointable state.
//!
//! The `.nsck` snapshot format (netshed-service) persists every piece of
//! *essential* monitor state — predictor histories, sketch tables, RNG
//! positions, interval accumulators — and restores it bit-identically. The
//! encoding rules live here, at the bottom of the dependency graph, so every
//! crate can serialize its own state without knowing about the container:
//!
//! * all integers are little-endian; `usize` widens to `u64`;
//! * `f64` round-trips through [`f64::to_bits`] (bit-exact, NaN-preserving);
//! * strings and byte blobs are length-prefixed (`u64`);
//! * optionals carry a `u8` presence tag (0 = absent, 1 = present).
//!
//! [`StateWriter`] appends to an in-memory buffer; [`StateReader`] consumes
//! one, failing with a typed [`StateError`] on truncation, domain violations
//! or geometry mismatches. Readers are expected to call
//! [`StateReader::finish`] (or be framed by a length-prefixed blob) so
//! trailing garbage cannot hide.

/// Errors produced while serializing or restoring checkpointable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The buffer ended before the value could be read.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A decoded value violates its domain (bad tag, bad UTF-8, …).
    Corrupt(String),
    /// The component does not support checkpointing.
    Unsupported(String),
    /// Restored state disagrees with the live object it must load into.
    Mismatch {
        /// What is being compared (e.g. "policy name").
        what: String,
        /// The value found in the snapshot.
        found: String,
        /// The value the live object expected.
        expected: String,
    },
    /// A reader finished with bytes left over (framing bug or corruption).
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl StateError {
    /// Convenience constructor for [`StateError::Unsupported`].
    pub fn unsupported(component: impl Into<String>) -> Self {
        StateError::Unsupported(component.into())
    }

    /// Convenience constructor for [`StateError::Corrupt`].
    pub fn corrupt(message: impl Into<String>) -> Self {
        StateError::Corrupt(message.into())
    }

    /// Convenience constructor for [`StateError::Mismatch`].
    pub fn mismatch(
        what: impl Into<String>,
        found: impl std::fmt::Display,
        expected: impl std::fmt::Display,
    ) -> Self {
        StateError::Mismatch {
            what: what.into(),
            found: found.to_string(),
            expected: expected.to_string(),
        }
    }
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Truncated { needed, remaining } => {
                write!(f, "state ends early: needed {needed} bytes, {remaining} left")
            }
            StateError::Corrupt(message) => write!(f, "corrupt state: {message}"),
            StateError::Unsupported(component) => {
                write!(f, "{component} does not support checkpointing")
            }
            StateError::Mismatch { what, found, expected } => {
                write!(f, "state mismatch: snapshot {what} is {found}, live object has {expected}")
            }
            StateError::TrailingBytes { remaining } => {
                write!(f, "state has {remaining} unconsumed trailing bytes")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Appends canonically-encoded values to a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes an optional `u64` (presence tag + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// Writes an optional `f64` (presence tag + value).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }

    /// Writes an optional string (presence tag + value).
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.str(v);
            }
        }
    }
}

/// Consumes a buffer written by [`StateWriter`].
#[derive(Debug, Clone)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`StateError::TrailingBytes`] unless fully consumed.
    pub fn finish(self) -> Result<(), StateError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(StateError::TrailingBytes { remaining }),
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < len {
            return Err(StateError::Truncated { needed: len, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StateError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        let bytes = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(word))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, StateError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| StateError::corrupt(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean; any byte other than 0 or 1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StateError::corrupt(format!("bool tag {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StateError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StateError::corrupt("string is not UTF-8".to_string()))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], StateError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(StateError::corrupt(format!("option tag {other}"))),
        }
    }

    /// Reads an optional `f64`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(StateError::corrupt(format!("option tag {other}"))),
        }
    }

    /// Reads an optional string.
    pub fn opt_str(&mut self) -> Result<Option<String>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(StateError::corrupt(format!("option tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_covers_every_primitive() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("hälló");
        w.bytes(&[1, 2, 3]);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.opt_f64(Some(2.5));
        w.opt_str(Some("x"));
        w.opt_str(None);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hälló");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.opt_str().unwrap().as_deref(), Some("x"));
        assert_eq!(r.opt_str().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_reports_needed_and_remaining() {
        let mut w = StateWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(
            r.u64().unwrap_err(),
            StateError::Truncated { needed: 8, remaining: 4 },
            "an 8-byte read over 4 bytes must name both numbers"
        );
    }

    #[test]
    fn bad_tags_are_corrupt_not_panics() {
        let mut r = StateReader::new(&[7]);
        assert!(matches!(r.bool().unwrap_err(), StateError::Corrupt(_)));
        let mut r = StateReader::new(&[2, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(r.opt_u64().unwrap_err(), StateError::Corrupt(_)));
        // A length prefix larger than the buffer truncates, never allocates.
        let mut huge = StateWriter::new();
        huge.u64(u64::MAX);
        let bytes = huge.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = StateWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), StateError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        let mut w = StateWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(r.str().unwrap_err(), StateError::Corrupt(_)));
    }
}
