//! The typed error surface of the public API.
//!
//! Every fallible public entry point — building a monitor, registering and
//! deregistering queries, processing batches, driving a run — returns
//! [`NetshedError`] instead of panicking or silently correcting bad input.

use std::error::Error;
use std::fmt;

/// Errors produced by the netshed public API.
#[derive(Debug, Clone, PartialEq)]
pub enum NetshedError {
    /// A configuration value is out of its valid domain. The message names
    /// the offending field and constraint.
    InvalidConfig(String),
    /// An operation referenced a query that is not registered. The message
    /// carries the query id or label that failed to resolve.
    UnknownQuery(String),
    /// A batch with no packets was submitted for processing.
    EmptyBatch {
        /// Index of the offending time bin.
        bin_index: u64,
    },
    /// The configured capacity cannot cover even the fixed per-bin overhead,
    /// so every query would starve regardless of the shedding strategy.
    CapacityUnderflow {
        /// Cycles per bin the configuration provides.
        capacity: f64,
        /// Minimum cycles per bin the configuration requires.
        required: f64,
    },
    /// A workload scenario failed validation (converted from
    /// [`netshed_trace::ScenarioError`], which carries the structured
    /// detail; the message here is its rendering).
    InvalidScenario(String),
    /// A recorded binary trace could not be decoded (converted from
    /// [`netshed_trace::FormatError`]).
    TraceFormat(String),
}

impl From<netshed_trace::ScenarioError> for NetshedError {
    fn from(error: netshed_trace::ScenarioError) -> Self {
        NetshedError::InvalidScenario(error.to_string())
    }
}

impl From<netshed_trace::FormatError> for NetshedError {
    fn from(error: netshed_trace::FormatError) -> Self {
        NetshedError::TraceFormat(error.to_string())
    }
}

impl fmt::Display for NetshedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetshedError::InvalidConfig(message) => {
                write!(f, "invalid configuration: {message}")
            }
            NetshedError::UnknownQuery(query) => {
                write!(f, "unknown query: {query}")
            }
            NetshedError::EmptyBatch { bin_index } => {
                write!(f, "batch for bin {bin_index} contains no packets")
            }
            NetshedError::CapacityUnderflow { capacity, required } => {
                write!(
                    f,
                    "capacity of {capacity:.0} cycles/bin cannot cover the fixed overhead of \
                     {required:.0} cycles/bin"
                )
            }
            NetshedError::InvalidScenario(message) => {
                write!(f, "invalid scenario: {message}")
            }
            NetshedError::TraceFormat(message) => {
                write!(f, "trace decode failed: {message}")
            }
        }
    }
}

impl Error for NetshedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let invalid = NetshedError::InvalidConfig("ewma_alpha must be in (0, 1]".into());
        assert!(invalid.to_string().contains("ewma_alpha"));
        let unknown = NetshedError::UnknownQuery("flows#3".into());
        assert!(unknown.to_string().contains("flows#3"));
        let empty = NetshedError::EmptyBatch { bin_index: 17 };
        assert!(empty.to_string().contains("17"));
        let underflow = NetshedError::CapacityUnderflow { capacity: 10.0, required: 100.0 };
        assert!(underflow.to_string().contains("10"));
    }

    #[test]
    fn scenario_and_format_errors_convert_with_their_detail() {
        let scenario_error = netshed_trace::ScenarioError::EmptyLink { link: "backbone".into() };
        let converted = NetshedError::from(scenario_error.clone());
        assert!(matches!(converted, NetshedError::InvalidScenario(_)));
        assert!(converted.to_string().contains("backbone"));
        assert!(converted.to_string().contains(&scenario_error.to_string()));

        let format_error = netshed_trace::FormatError::Truncated;
        let converted = NetshedError::from(format_error);
        assert!(matches!(converted, NetshedError::TraceFormat(_)));
        assert!(converted.to_string().contains("end frame"));
    }

    #[test]
    fn errors_are_comparable_for_tests() {
        assert_eq!(
            NetshedError::EmptyBatch { bin_index: 1 },
            NetshedError::EmptyBatch { bin_index: 1 }
        );
        assert_ne!(
            NetshedError::InvalidConfig("a".into()),
            NetshedError::InvalidConfig("b".into())
        );
    }
}
