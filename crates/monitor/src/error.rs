//! The typed error surface of the public API.
//!
//! Every fallible public entry point — building a monitor, registering and
//! deregistering queries, processing batches, driving a run — returns
//! [`NetshedError`] instead of panicking or silently correcting bad input.

use std::error::Error;
use std::fmt;

/// Errors produced by the netshed public API.
#[derive(Debug, Clone, PartialEq)]
pub enum NetshedError {
    /// A configuration value is out of its valid domain. The message names
    /// the offending field and constraint.
    InvalidConfig(String),
    /// An operation referenced a query that is not registered. The message
    /// carries the query id or label that failed to resolve.
    UnknownQuery(String),
    /// A batch with no packets was submitted for processing.
    EmptyBatch {
        /// Index of the offending time bin.
        bin_index: u64,
    },
    /// The configured capacity cannot cover even the fixed per-bin overhead,
    /// so every query would starve regardless of the shedding strategy.
    CapacityUnderflow {
        /// Cycles per bin the configuration provides.
        capacity: f64,
        /// Minimum cycles per bin the configuration requires.
        required: f64,
    },
}

impl fmt::Display for NetshedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetshedError::InvalidConfig(message) => {
                write!(f, "invalid configuration: {message}")
            }
            NetshedError::UnknownQuery(query) => {
                write!(f, "unknown query: {query}")
            }
            NetshedError::EmptyBatch { bin_index } => {
                write!(f, "batch for bin {bin_index} contains no packets")
            }
            NetshedError::CapacityUnderflow { capacity, required } => {
                write!(
                    f,
                    "capacity of {capacity:.0} cycles/bin cannot cover the fixed overhead of \
                     {required:.0} cycles/bin"
                )
            }
        }
    }
}

impl Error for NetshedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let invalid = NetshedError::InvalidConfig("ewma_alpha must be in (0, 1]".into());
        assert!(invalid.to_string().contains("ewma_alpha"));
        let unknown = NetshedError::UnknownQuery("flows#3".into());
        assert!(unknown.to_string().contains("flows#3"));
        let empty = NetshedError::EmptyBatch { bin_index: 17 };
        assert!(empty.to_string().contains("17"));
        let underflow = NetshedError::CapacityUnderflow { capacity: 10.0, required: 100.0 };
        assert!(underflow.to_string().contains("10"));
    }

    #[test]
    fn errors_are_comparable_for_tests() {
        assert_eq!(
            NetshedError::EmptyBatch { bin_index: 1 },
            NetshedError::EmptyBatch { bin_index: 1 }
        );
        assert_ne!(
            NetshedError::InvalidConfig("a".into()),
            NetshedError::InvalidConfig("b".into())
        );
    }
}
