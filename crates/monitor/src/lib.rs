//! The netshed load shedding system.
//!
//! This crate assembles the substrates (traffic model, feature extraction,
//! prediction, queries, fairness) into the monitoring pipeline of the paper:
//!
//! ```text
//!              ┌──────────────────────────────────────────────────┐
//!   packets →  │ capture buffer → batch → features → prediction   │
//!              │      ↓ (uncontrolled drops when the buffer       │
//!              │        overflows, as in the original CoMo)       │
//!              │  load shedding: when / where / how much to shed  │
//!              │      ↓ per-query packet / flow / custom shedding │
//!              │  queries (black boxes, cycles metered)           │
//!              │      ↓ feedback: observed cycles → prediction    │
//!              └──────────────────────────────────────────────────┘
//! ```
//!
//! The central type is [`Monitor`], constructed through the validating
//! [`MonitorBuilder`] (capacity, strategy, predictor, enforcement, seed,
//! initial [`QuerySpec`](netshed_queries::QuerySpec)s). Queries are
//! registered and deregistered at any time through [`QueryId`] handles, so
//! the same query kind can run several times under distinct labels. A full
//! experiment is one call: [`Monitor::run`] consumes a
//! [`PacketSource`](netshed_trace::PacketSource) and reports per-bin
//! [`BinRecord`]s and per-interval query outputs to a [`RunObserver`]
//! ([`RunSummary`], [`RecordSink`], [`AccuracyTracker`] ship as built-ins).
//! Every fallible entry point returns [`NetshedError`]. A
//! [`ReferenceRunner`] runs the same queries without any resource limit to
//! provide the ground truth against which accuracy is measured.
//!
//! The control plane is open: a [`ControlPolicy`] decides every bin's
//! per-query sampling rates from a [`ControlContext`] (predictions, demands,
//! available cycles, EWMA error, previous-bin feedback) and returns an
//! introspectable [`ControlDecision`] that flows into each [`BinRecord`] and
//! the [`RunObserver::on_decision`] hook. The [`Strategy`] enum remains the
//! validated constructor for the built-ins (Chapters 4–6 of the paper):
//!
//! * [`Strategy::NoShedding`] — the original CoMo behaviour: drop packets at
//!   the capture buffer when overloaded.
//! * [`Strategy::Reactive`] — adjust the sampling rate from the previous
//!   batch's measured cycles (Eq. 4.1), resolving minimum-rate conflicts
//!   through its allocation policy.
//! * [`Strategy::Predictive`] — the paper's scheme (Algorithm 1): MLR+FCBF
//!   prediction, buffer discovery, EWMA error correction, and one of the
//!   allocation policies of Chapter 5 ([`AllocationPolicy::EqualRates`],
//!   [`AllocationPolicy::MmfsCpu`], [`AllocationPolicy::MmfsPkt`]).
//!
//! Beyond the enum, [`policy::OraclePolicy`] allocates from the bin's actual
//! measured cycles (the upper bound on every predictor),
//! [`policy::HysteresisReactivePolicy`] sheds immediately but recovers
//! slowly, and user-defined policies plug in through
//! [`MonitorBuilder::with_policy`]. Predictors follow the same registration
//! pattern through [`MonitorBuilder::with_predictor`].
//!
//! The [`robust`] module is the control-plane half of the robustness plane:
//! [`DegradationGuard`] wraps any policy with a per-bin under-prediction
//! tripwire and a conservative reactive fallback (surfaced as
//! [`DecisionReason::DegradedFallback`]), and [`AllocationGameAttacker`]
//! plays the Section 5.3 allocation game dishonestly so the defense can be
//! measured. The hardened predictor rides along as
//! [`PredictorKind::RobustMlrFcbf`].

#![forbid(unsafe_code)]

pub mod builder;
pub mod capture;
pub mod config;
pub mod digest;
pub mod error;
pub mod exec;
pub mod monitor;
pub mod observer;
pub mod policy;
pub mod reference;
pub mod report;
pub mod robust;
pub mod sharded;
pub mod shedder;

pub use builder::MonitorBuilder;
pub use capture::CaptureBuffer;
pub use config::{
    AllocationPolicy, EnforcementConfig, MonitorConfig, PredictorKind, Strategy,
    DEFAULT_SHARD_LANES,
};
pub use digest::{DigestObserver, RunDigest, StreamDigest};
pub use error::NetshedError;
pub use exec::{simulated_makespan, ExecStats, MAX_WORKERS};
pub use monitor::{Monitor, QueryId};
pub use observer::{AccuracyTracker, NullObserver, RecordSink, RunObserver};
pub use policy::{
    ControlContext, ControlDecision, ControlPolicy, DecisionReason, HysteresisReactivePolicy,
    NoSheddingPolicy, OraclePolicy, PredictivePolicy, ReactivePolicy,
};
pub use reference::ReferenceRunner;
pub use report::{BinRecord, QueryBinRecord, RunSummary};
pub use robust::{AllocationGameAttacker, DegradationGuard, DegradationGuardConfig};
pub use sharded::ShardedMonitor;
pub use shedder::{flow_sample, flow_sample_with, packet_sample, packet_sample_with};
