//! Replay digests: a compact, stable fingerprint of everything a run emits.
//!
//! The execution-plane determinism contract says a replayed trace produces
//! **bit-identical** [`BinRecord`] streams, control decisions and interval
//! outputs regardless of worker count. Pinning whole tapes in a golden
//! corpus would be huge and unreadable; a [`DigestObserver`] instead folds
//! each of the three event streams into a 64-bit FNV-1a digest over a
//! *canonical* byte encoding — floats by `to_bits`, hash-map-backed query
//! outputs sorted by key — so the digest depends only on the emitted values,
//! never on process-local hash seeds or iteration order. Equal digests ⇔
//! equal streams (up to hash collisions), which is what `tests/golden.rs`
//! and the `netshed-bench` `scenarios verify` subcommand compare against the
//! committed corpus manifest.

use crate::policy::{ControlDecision, DecisionReason};
use crate::report::{BinRecord, RunSummary};
use netshed_queries::QueryOutput;
use netshed_sketch::IncrementalFnv;

/// Seed of the digest FNV chains (any fixed value works; this one spells
/// "bins").
const DIGEST_SEED: u64 = 0x6269_6e73;

/// Folds canonically-encoded values into one 64-bit FNV-1a digest.
///
/// The encoding is part of the corpus format: changing it invalidates every
/// pinned digest, so extend it only together with a corpus regeneration
/// (see `corpus/README.md`).
#[derive(Debug, Clone, Copy)]
pub struct StreamDigest {
    fnv: IncrementalFnv,
    items: u64,
}

impl Default for StreamDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self { fnv: IncrementalFnv::new(DIGEST_SEED), items: 0 }
    }

    /// Number of items absorbed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The digest value over everything absorbed so far.
    pub fn value(&self) -> u64 {
        self.fnv.finish()
    }

    /// Serializes the digest position (FNV state + item count) so a restored
    /// run continues the *same* digest chain an uninterrupted run would
    /// produce.
    pub fn save_state(&self, writer: &mut netshed_sketch::StateWriter) {
        writer.u64(self.fnv.state());
        writer.u64(self.items);
    }

    /// Restores a position written by [`StreamDigest::save_state`].
    pub fn load_state(
        &mut self,
        reader: &mut netshed_sketch::StateReader<'_>,
    ) -> Result<(), netshed_sketch::StateError> {
        self.fnv = IncrementalFnv::from_state(reader.u64()?);
        self.items = reader.u64()?;
        Ok(())
    }

    fn u8(&mut self, v: u8) {
        self.fnv.write(&[v]);
    }

    fn u64(&mut self, v: u64) {
        self.fnv.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // `to_bits` keeps the digest bit-exact; bit-identical replay is the
        // contract being checked, so no epsilon is wanted here.
        self.u64(v.to_bits());
    }

    fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.fnv.write(v.as_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Absorbs one bin record (including its per-query rows, its decision
    /// and any interval outputs riding on it).
    pub fn absorb_record(&mut self, record: &BinRecord) {
        self.items += 1;
        self.u64(record.bin_index);
        self.u64(record.incoming_packets);
        self.u64(record.uncontrolled_drops);
        self.u64(record.unsampled_packets);
        self.f64(record.available_cycles);
        self.f64(record.predicted_cycles);
        self.f64(record.query_cycles);
        self.f64(record.prediction_cycles);
        self.f64(record.shedding_cycles);
        self.f64(record.platform_cycles);
        self.f64(record.buffer_occupation);
        self.u64(record.queries.len() as u64);
        for query in &record.queries {
            self.u64(query.id.index());
            self.str(&query.name);
            self.f64(query.sampling_rate);
            self.f64(query.predicted_cycles);
            self.f64(query.measured_cycles);
            self.u64(query.delivered_packets);
            self.bool(query.disabled);
        }
        match &record.interval_outputs {
            None => self.u8(0),
            Some(outputs) => {
                self.u8(1);
                self.absorb_outputs_body(outputs);
            }
        }
        self.absorb_decision_body(record.decision.rates.len() as u64, &record.decision);
    }

    /// Absorbs one control decision, prefixed by its bin index.
    pub fn absorb_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        self.items += 1;
        self.u64(bin_index);
        self.absorb_decision_body(decision.rates.len() as u64, decision);
    }

    /// Absorbs one interval's query outputs.
    pub fn absorb_outputs(&mut self, outputs: &[(String, QueryOutput)]) {
        self.items += 1;
        self.absorb_outputs_body(outputs);
    }

    fn absorb_decision_body(&mut self, len: u64, decision: &ControlDecision) {
        self.u64(len);
        for rate in &decision.rates {
            self.f64(*rate);
        }
        match decision.budget {
            None => self.u8(0),
            Some(budget) => {
                self.u8(1);
                self.f64(budget);
            }
        }
        self.f64(decision.inflation);
        match &decision.allocations {
            None => self.u8(0),
            Some(allocations) => {
                self.u8(1);
                self.u64(allocations.len() as u64);
                for allocation in allocations {
                    self.bool(allocation.is_disabled());
                    self.f64(allocation.rate());
                }
            }
        }
        self.u8(match decision.reason {
            DecisionReason::FitsInBudget => 0,
            DecisionReason::ReactiveFeedback => 1,
            DecisionReason::Overload => 2,
            DecisionReason::Custom => 3,
            DecisionReason::DegradedFallback => 4,
        });
    }

    fn absorb_outputs_body(&mut self, outputs: &[(String, QueryOutput)]) {
        self.u64(outputs.len() as u64);
        for (name, output) in outputs {
            self.str(name);
            self.absorb_output(output);
        }
    }

    /// Absorbs one query output in canonical form (map- and set-backed
    /// variants are sorted by key so the digest is independent of the
    /// process's hash seeds).
    fn absorb_output(&mut self, output: &QueryOutput) {
        match output {
            QueryOutput::Counter { packets, bytes } => {
                self.u8(0);
                self.f64(*packets);
                self.f64(*bytes);
            }
            QueryOutput::Application { per_app } => {
                self.u8(1);
                let mut entries: Vec<_> = per_app.iter().collect();
                entries.sort_by_key(|(app, _)| **app);
                self.u64(entries.len() as u64);
                for (app, (packets, bytes)) in entries {
                    self.str(app);
                    self.f64(*packets);
                    self.f64(*bytes);
                }
            }
            QueryOutput::Flows { count } => {
                self.u8(2);
                self.f64(*count);
            }
            QueryOutput::HighWatermark { mbps } => {
                self.u8(3);
                self.f64(*mbps);
            }
            QueryOutput::TopK { ranking } => {
                self.u8(4);
                self.u64(ranking.len() as u64);
                for (ip, bytes) in ranking {
                    self.u64(u64::from(*ip));
                    self.f64(*bytes);
                }
            }
            QueryOutput::Autofocus { clusters } => {
                self.u8(5);
                self.u64(clusters.len() as u64);
                for (prefix, len, bytes) in clusters {
                    self.u64(u64::from(*prefix));
                    self.u8(*len);
                    self.f64(*bytes);
                }
            }
            QueryOutput::SuperSources { fanouts } => {
                self.u8(6);
                let mut entries: Vec<_> = fanouts.iter().collect();
                entries.sort_by_key(|(src, _)| **src);
                self.u64(entries.len() as u64);
                for (src, fanout) in entries {
                    self.u64(u64::from(*src));
                    self.f64(*fanout);
                }
            }
            QueryOutput::P2pFlows { flows } => {
                self.u8(7);
                let mut keys: Vec<u64> = flows.iter().copied().collect();
                keys.sort_unstable();
                self.u64(keys.len() as u64);
                for key in keys {
                    self.u64(key);
                }
            }
            QueryOutput::Coverage { processed_packets, total_packets } => {
                self.u8(8);
                self.f64(*processed_packets);
                self.f64(*total_packets);
            }
        }
    }
}

/// The fingerprint of one run: per-stream digests plus the bin count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Bins that produced a [`BinRecord`].
    pub bins: u64,
    /// Digest over the `BinRecord` stream.
    pub records: u64,
    /// Digest over the `(bin_index, ControlDecision)` stream.
    pub decisions: u64,
    /// Digest over the interval-output stream (including the final flush).
    pub intervals: u64,
}

impl std::fmt::Display for RunDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bins={} records={:016x} decisions={:016x} intervals={:016x}",
            self.bins, self.records, self.decisions, self.intervals
        )
    }
}

/// A [`RunObserver`](crate::RunObserver) that fingerprints the run.
///
/// ```
/// use netshed_monitor::{DigestObserver, Monitor};
/// use netshed_queries::{QueryKind, QuerySpec};
/// use netshed_trace::{PacketSourceExt, TraceConfig, TraceGenerator};
///
/// let mut monitor = Monitor::builder()
///     .capacity(1e12)
///     .queries(vec![QuerySpec::new(QueryKind::Counter)])
///     .build()
///     .unwrap();
/// let mut source = TraceGenerator::new(TraceConfig::default()).take_batches(8);
/// let mut digest = DigestObserver::default();
/// monitor.run(&mut source, &mut digest).unwrap();
/// let fingerprint = digest.digest();
/// assert_eq!(fingerprint.bins, 8);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DigestObserver {
    records: StreamDigest,
    decisions: StreamDigest,
    intervals: StreamDigest,
}

impl DigestObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The run fingerprint accumulated so far.
    pub fn digest(&self) -> RunDigest {
        RunDigest {
            bins: self.records.items(),
            records: self.records.value(),
            decisions: self.decisions.value(),
            intervals: self.intervals.value(),
        }
    }

    /// Serializes all three stream positions, so a checkpointed run's final
    /// digest equals the uninterrupted run's digest bit for bit.
    pub fn save_state(&self, writer: &mut netshed_sketch::StateWriter) {
        self.records.save_state(writer);
        self.decisions.save_state(writer);
        self.intervals.save_state(writer);
    }

    /// Restores positions written by [`DigestObserver::save_state`].
    pub fn load_state(
        &mut self,
        reader: &mut netshed_sketch::StateReader<'_>,
    ) -> Result<(), netshed_sketch::StateError> {
        self.records.load_state(reader)?;
        self.decisions.load_state(reader)?;
        self.intervals.load_state(reader)?;
        Ok(())
    }
}

impl crate::observer::RunObserver for DigestObserver {
    fn on_bin(&mut self, record: &BinRecord) {
        self.records.absorb_record(record);
    }

    fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        self.decisions.absorb_decision(bin_index, decision);
    }

    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        self.intervals.absorb_outputs(outputs);
    }

    fn on_end(&mut self, _summary: &RunSummary) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::monitor::Monitor;
    use crate::observer::RunObserver;
    use netshed_queries::{QueryKind, QuerySpec};
    use netshed_trace::{BatchReplay, TraceConfig, TraceGenerator};
    use std::collections::{BTreeMap, BTreeSet};

    fn run_digest(seed: u64, capacity: f64) -> RunDigest {
        let mut monitor = Monitor::new(
            MonitorConfig::default().with_capacity(capacity).with_seed(7).with_workers(1),
        );
        for kind in [QueryKind::Counter, QueryKind::Flows, QueryKind::Application] {
            monitor.register(&QuerySpec::new(kind)).expect("valid spec");
        }
        let batches = TraceGenerator::new(
            TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(80.0),
        )
        .batches(15);
        let mut observer = DigestObserver::new();
        monitor.run(&mut BatchReplay::new(batches), &mut observer).expect("run");
        observer.digest()
    }

    #[test]
    fn identical_runs_produce_identical_digests() {
        let a = run_digest(3, 1e12);
        let b = run_digest(3, 1e12);
        assert_eq!(a, b);
        assert_eq!(a.bins, 15);
    }

    #[test]
    fn different_traffic_or_capacity_changes_the_digest() {
        let base = run_digest(3, 1e12);
        let other_trace = run_digest(4, 1e12);
        assert_ne!(base.records, other_trace.records);
        assert_ne!(base.intervals, other_trace.intervals);
        let constrained = run_digest(3, 2e6);
        assert_ne!(base.records, constrained.records, "shedding must change the record stream");
    }

    #[test]
    fn map_backed_outputs_digest_independently_of_insertion_order() {
        let forward: Vec<(&'static str, (f64, f64))> =
            vec![("http", (1.0, 2.0)), ("dns", (3.0, 4.0)), ("smtp", (5.0, 6.0))];
        let mut a_map = BTreeMap::new();
        let mut b_map = BTreeMap::new();
        for (k, v) in &forward {
            a_map.insert(*k, *v);
        }
        for (k, v) in forward.iter().rev() {
            b_map.insert(*k, *v);
        }
        let mut a = StreamDigest::new();
        a.absorb_outputs(&[("app".into(), QueryOutput::Application { per_app: a_map })]);
        let mut b = StreamDigest::new();
        b.absorb_outputs(&[("app".into(), QueryOutput::Application { per_app: b_map })]);
        assert_eq!(a.value(), b.value());

        let set_a: BTreeSet<u64> = [9, 1, 5].into_iter().collect();
        let set_b: BTreeSet<u64> = [5, 9, 1].into_iter().collect();
        let mut da = StreamDigest::new();
        da.absorb_outputs(&[("p2p".into(), QueryOutput::P2pFlows { flows: set_a })]);
        let mut db = StreamDigest::new();
        db.absorb_outputs(&[("p2p".into(), QueryOutput::P2pFlows { flows: set_b })]);
        assert_eq!(da.value(), db.value());
    }

    #[test]
    fn digest_distinguishes_nearby_float_streams() {
        let mut a = StreamDigest::new();
        let mut b = StreamDigest::new();
        a.absorb_outputs(&[("flows".into(), QueryOutput::Flows { count: 100.0 })]);
        b.absorb_outputs(&[(
            "flows".into(),
            QueryOutput::Flows { count: 100.0 + f64::EPSILON * 100.0 },
        )]);
        assert_ne!(a.value(), b.value(), "the digest must be bit-exact, not epsilon-tolerant");
    }

    #[test]
    fn display_is_stable_and_parsable() {
        let digest = RunDigest { bins: 3, records: 0xabc, decisions: 0, intervals: u64::MAX };
        let text = digest.to_string();
        assert!(text.contains("bins=3"));
        assert!(text.contains("records=0000000000000abc"));
        assert!(text.contains("intervals=ffffffffffffffff"));
    }

    #[test]
    fn observer_streams_count_their_items() {
        let mut observer = DigestObserver::new();
        let empty = StreamDigest::new();
        assert_eq!(observer.digest().records, empty.value());
        observer.on_interval(&[]);
        assert_eq!(observer.digest().bins, 0, "intervals do not count as bins");
        assert_ne!(observer.digest().intervals, empty.value());
    }
}
