//! Fluent construction of a validated [`Monitor`].
//!
//! [`MonitorBuilder`] is the front door of the public API: it gathers the
//! capacity, strategy, predictor, enforcement and seed settings plus the
//! initial query set, validates everything at once, and returns
//! `Result<Monitor, NetshedError>` — a monitor that exists is a monitor whose
//! configuration is sound.
//!
//! ```
//! use netshed_monitor::{AllocationPolicy, Monitor, Strategy};
//! use netshed_queries::{QueryKind, QuerySpec};
//!
//! let monitor = Monitor::builder()
//!     .capacity(3.0e8)
//!     .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
//!     .seed(7)
//!     .query(QuerySpec::new(QueryKind::Counter))
//!     .query(QuerySpec::new(QueryKind::Flows))
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(monitor.query_names(), vec!["counter", "flows"]);
//! ```

use crate::config::{EnforcementConfig, MonitorConfig, PredictorKind, Strategy};
use crate::error::NetshedError;
use crate::monitor::Monitor;
use crate::policy::ControlPolicy;
use netshed_predict::PredictorFactory;
use netshed_queries::QuerySpec;

/// Builds a validated [`Monitor`].
#[derive(Default)]
pub struct MonitorBuilder {
    config: MonitorConfig,
    specs: Vec<QuerySpec>,
    /// Custom control policy overriding the configured strategy, if any.
    policy: Option<Box<dyn ControlPolicy>>,
    /// Custom predictor factory overriding the configured kind, if any.
    predictor_factory: Option<Box<dyn PredictorFactory>>,
}

impl std::fmt::Debug for MonitorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorBuilder")
            .field("config", &self.config)
            .field("specs", &self.specs)
            .field("policy", &self.policy.as_ref().map(super::policy::ControlPolicy::name))
            .field(
                "predictor_factory",
                &self.predictor_factory.as_ref().map(|factory| factory.name()),
            )
            .finish()
    }
}

impl MonitorBuilder {
    /// Starts from the paper-scale default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: MonitorConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Sets the processing capacity in cycles per time bin.
    pub fn capacity(mut self, cycles_per_bin: f64) -> Self {
        self.config.capacity_cycles_per_bin = cycles_per_bin;
        self
    }

    /// Sets the capture buffer size in time bins of backlog.
    pub fn buffer_bins(mut self, bins: f64) -> Self {
        self.config.buffer_capacity_bins = bins;
        self
    }

    /// Sets the fixed per-bin platform overhead in cycles.
    pub fn platform_overhead(mut self, cycles: f64) -> Self {
        self.config.platform_overhead_cycles = cycles;
        self
    }

    /// Sets the load shedding strategy — the validated constructor for the
    /// built-in control policies. Cleared by a later
    /// [`with_policy`](Self::with_policy) call.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self.policy = None;
        self
    }

    /// Installs a custom [`ControlPolicy`], overriding the configured
    /// [`Strategy`]. This is the open end of the control plane: anything
    /// implementing the trait — the extra built-ins
    /// ([`OraclePolicy`](crate::policy::OraclePolicy),
    /// [`HysteresisReactivePolicy`](crate::policy::HysteresisReactivePolicy))
    /// or a user-defined policy — plugs in here.
    pub fn with_policy(mut self, policy: impl ControlPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the predictor driving the predictive strategy — the validated
    /// constructor for the built-in predictors. Cleared by a later
    /// [`with_predictor`](Self::with_predictor) call.
    pub fn predictor(mut self, predictor: PredictorKind) -> Self {
        self.config.predictor = predictor;
        self.predictor_factory = None;
        self
    }

    /// Installs a custom [`PredictorFactory`], overriding the configured
    /// [`PredictorKind`]. Any `Fn() -> Box<dyn Predictor>` closure qualifies;
    /// one fresh predictor is built per registered query.
    pub fn with_predictor(mut self, factory: impl PredictorFactory + 'static) -> Self {
        self.predictor_factory = Some(Box::new(factory));
        self
    }

    /// Sets the enforcement policy for custom-shedding queries.
    pub fn enforcement(mut self, enforcement: EnforcementConfig) -> Self {
        self.config.enforcement = enforcement;
        self
    }

    /// Sets the EWMA weight smoothing the prediction error.
    pub fn ewma_alpha(mut self, alpha: f64) -> Self {
        self.config.ewma_alpha = alpha;
        self
    }

    /// Enables or disables the buffer discovery algorithm of Section 4.1.
    pub fn buffer_discovery(mut self, enabled: bool) -> Self {
        self.config.buffer_discovery = enabled;
        self
    }

    /// Sets the time bin duration in microseconds.
    pub fn time_bin_us(mut self, us: u64) -> Self {
        self.config.time_bin_us = us;
        self
    }

    /// Sets the measurement interval duration in microseconds.
    pub fn measurement_interval_us(mut self, us: u64) -> Self {
        self.config.measurement_interval_us = us;
        self
    }

    /// Sets the measurement noise model parameters.
    pub fn noise(mut self, jitter: f64, outlier_probability: f64, outlier_cycles: u64) -> Self {
        self.config.noise_jitter = jitter;
        self.config.noise_outlier_probability = outlier_probability;
        self.config.noise_outlier_cycles = outlier_cycles;
        self
    }

    /// Disables measurement noise (deterministic runs).
    pub fn no_noise(self) -> Self {
        self.noise(0.0, 0.0, 0)
    }

    /// Sets the PRNG seed for sampling hash functions and noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets how many workers the execution plane dispatches the per-bin
    /// query tail to (validated into `[1, MAX_WORKERS]` at build time).
    ///
    /// 1 — the default, unless `NETSHED_THREADS` says otherwise — runs
    /// everything inline on the calling thread. Any worker count produces
    /// bit-identical records, observer callbacks and interval outputs; the
    /// knob only trades wall-clock time (see DESIGN.md, "Execution plane").
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets how many shard threads a [`build_sharded`](Self::build_sharded)
    /// fleet executes its lanes on (validated into `[1, MAX_WORKERS]` at
    /// build time).
    ///
    /// Like [`with_workers`](Self::with_workers) this is a pure wall-clock
    /// knob — any shard count produces bit-identical output, because the
    /// state-owning partition is [`with_shard_lanes`](Self::with_shard_lanes)
    /// and lanes are merged in a fixed order (see DESIGN.md, "Shard plane").
    /// Defaults to `NETSHED_SHARDS` when set, else 1.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the number of virtual lanes a
    /// [`build_sharded`](Self::build_sharded) fleet partitions flow space
    /// into (validated into `[1, MAX_WORKERS]` at build time).
    ///
    /// Unlike `shards`, this is *configuration*: each lane owns predictor,
    /// buffer and policy state for its flow partition, so changing the lane
    /// count changes the output — like changing the seed.
    pub fn with_shard_lanes(mut self, lanes: usize) -> Self {
        self.config.shard_lanes = lanes;
        self
    }

    /// Queues a query to register when the monitor is built.
    pub fn query(mut self, spec: QuerySpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Queues several queries to register when the monitor is built.
    pub fn queries(mut self, specs: impl IntoIterator<Item = QuerySpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Read access to the configuration assembled so far.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Validates the configuration and the queued query specs, then builds
    /// the monitor with every query registered. Custom policy / predictor
    /// overrides are installed before registration so oracle-style policies
    /// get their shadow executions from the first query on.
    pub fn build(self) -> Result<Monitor, NetshedError> {
        self.config.validate()?;
        let mut monitor = Monitor::new(self.config);
        if let Some(factory) = self.predictor_factory {
            monitor.set_predictor_factory(factory);
        }
        if let Some(policy) = self.policy {
            monitor.set_policy(policy);
        }
        for spec in &self.specs {
            monitor.register(spec)?;
        }
        Ok(monitor)
    }

    /// Validates the configuration and builds a flow-sharded
    /// [`ShardedMonitor`] fleet with every queued query registered on every
    /// lane.
    ///
    /// Custom [`with_policy`](Self::with_policy) /
    /// [`with_predictor`](Self::with_predictor) overrides are rejected here:
    /// a fleet needs one independent policy and predictor instance per lane,
    /// and a boxed override is a single instance. Use the [`Strategy`] /
    /// [`PredictorKind`](crate::config::PredictorKind) constructors, which
    /// every lane instantiates for itself.
    pub fn build_sharded(self) -> Result<crate::sharded::ShardedMonitor, NetshedError> {
        if let Some(policy) = &self.policy {
            return Err(NetshedError::InvalidConfig(format!(
                "custom policy {:?} cannot be sharded: each lane needs its own instance; \
                 use a Strategy instead",
                policy.name()
            )));
        }
        if self.predictor_factory.is_some() {
            return Err(NetshedError::InvalidConfig(
                "custom predictor factories cannot be sharded: each lane needs its own \
                 instance; use a PredictorKind instead"
                    .to_string(),
            ));
        }
        let mut fleet = crate::sharded::ShardedMonitor::new(self.config)?;
        for spec in &self.specs {
            fleet.register(spec)?;
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocationPolicy;
    use netshed_queries::QueryKind;

    #[test]
    fn default_builder_builds() {
        let monitor = MonitorBuilder::new().build().expect("default config is valid");
        assert!(monitor.query_names().is_empty());
    }

    #[test]
    fn builder_applies_settings_and_registers_queries() {
        let monitor = Monitor::builder()
            .capacity(5.0e7)
            .strategy(Strategy::Predictive(AllocationPolicy::MmfsCpu))
            .predictor(PredictorKind::Slr)
            .seed(99)
            .no_noise()
            .query(QuerySpec::new(QueryKind::Counter))
            .query(QuerySpec::new(QueryKind::Flows).with_label("flows-live"))
            .build()
            .expect("valid configuration");
        assert_eq!(monitor.query_names(), vec!["counter", "flows-live"]);
    }

    #[test]
    fn non_positive_capacity_is_rejected() {
        for capacity in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let error = MonitorBuilder::new().capacity(capacity).build().unwrap_err();
            assert!(
                matches!(error, NetshedError::InvalidConfig(_)),
                "capacity {capacity} produced {error:?}"
            );
        }
    }

    #[test]
    fn capacity_below_overhead_is_an_underflow() {
        let error =
            MonitorBuilder::new().capacity(100.0).platform_overhead(1000.0).build().unwrap_err();
        assert_eq!(error, NetshedError::CapacityUnderflow { capacity: 100.0, required: 1000.0 });
    }

    #[test]
    fn out_of_domain_alpha_and_rates_are_rejected() {
        assert!(MonitorBuilder::new().ewma_alpha(-0.1).build().is_err());
        assert!(MonitorBuilder::new().ewma_alpha(1.5).build().is_err());
        // alpha = 0 turns the error correction off — the ablation experiments
        // rely on it being a valid setting.
        assert!(MonitorBuilder::new().ewma_alpha(0.0).build().is_ok());
        assert!(MonitorBuilder::new().noise(-0.1, 0.0, 0).build().is_err());
        assert!(MonitorBuilder::new().noise(0.0, 1.5, 0).build().is_err());
        assert!(MonitorBuilder::new().time_bin_us(0).build().is_err());
    }

    #[test]
    fn custom_policy_and_predictor_override_the_enums() {
        use crate::policy::HysteresisReactivePolicy;
        use netshed_fairness::MmfsPkt;
        use netshed_predict::{EwmaPredictor, Predictor};

        let monitor = Monitor::builder()
            .capacity(1e9)
            .strategy(Strategy::Predictive(AllocationPolicy::EqualRates))
            .with_policy(HysteresisReactivePolicy::new(MmfsPkt))
            .with_predictor(|| Box::new(EwmaPredictor::new(0.5)) as Box<dyn Predictor>)
            .query(QuerySpec::new(QueryKind::Counter))
            .build()
            .expect("valid configuration");
        assert_eq!(monitor.policy_name(), "reactive_hysteresis_mmfs_pkt");

        // A later `strategy()` call clears a pending custom policy.
        let monitor = Monitor::builder()
            .with_policy(HysteresisReactivePolicy::new(MmfsPkt))
            .strategy(Strategy::NoShedding)
            .build()
            .expect("valid configuration");
        assert_eq!(monitor.policy_name(), "no_lshed");
    }

    #[test]
    fn invalid_query_spec_fails_the_build() {
        let error = MonitorBuilder::new()
            .query(QuerySpec::new(QueryKind::Counter).with_min_rate(1.5))
            .build()
            .unwrap_err();
        assert!(matches!(error, NetshedError::InvalidConfig(_)));
    }
}
