//! Per-bin and per-run records produced by the monitor.

use crate::monitor::QueryId;
use crate::policy::ControlDecision;
use netshed_queries::QueryOutput;

/// What happened to one query during one time bin.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBinRecord {
    /// Handle of the query instance.
    pub id: QueryId,
    /// Label of the query instance (the kind's paper name unless the spec
    /// set an explicit label).
    pub name: String,
    /// Sampling rate assigned to the query for this bin (0 = disabled).
    pub sampling_rate: f64,
    /// Cycles the prediction subsystem expected the query to need for the
    /// full batch.
    pub predicted_cycles: f64,
    /// Cycles the query actually consumed (after sampling / custom shedding).
    pub measured_cycles: f64,
    /// Packets delivered to the query after load shedding.
    pub delivered_packets: u64,
    /// Whether the query was disabled for this bin (by the allocation or by
    /// the enforcement policy).
    pub disabled: bool,
}

/// Everything that happened during one time bin.
///
/// Records compare with `==` so replay tests can pin bit-identical streams
/// (the execution-plane determinism contract relies on this).
#[derive(Debug, Clone, PartialEq)]
pub struct BinRecord {
    /// Index of the time bin.
    pub bin_index: u64,
    /// Packets that arrived at the capture interface during the bin.
    pub incoming_packets: u64,
    /// Packets dropped without control at the capture buffer (DAG drops).
    pub uncontrolled_drops: u64,
    /// Packets not processed because of controlled sampling (summed over
    /// queries would double count; this is packets of the post-drop batch not
    /// delivered to at least one query because of its sampling rate, averaged
    /// over queries).
    pub unsampled_packets: u64,
    /// Cycles available to process queries in this bin (after overhead and
    /// buffer discovery adjustments).
    pub available_cycles: f64,
    /// Sum of the per-query full-batch predictions.
    pub predicted_cycles: f64,
    /// Total cycles actually consumed by the queries.
    pub query_cycles: f64,
    /// Cycles spent extracting features and computing predictions.
    pub prediction_cycles: f64,
    /// Cycles spent applying load shedding (sampling + feature re-extraction).
    pub shedding_cycles: f64,
    /// Fixed platform overhead cycles.
    pub platform_cycles: f64,
    /// Capture buffer occupation at the end of the bin (0..1).
    pub buffer_occupation: f64,
    /// Per-query details.
    pub queries: Vec<QueryBinRecord>,
    /// Query outputs emitted at the end of the measurement interval this bin
    /// closed, if any (query label → output).
    pub interval_outputs: Option<Vec<(String, QueryOutput)>>,
    /// The control-plane decision that produced the sampling rates of this
    /// bin: chosen rates, allocator budget, inflation factor, per-query
    /// allocation detail and the reason the policy gives for them.
    pub decision: ControlDecision,
}

impl BinRecord {
    /// Total cycles consumed in the bin (queries + all overheads).
    pub fn total_cycles(&self) -> f64 {
        self.query_cycles + self.prediction_cycles + self.shedding_cycles + self.platform_cycles
    }

    /// Average sampling rate over the enabled queries (1.0 when nothing was
    /// shed).
    pub fn mean_sampling_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        self.queries.iter().map(|q| q.sampling_rate).sum::<f64>() / self.queries.len() as f64
    }

    /// The record of one query, looked up by handle.
    pub fn query(&self, id: QueryId) -> Option<&QueryBinRecord> {
        self.queries.iter().find(|q| q.id == id)
    }
}

/// Aggregated statistics over a full run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Number of bins processed.
    pub bins: u64,
    /// Empty time bins skipped by [`Monitor::run`](crate::Monitor::run)
    /// (quiet bins carry no work and are not an error mid-stream).
    pub empty_bins: u64,
    /// Total packets that arrived.
    pub total_packets: u64,
    /// Total uncontrolled drops.
    pub total_uncontrolled_drops: u64,
    /// Per-bin total cycles consumed (for CDFs like Figure 4.1).
    pub cycles_per_bin: Vec<f64>,
    /// Per-bin prediction error of the aggregate prediction.
    pub prediction_errors: Vec<f64>,
}

impl RunSummary {
    /// Folds one bin record into the summary.
    pub fn absorb(&mut self, record: &BinRecord) {
        self.bins += 1;
        self.total_packets += record.incoming_packets;
        self.total_uncontrolled_drops += record.uncontrolled_drops;
        self.cycles_per_bin.push(record.total_cycles());
        if record.query_cycles > 0.0 {
            self.prediction_errors
                .push((1.0 - record.predicted_cycles / record.query_cycles).abs());
        }
    }

    /// Fraction of all packets that were dropped without control.
    pub fn uncontrolled_drop_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        self.total_uncontrolled_drops as f64 / self.total_packets as f64
    }

    /// Mean total cycles per processed bin.
    pub fn mean_cycles_per_bin(&self) -> f64 {
        if self.cycles_per_bin.is_empty() {
            return 0.0;
        }
        self.cycles_per_bin.iter().sum::<f64>() / self.cycles_per_bin.len() as f64
    }

    /// Mean relative prediction error over the run.
    pub fn mean_prediction_error(&self) -> f64 {
        if self.prediction_errors.is_empty() {
            return 0.0;
        }
        self.prediction_errors.iter().sum::<f64>() / self.prediction_errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(query_cycles: f64, predicted: f64) -> BinRecord {
        BinRecord {
            bin_index: 0,
            incoming_packets: 100,
            uncontrolled_drops: 10,
            unsampled_packets: 0,
            available_cycles: 1000.0,
            predicted_cycles: predicted,
            query_cycles,
            prediction_cycles: 10.0,
            shedding_cycles: 5.0,
            platform_cycles: 20.0,
            buffer_occupation: 0.5,
            queries: vec![],
            interval_outputs: None,
            decision: ControlDecision::default(),
        }
    }

    #[test]
    fn total_cycles_sums_components() {
        assert_eq!(record(100.0, 100.0).total_cycles(), 135.0);
    }

    #[test]
    fn summary_accumulates_bins_and_drops() {
        let mut summary = RunSummary::default();
        summary.absorb(&record(100.0, 90.0));
        summary.absorb(&record(200.0, 210.0));
        assert_eq!(summary.bins, 2);
        assert_eq!(summary.total_packets, 200);
        assert_eq!(summary.total_uncontrolled_drops, 20);
        assert_eq!(summary.cycles_per_bin.len(), 2);
        assert!((summary.uncontrolled_drop_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(summary.prediction_errors.len(), 2);
        assert!(summary.mean_cycles_per_bin() > 0.0);
        assert!(summary.mean_prediction_error() > 0.0);
    }

    #[test]
    fn mean_sampling_rate_defaults_to_one() {
        assert_eq!(record(1.0, 1.0).mean_sampling_rate(), 1.0);
    }

    #[test]
    fn summaries_compare_for_roundtrip_tests() {
        let mut a = RunSummary::default();
        let mut b = RunSummary::default();
        a.absorb(&record(100.0, 90.0));
        b.absorb(&record(100.0, 90.0));
        assert_eq!(a, b);
        b.absorb(&record(1.0, 1.0));
        assert_ne!(a, b);
    }
}
