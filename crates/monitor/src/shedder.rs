//! The load shedding mechanisms: packet sampling and flow sampling
//! (Section 4.2).
//!
//! Both samplers are zero-copy: they narrow a [`BatchView`] by building a
//! keep-index list over the batch's shared packet store instead of cloning
//! packets into a fresh batch. Selection is bit-identical to the historical
//! clone-based `Batch::filtered` path (same RNG draw order for packet
//! sampling, same H3 evaluation per packet for flow sampling), which the
//! shed-equivalence property tests in `tests/properties.rs` pin down.

use netshed_sketch::H3Hasher;
use netshed_trace::{BatchView, KeepListPool};
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform random packet sampling: every packet of the view is kept
/// independently with probability `rate`.
///
/// Returns the sampled view and the number of packets discarded.
pub fn packet_sample(batch: &BatchView, rate: f64, rng: &mut StdRng) -> (BatchView, u64) {
    packet_sample_with(batch, rate, rng, &mut KeepListPool::new())
}

/// [`packet_sample`] drawing its keep-index list from a caller-owned pool, so
/// the steady-state shed path recycles buffers instead of allocating one per
/// bin. The selection (RNG draw order included) is identical.
pub fn packet_sample_with(
    batch: &BatchView,
    rate: f64,
    rng: &mut StdRng,
    pool: &mut KeepListPool,
) -> (BatchView, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (batch.cleared_with(pool), batch.len() as u64);
    }
    let sampled = batch.filter_indexed_with(pool, |_, _| rng.gen::<f64>() < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

/// Flowwise sampling: a flow is kept if the H3 hash of its 5-tuple, mapped to
/// `[0, 1)`, is below `rate` — so all packets of a flow share the same fate
/// and no flow table is needed (the "Flowwise sampling" technique the paper
/// adopts).
///
/// The serialised 13-byte flow keys are taken from the batch's shared cache,
/// so with `q` flow-sampled queries each packet's key is built once per batch
/// rather than once per query; the H3 evaluation itself stays per query
/// because every query draws its own hash function per measurement interval.
///
/// Returns the sampled view and the number of packets discarded.
pub fn flow_sample(batch: &BatchView, rate: f64, hasher: &H3Hasher) -> (BatchView, u64) {
    flow_sample_with(batch, rate, hasher, &mut KeepListPool::new())
}

/// [`flow_sample`] drawing its keep-index list from a caller-owned pool, so
/// the steady-state shed path recycles buffers instead of allocating one per
/// bin. The selection (H3 evaluation per packet) is identical.
pub fn flow_sample_with(
    batch: &BatchView,
    rate: f64,
    hasher: &H3Hasher,
    pool: &mut KeepListPool,
) -> (BatchView, u64) {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        return (batch.clone(), 0);
    }
    if rate <= 0.0 {
        return (batch.cleared_with(pool), batch.len() as u64);
    }
    let keys = batch.flow_keys();
    let sampled =
        batch.filter_indexed_with(pool, |index, _| hasher.unit_interval(&keys[index]) < rate);
    let dropped = batch.len() as u64 - sampled.len() as u64;
    (sampled, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_trace::{Batch, FiveTuple, Packet};
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn test_batch(flows: u32, packets_per_flow: u32) -> Batch {
        let mut packets = Vec::new();
        for f in 0..flows {
            let tuple = FiveTuple::new(f, 100 + f, 1000, 80, 6);
            for p in 0..packets_per_flow {
                packets.push(Packet::header_only(u64::from(f * 10 + p), tuple, 100, 0));
            }
        }
        Batch::new(0, 0, 100_000, packets)
    }

    #[test]
    fn packet_sampling_keeps_roughly_the_requested_fraction() {
        let batch = test_batch(100, 20);
        let mut rng = StdRng::seed_from_u64(1);
        let (sampled, dropped) = packet_sample(&batch.view(), 0.3, &mut rng);
        let kept_fraction = sampled.len() as f64 / batch.len() as f64;
        assert!((kept_fraction - 0.3).abs() < 0.05, "kept {kept_fraction}");
        assert_eq!(sampled.len() as u64 + dropped, batch.len() as u64);
    }

    #[test]
    fn rate_one_keeps_everything_rate_zero_drops_everything() {
        let batch = test_batch(10, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let (all, dropped_none) = packet_sample(&batch.view(), 1.0, &mut rng);
        assert_eq!(all.len(), batch.len());
        assert_eq!(dropped_none, 0);
        let (none, dropped_all) = packet_sample(&batch.view(), 0.0, &mut rng);
        assert!(none.is_empty());
        assert_eq!(dropped_all, batch.len() as u64);
    }

    #[test]
    fn sampling_is_zero_copy() {
        let batch = test_batch(50, 4);
        let view = batch.view();
        let mut rng = StdRng::seed_from_u64(5);
        let (pkt_sampled, _) = packet_sample(&view, 0.5, &mut rng);
        assert!(pkt_sampled.shares_store(&view), "packet sampling must not copy packets");
        let hasher = H3Hasher::new(13, 5);
        let (flow_sampled, _) = flow_sample(&view, 0.5, &hasher);
        assert!(flow_sampled.shares_store(&view), "flow sampling must not copy packets");
        // Composed sampling (per-query sampling of a post-drop view) shares too.
        let (nested, _) = flow_sample(&pkt_sampled, 0.5, &hasher);
        assert!(nested.shares_store(&view));
    }

    #[test]
    fn flow_sampling_keeps_or_drops_entire_flows() {
        let batch = test_batch(200, 10);
        let hasher = H3Hasher::new(13, 7);
        let (sampled, _) = flow_sample(&batch.view(), 0.5, &hasher);
        // Every flow present in the sampled batch must have all 10 packets.
        let mut per_flow: std::collections::HashMap<FiveTuple, usize> =
            std::collections::HashMap::new();
        for p in sampled.packets() {
            *per_flow.entry(*p.tuple()).or_insert(0) += 1;
        }
        assert!(per_flow.values().all(|&count| count == 10), "flows must be kept whole");
        let kept_flows = per_flow.len() as f64 / 200.0;
        assert!((kept_flows - 0.5).abs() < 0.12, "kept flow fraction {kept_flows}");
    }

    #[test]
    fn flow_sampling_is_deterministic_for_a_given_hash_function() {
        let batch = test_batch(50, 4);
        let hasher = H3Hasher::new(13, 9);
        let (a, _) = flow_sample(&batch.view(), 0.4, &hasher);
        let (b, _) = flow_sample(&batch.view(), 0.4, &hasher);
        let flows_a: HashSet<FiveTuple> = a.packets().map(|p| *p.tuple()).collect();
        let flows_b: HashSet<FiveTuple> = b.packets().map(|p| *p.tuple()).collect();
        assert_eq!(flows_a, flows_b);
    }

    #[test]
    fn pooled_sampling_matches_the_allocating_path_and_recycles() {
        let batch = test_batch(80, 5);
        let view = batch.view();
        let hasher = H3Hasher::new(13, 21);
        let mut pool = KeepListPool::new();
        for _ in 0..20 {
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            let (plain_pkt, d1) = packet_sample(&view, 0.4, &mut rng_a);
            let (pooled_pkt, d2) = packet_sample_with(&view, 0.4, &mut rng_b, &mut pool);
            assert_eq!(d1, d2);
            assert!(plain_pkt.packets().map(|p| p.ts()).eq(pooled_pkt.packets().map(|p| p.ts())));
            let (plain_flow, d3) = flow_sample(&view, 0.4, &hasher);
            let (pooled_flow, d4) = flow_sample_with(&view, 0.4, &hasher, &mut pool);
            assert_eq!(d3, d4);
            assert!(plain_flow.packets().map(|p| p.ts()).eq(pooled_flow.packets().map(|p| p.ts())));
        }
        // Views are dropped each round, so the pool never needs many slots.
        assert!(pool.slots() <= 2, "pool grew to {} slots", pool.slots());
    }

    #[test]
    fn different_hash_functions_select_different_flows() {
        let batch = test_batch(200, 2);
        let h1 = H3Hasher::new(13, 1);
        let h2 = H3Hasher::new(13, 2);
        let (a, _) = flow_sample(&batch.view(), 0.5, &h1);
        let (b, _) = flow_sample(&batch.view(), 0.5, &h2);
        let flows_a: HashSet<FiveTuple> = a.packets().map(|p| *p.tuple()).collect();
        let flows_b: HashSet<FiveTuple> = b.packets().map(|p| *p.tuple()).collect();
        assert_ne!(flows_a, flows_b, "fresh hash functions must change the selection");
    }
}
